#!/usr/bin/env python
"""Quickstart: build a domain-specific cache in ~40 lines.

We make a tiny X-Cache for a key→value store: the meta-tag is the *key*
(not an address), and a microcoded walker resolves misses by fetching
the value from a table in DRAM. This is the paper's whole idea in
miniature — the datapath never touches addresses; X-Cache translates
only on misses and serves repeats in 3 cycles.

Run:  python examples/quickstart.py
"""

from repro.core import (
    EV_FILL,
    EV_META_LOAD,
    IMM,
    MSG,
    R,
    Transition,
    WalkerSpec,
    XCacheConfig,
    XCacheSystem,
    compile_walker,
    op,
)


def build_walker():
    """The walker: on a miss, fetch table[key] (8 bytes) from DRAM.

    Each Transition is one line of the paper's coroutine table:
    [state, event] -> actions -> next state. The walker yields the
    pipeline at the DRAM fill and resumes when the Fill event arrives.
    """
    return compile_walker(WalkerSpec(
        name="kv-walker",
        transitions=(
            Transition("Default", EV_META_LOAD, (
                op.allocM(),                       # claim a meta-tag entry
                op.shl(R(0), MSG("key"), IMM(3)),  # offset = key * 8
                op.add(R(0), R(0), MSG("table")),  # addr = table + offset
                op.enq_dram(addr=R(0)),            # issue the fill...
                op.state("Fill"),                  # ...and yield
            )),
            Transition("Fill", EV_FILL, (
                op.and_(R(1), R(0), IMM(63)),      # offset within the block
                op.allocD(R(2), IMM(1)),           # one data-RAM sector
                op.write(R(2), R(1), from_msg=True),
                op.update("sector_start", R(2)),
                op.addi(R(3), R(2), 1),
                op.update("sector_end", R(3)),
                op.finish(),                       # entry valid; walker done
            )),
        ),
    ))


def main():
    config = XCacheConfig(ways=4, sets=16, data_sectors=128,
                          num_active=8, num_exe=2, tag_fields=("key",))
    system = XCacheSystem(config, build_walker())

    # Lay out a value table in the simulated DRAM.
    values = [v * v for v in range(64)]
    table = system.image.alloc_u64_array(values)

    # The datapath issues *meta* loads: keys, never addresses. First
    # touches miss and walk; the second round hits in 3 cycles.
    for key in (3, 7, 11):
        system.load((key,), walk_fields={"table": table})
    system.run()
    for key in (3, 3, 7):
        system.load((key,), walk_fields={"table": table})
    responses = system.run()

    print("key -> value   (latency in cycles)")
    for resp in responses:
        key = resp.request.tag[0]
        value = int.from_bytes(resp.data[:8], "little")
        latency = resp.completed_at - resp.request.issued_at
        # hits behind other hits queue on the (pipelined) hit port
        kind = "hit " if latency <= config.hit_latency + 2 else "miss"
        print(f"  {key:3d} -> {value:4d}   {kind} {latency:3d}")
        assert value == key * key

    s = system.summary()
    print(f"\n{s['meta_loads']} meta loads: {s['hits']} hits, "
          f"{s['misses']} misses ({s['dram_reads']} DRAM reads, "
          f"{s['actions']} microcode actions)")
    print("repeat keys hit in", config.hit_latency, "cycles — no address "
          "generation, no walk")


if __name__ == "__main__":
    main()
