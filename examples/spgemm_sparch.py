#!/usr/bin/env python
"""Sparse GEMM two ways on ONE X-Cache program (SpArch and Gamma).

The paper's portability claim in action: SpArch (outer-product) and
Gamma (Gustavson) share the identical row-walker microcode — only the
datapath's access *order* differs. We run both on the same A×B, verify
the products against the functional reference, and show the reuse
pattern each algorithm induces in the cache.

Run:  python examples/spgemm_sparch.py
"""

from repro.core.config import table3_config
from repro.data import spgemm_gustavson
from repro.dsa import GammaXCacheModel, SpArchXCacheModel
from repro.workloads import dense_spgemm_input


def main():
    a, b = dense_spgemm_input(n=256, nnz_per_row=8, seed=7)
    print(f"A: {a.rows}x{a.cols} with {a.nnz} nonzeros; "
          f"B: {b.rows}x{b.cols} with {b.nnz} nonzeros")
    reference = spgemm_gustavson(a, b)
    print(f"C = A x B has {reference.nnz} nonzeros (functional reference)\n")

    sparch = SpArchXCacheModel(a, b, config=table3_config("sparch",
                                                          scale=0.25))
    gamma = GammaXCacheModel(a, b, config=table3_config("gamma",
                                                        scale=0.25))

    # literally the same compiled walker binary
    s_rtns = [r.name for r in sparch.system.controller.program.ram.routines]
    g_rtns = [r.name for r in gamma.system.controller.program.ram.routines]
    assert s_rtns == g_rtns
    print("shared walker routines:", ", ".join(s_rtns), "\n")

    print(f"{'DSA':<8} {'order':<22} {'cycles':>8} {'hit rate':>9} "
          f"{'DRAM':>6} {'correct':>8}")
    for name, model, order in (
        ("SpArch", sparch, "A columns (CSC)"),
        ("Gamma", gamma, "A rows (Gustavson)"),
    ):
        result = model.run()
        print(f"{name:<8} {order:<22} {result.cycles:>8} "
              f"{result.hit_rate:>9.2f} {result.dram_accesses:>6} "
              f"{str(result.checks_passed):>8}")

    print("\nSpArch reuses row k across one A-column run; Gamma's reuse is "
          "dynamic\n(whenever a later A-row references the same k) — same "
          "cache, same microcode,\ndifferent locality. That is the paper's "
          "'reprogram, don't redesign' result.")


if __name__ == "__main__":
    main()
