#!/usr/bin/env python
"""Simulation-as-a-service in ~40 lines: warm pool, dedup, streaming.

Spins up a private 2-worker service, then shows the three things the
service layer adds over running the harness directly:

1. identical submissions cost one simulation (coalescing + the
   content-addressed result store, with counters to prove it);
2. a finished digest resolves straight from the result store, no
   worker touched;
3. progress streams back across the process boundary while a job runs.

Run me: PYTHONPATH=src python examples/service_demo.py

(The ``__main__`` guard is load-bearing: service workers are *spawned*
processes, and spawn re-executes the launching script on import.)
"""

import time

from repro.svc import JobSpec, Service


def main() -> None:
    with Service(workers=2) as svc:
        # -- 1. dedup: five submissions, one simulation -----------------
        spec = JobSpec(experiment="tab01", profile="ci")
        jobs = [svc.submit(spec) for _ in range(5)]
        print(jobs[0].result(timeout=120)["rendered"])

        stats = svc.store.stats
        print(f"5 submissions -> {stats.misses} simulation "
              f"({stats.coalesced} coalesced, {stats.hits} store hits)")
        assert stats.misses == 1

        # -- 2. the store: a finished digest resolves without a worker --
        suite = JobSpec(experiment="suite", profile="ci",
                        workloads=("dasx",))
        cold = svc.submit(suite).result(timeout=120)["metadata"]
        start = time.perf_counter()
        again = svc.submit(suite)
        again.result(timeout=5)
        resolved_ms = (time.perf_counter() - start) * 1000
        assert again.from_store
        print(f"suite simulated in {cold['duration_s']*1000:.0f} ms; "
              f"identical resubmit resolved from the store in "
              f"{resolved_ms:.2f} ms")

        # -- 3. streaming: watch a job's events while it runs -----------
        blocker = svc.submit(JobSpec(experiment="sleep:0.2"))
        streamed = svc.submit(JobSpec(experiment="fig04", profile="ci",
                                      stream_interval=200))
        events = sum(1 for payload in svc.subscribe(streamed)
                     if payload.get("kind") == "event")
        print(f"fig04 streamed {events} sampled bus events while running")
        streamed.result(timeout=120)
        blocker.result(timeout=60)

        metrics = svc.metrics()
        print(f"service totals: submitted={metrics['submitted']} "
              f"completed={metrics['completed']} "
              f"coalesced={metrics['coalesced']} "
              f"store_hits={metrics['store_hits']} "
              f"worker_restarts={metrics['worker_restarts']}")


if __name__ == "__main__":
    main()
