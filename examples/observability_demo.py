#!/usr/bin/env python
"""Watching an X-Cache run through the `repro.obs` event plane.

Three ways to observe the same Widx hash-probe run:

1. a custom :class:`TypedEventProcessor` — write ``on_<event>`` methods
   and the bus delivers exactly those event types, nothing else;
2. a stock :class:`MetricsProcessor` — hit-rate plus load-to-use and
   miss-latency percentiles, fed from the same stream;
3. a :class:`PerfettoExporter` — a Chrome-trace JSON you can drop into
   https://ui.perfetto.dev, with walker contexts as tracks and DRAM
   transactions as async slices.

All three attach with one call (``system.observe(...)``) and cost
nothing when absent: the publish sites are a single ``is None`` test.

Run:  python examples/observability_demo.py
"""

import json
import os
import tempfile

from repro.core.config import table3_config
from repro.dsa import WidxXCacheModel
from repro.obs import MetricsProcessor, PerfettoExporter, TypedEventProcessor
from repro.workloads import make_widx_workload


class WalkScoreboard(TypedEventProcessor):
    """Counts walker activity and tracks the deepest DRAM round-trip."""

    def __init__(self):
        super().__init__()
        self.dispatches = 0
        self.retires = 0
        self.found = 0
        self.longest_walk = 0
        self.worst_dram = 0

    def on_walker_dispatch(self, event):
        self.dispatches += 1

    def on_walker_retire(self, event):
        self.retires += 1
        self.found += bool(event.found)
        if event.lifetime > self.longest_walk:
            self.longest_walk = event.lifetime

    def on_dram_complete(self, event):
        if event.latency > self.worst_dram:
            self.worst_dram = event.latency


def main():
    workload = make_widx_workload(num_keys=1024, num_probes=2048,
                                  num_buckets=512, skew=1.1, seed=7)
    model = WidxXCacheModel(workload,
                            config=table3_config("widx", scale=0.0625))

    # attach the observers BEFORE running — one shared bus, three views
    scoreboard = model.system.observe(WalkScoreboard())
    metrics = model.system.observe(MetricsProcessor())
    trace_path = os.path.join(tempfile.gettempdir(),
                              "xcache_widx_trace.json")
    perfetto = model.system.observe(PerfettoExporter(trace_path))

    result = model.run()
    perfetto.close()

    print("Widx hash-probe run under full observation")
    print(f"  cycles={result.cycles} hit-rate={result.hit_rate:.2f} "
          f"validated={result.checks_passed}\n")

    print("1. custom TypedEventProcessor (WalkScoreboard):")
    print(f"   walkers dispatched={scoreboard.dispatches} "
          f"retired={scoreboard.retires} found={scoreboard.found}")
    print(f"   longest walk={scoreboard.longest_walk} cycles, "
          f"worst DRAM round-trip={scoreboard.worst_dram} cycles\n")

    print("2. stock MetricsProcessor:")
    print(metrics.summary())
    print()

    with open(trace_path) as fh:
        trace = json.load(fh)
    spans = sum(1 for e in trace["traceEvents"] if e.get("ph") == "X")
    print("3. PerfettoExporter:")
    print(f"   wrote {trace_path} ({len(trace['traceEvents'])} trace "
          f"events, {spans} spans)")
    print("   open it at https://ui.perfetto.dev — each walker context "
          "is a track;\n   DRAM transactions render as async slices")

    assert scoreboard.dispatches >= scoreboard.retires > 0
    assert spans > 0


if __name__ == "__main__":
    main()
