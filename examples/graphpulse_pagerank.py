#!/usr/bin/env python
"""Event-driven PageRank with an X-Cache event queue (GraphPulse).

The event queue of GraphPulse becomes an X-Cache whose meta-tag is the
vertex id: a store-miss allocates an entry and deposits the event
payload (no DRAM walk at all), store-hits *coalesce* payloads with the
hit-port adder, and processing elements pop events with take-loads.

We run delta-PageRank on a synthetic power-law graph to convergence and
validate against the functional reference.

Run:  python examples/graphpulse_pagerank.py
"""

from repro.data import pagerank_event_driven
from repro.dsa import GraphPulseAddressModel, GraphPulseXCacheModel
from repro.workloads import p2p_gnutella08


def main():
    graph = p2p_gnutella08(scale=0.1, seed=8)
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges "
          "(p2p-Gnutella08 stand-in)\n")

    model = GraphPulseXCacheModel(graph, num_pes=8, epsilon=1e-7)
    result = model.run()

    print(f"X-Cache event queue: converged in {result.cycles} cycles")
    print(f"  events processed : {int(result.extras['events_processed'])}")
    print(f"  coalescing merges: {int(result.extras['merge_ops'])} "
          "(events absorbed on the hit port)")
    print(f"  rank mass        : {result.extras['rank_sum']:.6f} (should be ~1)")
    print(f"  event-store DRAM fills: "
          f"{model.system.controller.stats.get('dram_fills')} "
          "(the queue never walks)")

    ref, _ = pagerank_event_driven(graph, epsilon=1e-9)
    l1 = sum(abs(a - b) for a, b in zip(model.rank, ref))
    print(f"  L1 error vs reference: {l1:.2e}")

    top = sorted(range(graph.num_vertices), key=lambda v: -model.rank[v])[:5]
    print("\n  top-5 vertices by rank:")
    for v in top:
        print(f"    v{v:<6} rank {model.rank[v]:.5f} "
              f"(in-hub degree {graph.out_degree(v)} out)")

    addr = GraphPulseAddressModel(graph, num_pes=8, epsilon=1e-7).run()
    print(f"\naddress-cache comparator: {addr.cycles} cycles "
          f"({addr.cycles / result.cycles:.2f}x slower) — every event "
          "insert is a\nread-modify-write through the cache instead of a "
          "single coalescing store.")
    assert result.checks_passed and addr.checks_passed


if __name__ == "__main__":
    main()
