#!/usr/bin/env python
"""Bring your own data structure: a B-tree walker, linted and disassembled.

The paper's pitch is that X-Cache is a *reusable idiom*: a new DSA means
a new walker program, not a new cache. This example plays the role of
that DSA architect for a structure the paper never evaluated — a B-tree
point-lookup (DASX's other iterator class):

1. compile the coroutine table into microcode,
2. run the toolflow's static checks (the linter),
3. inspect the binary (the disassembler + derived generator sizes),
4. execute lookups against a real tree in simulated DRAM, with
   meta-tag hits short-circuiting the entire root-to-leaf descent.

Run:  python examples/custom_btree_walker.py
"""

import random

from repro.core import (
    XCacheConfig,
    XCacheSystem,
    disassemble,
    lint_walker,
    program_stats,
)
from repro.data import BTree
from repro.dsa import build_btree_walker


def main():
    program = build_btree_walker()

    findings = lint_walker(program, XCacheConfig(xregs_per_walker=16))
    print(f"linter: {len(findings)} findings")
    for finding in findings:
        print(" ", finding.render())

    stats = program_stats(program)
    print("generator sizes:", stats.render())
    print()
    print("\n".join(disassemble(program).splitlines()[:14]))
    print("  ... (see disassemble() for the rest)\n")

    config = XCacheConfig(ways=4, sets=32, data_sectors=128, num_active=8,
                          xregs_per_walker=16, tag_fields=("key",))
    system = XCacheSystem(config, program)
    rng = random.Random(7)
    items = {rng.randrange(1, 1 << 40): rng.randrange(1 << 32)
             for _ in range(500)}
    tree = BTree(system.image, items.items())
    print(f"tree: {len(items)} keys, height {tree.height}, "
          f"{tree.num_nodes} block-sized nodes in DRAM")

    hot = rng.sample(sorted(items), 8)
    for key in hot:               # first touches: full tree descents
        system.load((key,), walk_fields={"root": tree.root_addr})
    system.run()
    trace = [rng.choice(hot) for _ in range(56)]
    for key in trace:             # steady state: meta-tag hits
        system.load((key,), walk_fields={"root": tree.root_addr})
    responses = system.run()
    trace = hot + trace

    wrong = sum(1 for r in responses
                if int.from_bytes(r.data[:8], "little")
                != items[r.request.tag[0]])
    summary = system.summary()
    print(f"\n{len(trace)} lookups over 8 hot keys: "
          f"{summary['hits']} hits, {summary['misses']} tree descents, "
          f"{wrong} wrong answers")
    print(f"DRAM reads: {summary['dram_reads']} "
          f"(~height x misses — hits skip the whole descent)")
    mean_l2u = (system.controller.stats.histogram('load_to_use').mean)
    print(f"mean load-to-use: {mean_l2u:.1f} cycles "
          f"(hit path: {config.hit_latency})")


if __name__ == "__main__":
    main()
