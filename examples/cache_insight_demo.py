#!/usr/bin/env python
"""Why did the cache miss?  A guided tour of `repro.obs.cachelens`.

A deliberately tiny X-Cache (2 ways x 8 sets = 16 meta-tag entries)
is driven through three access phases with known behaviour:

1. **cold + warm** — 8 tags, one per set, touched twice: the first
   pass is all compulsory misses, the second all hits;
2. **conflict thrash** — 4 tags that all land in set 0 (the meta-tag
   set index is ``tag & (sets-1)``, so 32, 40, 48, 56 collide),
   cycled repeatedly: the working set fits the cache *capacity* with
   room to spare but not the 2 ways of one set, so every revisit is a
   conflict miss;
3. **capacity stream** — 24 distinct tags (1.5x the cache) cycled
   twice: the second pass misses even in a fully-associative cache of
   equal size, so those misses are capacity, not conflict.

The lens classifies every miss by replaying the same stream through
shadow caches (a fully-associative LRU of equal capacity plus
would-hit-if geometries at 2x ways / 2x sets), so at the end we can
check the taxonomy against what we engineered — and read off the
sizing answer ("would doubling ways have helped?") directly.

Run:  python examples/cache_insight_demo.py
"""

from repro.core import (
    EV_FILL,
    EV_META_LOAD,
    IMM,
    MSG,
    R,
    Transition,
    WalkerSpec,
    XCacheConfig,
    XCacheSystem,
    compile_walker,
    op,
)


def build_system():
    """One-block fetch walker over a 2-way x 8-set meta-tag cache."""
    spec = WalkerSpec(
        name="toy",
        transitions=(
            Transition("Default", EV_META_LOAD, (
                op.allocM(),
                op.mov(R(0), MSG("addr")),
                op.enq_dram(addr=R(0)),
                op.state("Wait"),
            )),
            Transition("Wait", EV_FILL, (
                op.and_(R(1), R(0), IMM(63)),
                op.allocD(R(2), IMM(1)),
                op.write(R(2), R(1), nbytes=8, from_msg=True),
                op.update("sector_start", R(2)),
                op.addi(R(3), R(2), 1),
                op.update("sector_end", R(3)),
                op.finish(),
            )),
        ),
    )
    config = XCacheConfig(ways=2, sets=8, data_sectors=256, num_active=4,
                          num_exe=2, xregs_per_walker=8)
    return XCacheSystem(config, compile_walker(spec))


def main():
    system = build_system()
    # reuse_sample=1: exact Mattson scan (the default 1:8 sample is for
    # production-size runs; at demo scale exactness is free)
    lens = system.observe_cachelens(reuse_sample=1)
    cache = system.controller.name

    # one backing slot per tag we will ever touch
    tags = sorted({t for t in range(8)}            # phase 1: one per set
                  | {32, 40, 48, 56}               # phase 2: all -> set 0
                  | {100 + t for t in range(24)})  # phase 3: 1.5x capacity
    base = system.image.alloc_u64_array([7 * t for t in tags])
    slot = {t: base + 8 * i for i, t in enumerate(tags)}

    def touch(tag):
        system.load((tag,), walk_fields={"addr": slot[tag]})
        system.run()

    def counts():
        e = lens.summary()[cache]
        return {k: e[k] for k in ("accesses", "hits", "misses",
                                  "compulsory", "capacity", "conflict")}

    print("=" * 68)
    print("[1] geometry: 2 ways x 8 sets = 16 meta-tag entries;"
          " set = tag & 7")
    print("=" * 68)

    # -- phase 1: cold then warm ---------------------------------------
    for t in range(8):
        touch(t)
    for t in range(8):
        touch(t)
    after_1 = counts()
    print(f"\n[2] phase 1 (tags 0..7 twice):        {after_1}")
    assert after_1["compulsory"] == 8 and after_1["hits"] == 8

    # -- phase 2: four tags fighting over one set ----------------------
    for _ in range(6):
        for t in (32, 40, 48, 56):
            touch(t)
    after_2 = counts()
    print(f"    phase 2 (32,40,48,56 x 6 rounds): {after_2}")
    # round 1 is compulsory; every later round misses the 2-way set but
    # fits comfortably in the 16-entry FA shadow -> conflict
    assert after_2["compulsory"] == 12
    assert after_2["conflict"] == 20
    top = lens.top_conflict_sets(cache, k=1)
    assert top and top[0][0] == 0, f"expected set 0 hottest, got {top}"
    print(f"    hottest conflict set: set{top[0][0]}"
          f" ({top[0][1]} conflict misses)")

    # -- phase 3: working set 1.5x the whole cache ---------------------
    for _ in range(2):
        for t in range(24):
            touch(100 + t)
    after_3 = counts()
    print(f"    phase 3 (24 tags x 2 rounds):     {after_3}")
    # pass 2 misses even in the equal-capacity FA shadow -> capacity
    assert after_3["compulsory"] == 36
    assert after_3["capacity"] == 24

    # -- the lens report -----------------------------------------------
    print("\n[3] lens.report() — the same block the harness prints for"
          " --misses:\n")
    print(lens.report())

    # -- taxonomy conservation + the sizing answer ---------------------
    entry = lens.summary()[cache]
    assert (entry["compulsory"] + entry["capacity"] + entry["conflict"]
            == entry["misses"]), "taxonomy must partition the misses"
    assert entry["hit_rate"] == system.controller.hit_rate()
    would_ways = entry["would_hit_more_ways"]
    would_sets = entry["would_hit_more_sets"]
    # the phase-2 thrash fits in 4 ways (and spreads across 16 sets),
    # so both would-hit-if shadows convert those 20 conflict misses
    assert would_ways >= 20 and would_sets >= 20
    print("\n[4] sizing answer: of"
          f" {entry['misses']} misses, {would_ways} would hit with 2x"
          f" ways, {would_sets} with 2x sets — the conflict share"
          f" ({entry['conflict']} misses, all in set 0) is curable by"
          " associativity; the capacity share is not.")
    print("\nall assertions passed")


if __name__ == "__main__":
    main()
