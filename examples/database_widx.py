#!/usr/bin/env python
"""Hash-join acceleration (Widx) with a key-tagged X-Cache.

Reproduces the paper's motivating database scenario end-to-end:

1. build a chained hash index (key → RID) in simulated DRAM;
2. probe it with a Zipfian TPC-H-like trace three ways —
   X-Cache (meta-tag = key), the original Widx (always hash + walk
   through an address cache), and an equally-sized address cache with
   an ideal walker;
3. report runtime, hit rates, DRAM traffic, and energy.

Run:  python examples/database_widx.py
"""

from repro.core.config import table3_config
from repro.dsa import (
    HASH_CYCLES_STRING,
    WidxAddressModel,
    WidxBaselineModel,
    WidxXCacheModel,
)
from repro.workloads import make_widx_workload


def main():
    print("building a 4096-key hash index; probing with a skewed "
          "8192-probe trace")
    print("(string keys: hashing costs %d cycles)\n" % HASH_CYCLES_STRING)
    workload = make_widx_workload(
        num_keys=4096,
        num_probes=8192,
        num_buckets=2048,            # load factor 2: chains to walk
        skew=1.3,                    # hot join keys
        hash_cycles=HASH_CYCLES_STRING,
        seed=42,
    )
    config = table3_config("widx", scale=0.0625)
    print(f"X-Cache geometry: {config.ways} ways x {config.sets} sets, "
          f"#Active={config.num_active}, #Exe={config.num_exe}\n")

    results = [
        WidxXCacheModel(workload, config=config).run(),
        WidxBaselineModel(workload, num_walkers=8).run(),
        WidxAddressModel(workload, xcache_config=config).run(),
    ]

    print(f"{'variant':<10} {'cycles':>9} {'hit rate':>9} {'DRAM':>7} "
          f"{'power mW':>9} {'validated':>10}")
    for r in results:
        power = r.energy.power_mw() if r.energy else 0.0
        print(f"{r.variant:<10} {r.cycles:>9} {r.hit_rate:>9.2f} "
              f"{r.dram_accesses:>7} {power:>9.2f} {str(r.checks_passed):>10}")

    x, base, addr = results
    print(f"\nX-Cache vs original Widx : {x.speedup_over(base):.2f}x "
          "(paper: 1.54x, higher on string-keyed queries)")
    print(f"X-Cache vs address cache : {x.speedup_over(addr):.2f}x "
          "(paper: 1.7x average)")
    print("\nwhy: on a meta-tag hit the key IS the tag — no hashing, no "
          "bucket walk,\njust a 3-cycle load-to-use. The address-tagged "
          "designs re-walk every probe.")


if __name__ == "__main__":
    main()
