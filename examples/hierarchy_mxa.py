#!/usr/bin/env python
"""X-Cache hierarchies (paper §6): MX, MXA, and MXS.

Three compositions around the same hash-index walker:

* **MX**  — a walker-less L1 X-Cache forwarding meta-tags to a
  last-level X-Cache (metadata is a global namespace, like addresses);
* **MXA** — the X-Cache's walker fills through a conventional address
  cache instead of raw DRAM (non-inclusive levels);
* **MXS** — a dense array is *streamed* beside the X-Cache (how SpArch
  streams matrix A while X-Cache holds B's rows).

Run:  python examples/hierarchy_mxa.py
"""

from repro.core import (
    CacheBackedMemory,
    MetaL1,
    StreamBuffer,
    XCacheConfig,
)
from repro.core.controller import Controller
from repro.data import HashIndex
from repro.dsa.walkers import build_hash_walker
from repro.mem import AddressCache, CacheConfig, DRAMModel, MemoryImage
from repro.sim import Simulator


def demo_mx():
    print("== MX: two-level X-Cache ==")
    sim = Simulator()
    image = MemoryImage()
    dram = DRAMModel(sim, image)
    last_level = Controller(
        sim, XCacheConfig(ways=4, sets=64, data_sectors=512, num_active=8,
                          xregs_per_walker=16),
        build_hash_walker(256, hash_cycles=20), dram)
    index = HashIndex.build(image, [(k, 500 + k) for k in range(128)], 256)
    l1 = MetaL1(sim, last_level, entries=16)

    latencies = []
    keys = [5, 9, 5, 5, 9, 5]
    def probe(i=0):
        if i == len(keys):
            return
        start = sim.now
        l1.meta_load((keys[i],), lambda r: (
            latencies.append((keys[i], sim.now - start)), probe(i + 1)),
            walk_fields={"table": index.table_addr})
    probe()
    sim.run()
    for key, lat in latencies:
        print(f"  key {key}: {lat:3d} cycles")
    print(f"  L1 hit rate {l1.hit_rate():.2f} — repeats served in "
          f"{l1.hit_latency} cycle(s) without touching the last level\n")


def demo_mxa():
    print("== MXA: X-Cache over an address cache ==")
    sim = Simulator()
    image = MemoryImage()
    dram = DRAMModel(sim, image)
    addr_cache = AddressCache(sim, dram, CacheConfig(ways=4, sets=64))
    xcache = Controller(
        sim, XCacheConfig(ways=1, sets=4, data_sectors=64, num_active=4,
                          xregs_per_walker=16),
        build_hash_walker(256, hash_cycles=20),
        CacheBackedMemory(addr_cache, image))
    index = HashIndex.build(image, [(k, 900 + k) for k in range(64)], 256)
    xcache.set_response_handler(lambda r: None)

    # A tiny (4-entry) X-Cache thrashes; the address level below catches
    # the re-walks. The two levels are non-inclusive (different namespaces).
    for key in list(range(12)) * 2:
        xcache.meta_load((key,), walk_fields={"table": index.table_addr})
    sim.run()
    print(f"  X-Cache: {xcache.stats.get('hits')} meta hits, "
          f"{xcache.stats.get('misses')} walks")
    print(f"  address level: {addr_cache.stats.get('hits')} line hits "
          f"caught re-walks; DRAM reads {dram.stats.get('reads')}\n")


def demo_mxs():
    print("== MXS: X-Cache + stream ==")
    sim = Simulator()
    image = MemoryImage()
    dram = DRAMModel(sim, image)
    base = image.alloc_u64_array(list(range(256)))
    stream = StreamBuffer(sim, dram, base, 8, 256, depth=8)

    total = {"sum": 0, "n": 0}
    def consume(i=0):
        if i == 256:
            return
        stream.read(i, lambda data: (
            total.__setitem__("sum", total["sum"]
                              + int.from_bytes(data, "little")),
            total.__setitem__("n", total["n"] + 1),
            consume(i + 1)))
    consume()
    sim.run()
    print(f"  streamed {total['n']} elements (sum {total['sum']}) in "
          f"{sim.now} cycles")
    print(f"  prefetcher: {stream.stats.get('stream_hits')} in-window hits "
          f"of {stream.stats.get('reads')} reads — dense data needs no "
          "meta-tags")


if __name__ == "__main__":
    demo_mx()
    demo_mxa()
    demo_mxs()
