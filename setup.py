"""Thin setup.py shim.

The target environment is offline and lacks the ``wheel`` package, so
PEP-517 editable installs fail; this shim lets
``pip install -e . --no-build-isolation`` fall back to the legacy
``setup.py develop`` path. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
