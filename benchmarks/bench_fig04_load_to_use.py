"""Figure 4: load-to-use latency, address tags vs meta-tags.

Widx probe trace; meta-tag hits answer in 3 cycles while the
address-tagged design hashes and walks even for resident data.
"""


def test_fig04(run_report):
    run_report("fig04")
