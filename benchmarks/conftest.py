"""Benchmark harness plumbing.

Each ``bench_*`` module regenerates one of the paper's tables or
figures at the ``full`` profile, prints the report (the figure's rows +
paper-vs-measured checks), benchmarks the wall time of the regeneration,
and asserts every expectation holds.

Figures 14/15/16 share one memoized suite run, so the first of them
pays the simulation cost and the others reuse it (as in the paper,
where one set of runs feeds several figures).
"""

import pytest

from repro.harness import run_experiment

PROFILE = "full"


@pytest.fixture
def run_report(benchmark):
    """Benchmark one experiment driver and verify its expectations."""

    def runner(exp_id: str):
        report = benchmark.pedantic(
            lambda: run_experiment(exp_id, PROFILE), rounds=1, iterations=1
        )
        print()
        print(report.render())
        assert report.all_ok, f"paper expectations missed:\n{report.render()}"
        return report

    return runner
