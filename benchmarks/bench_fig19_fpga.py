"""Figure 19: FPGA synthesis breakdown.

X-Reg dominates registers; Action-Executors dominate logic; <7%
of a Cyclone IV GX.
"""


def test_fig19(run_report):
    run_report("fig19")
