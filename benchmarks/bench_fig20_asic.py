"""Figure 20: ASIC synthesis at 45nm.

Controller: 0.11 mm^2 / 65K cells at the reference configuration.
"""


def test_fig20(run_report):
    run_report("fig20")
