"""Figure 7: controller occupancy, coroutines vs threads.

The same walk set executed as coroutines (X-registers only, yield
on long-latency events) and as coarse-grained blocking threads.
"""


def test_fig07(run_report):
    run_report("fig07")
