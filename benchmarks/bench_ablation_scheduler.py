"""Ablation: the front-end scheduler window.

DESIGN.md calls out the trigger-stage scheduler as a design choice: the
paper's controller "naturally eliminates structural hazards" by holding
hazard-blocked messages without stalling the traffic behind them. This
ablation forces strict head-of-line blocking (window=1) and compares it
against the default window, on a DASX round workload where preload
misses queue ahead of hits.
"""

from dataclasses import replace

import pytest

from repro.core.config import table3_config
from repro.dsa import DasxXCacheModel
from repro.workloads import make_widx_workload


def _run(window: int) -> int:
    workload = make_widx_workload(num_keys=2048, num_probes=4096,
                                  num_buckets=1024, skew=1.3,
                                  hash_cycles=30, seed=23, name="dasx")
    cfg = replace(table3_config("dasx", scale=0.125), sched_window=window)
    result = DasxXCacheModel(workload, config=cfg).run()
    assert result.checks_passed
    return result.cycles


def test_ablation_scheduler_window(benchmark):
    cycles = benchmark.pedantic(
        lambda: {w: _run(w) for w in (1, 2, 8)}, rounds=1, iterations=1)
    print("\nscheduler-window ablation (DASX rounds):")
    for window, cyc in cycles.items():
        print(f"  window={window}: {cyc} cycles "
              f"({cycles[1] / cyc:.2f}x vs head-of-line)")
    # hazard-tolerant scheduling must not lose to head-of-line blocking
    assert cycles[8] <= cycles[1] * 1.02
