"""Snapshot-fork sweep vs N straight runs: the warm-start payoff.

A parameter sweep over fork-safe knobs re-simulates the same warmup for
every point when run straight. The snapshot-fork sweep
(:mod:`repro.harness.sweep`) pays it once: warm one model to
``WARM_FRAC`` of the run, save the snapshot, then fork it into each
grid point — restore, apply overrides, simulate only the post-warmup
tail.

The workload is the regime warm-start sweeps exist for: a chase-heavy
Widx index (32-entry average bucket chains, 30% probe misses walking
full chains), where warmup burns many cycles per byte of retained
state. Uniform shallow profiles spend proportionally more snapshot
bytes per simulated cycle and undersell the machinery; the committed
record documents the workload shape it measured.

Two gated metrics, one record:

* ``speedup`` — wall time of ``POINTS`` straight runs (overrides
  applied at build) over warm-once + save + ``POINTS`` × (restore +
  tail). Must clear the issue's ≥3x bar at 8 points.
* ``save_restore_overhead_x`` — total snapshot machinery cost (the one
  save plus every restore) over the total warmup the sweep replaced
  (``points`` × the warmup each fork skips). Must stay ≤ 0.10: the
  machinery costs at most 10% of what it saves.

Run standalone to emit ``BENCH_ckpt.json``::

    PYTHONPATH=src python benchmarks/bench_checkpoint_sweep.py --out BENCH_ckpt.json

Under pytest the module asserts both bars (set ``REPRO_BENCH_SMOKE=1``
for a direction-only smoke run, as CI does on shared runners).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import replace

from repro.harness.profiles import get_profile
from repro.harness.sweep import sweep_points
from repro.sim import checkpoint as ck

DSA = "widx"
WARM_FRAC = 0.9
#: chase-heavy index: 16384 keys over 512 buckets = 32-deep chains
WORKLOAD = dict(num_keys=16384, num_probes=2048, num_buckets=512,
                skew=1.1, miss_fraction=0.3, seed=7)
#: 8-point fork-safe grid (the issue's sweep size)
GRID = {"num_exe": [2, 4], "dram.t_cl": [8, 11], "hit_latency": [1, 2]}
SPEEDUP_FLOOR = 3.0            # acceptance bar from the issue
OVERHEAD_CEIL = 0.10           # save+restore ≤ 10% of warmup replaced
SMOKE_ENV = "REPRO_BENCH_SMOKE"


def _build(overrides=None):
    """A chase-heavy Widx model, overrides applied at build (the
    straight-run comparator — mirrors harness.sweep.build_model)."""
    from repro.core.messages import reset_ids
    from repro.dsa.widx import WidxXCacheModel
    from repro.mem.dram import DRAMConfig
    from repro.workloads.tpch import make_widx_workload

    xc, dr = {}, {}
    for key, value in (overrides or {}).items():
        if key.startswith("dram."):
            dr[key[len("dram."):]] = value
        else:
            xc[key] = value
    config = replace(get_profile("quick").xcache_config(DSA), **xc)
    reset_ids()
    return WidxXCacheModel(make_widx_workload(**WORKLOAD), config=config,
                           dram_config=replace(DRAMConfig(), **dr))


def drive_straight(points) -> float:
    """Wall time of one full straight run per sweep point."""
    start = time.perf_counter()
    for overrides in points:
        result = _build(overrides).run()
        assert result.checks_passed
    return time.perf_counter() - start


def drive_sweep(points, snapshot_path: str) -> dict:
    """Warm once, snapshot, fork into every point; all times split out.

    The probe run that locates the warm point is calibration, not sweep
    cost (a real warm-start workflow knows its snapshot cycle), so the
    timed region starts at the warmup.
    """
    total_cycles = _build().run().cycles
    warm_cycles = max(1, int(total_cycles * WARM_FRAC))
    t0 = time.perf_counter()
    model = _build()
    ck.warm_model(model, warm_cycles)
    warm_s = time.perf_counter() - t0

    save_start = time.perf_counter()
    ck.save_model(snapshot_path, model)
    save_s = time.perf_counter() - save_start
    del model

    restore_s = 0.0
    tail_s = 0.0
    for overrides in points:
        t1 = time.perf_counter()
        restored, _header = ck.load_model(snapshot_path,
                                          overrides=dict(overrides) or None)
        t2 = time.perf_counter()
        result = ck.finish_model(restored)
        tail_s += time.perf_counter() - t2
        restore_s += t2 - t1
        assert result.checks_passed
    return {
        "total_s": time.perf_counter() - t0,
        "warm_s": warm_s,
        "save_s": save_s,
        "restore_s": restore_s,
        "tail_s": tail_s,
        "warm_cycles": warm_cycles,
        "total_cycles": total_cycles,
    }


def compare(out_dir: str = ".") -> dict:
    points = sweep_points(GRID)
    snapshot_path = os.path.join(out_dir, f"bench_warm_{DSA}.ckpt")
    try:
        sweep = drive_sweep(points, snapshot_path)
        straight_s = drive_straight(points)
    finally:
        if os.path.exists(snapshot_path):
            os.remove(snapshot_path)
    n = len(points)
    mean_restore = sweep["restore_s"] / n
    # total machinery cost over the total warmup it replaced: each of
    # the n forks skips one warmup, paying one restore plus 1/n of the
    # single save
    overhead_x = (sweep["save_s"] + sweep["restore_s"]) / (n * sweep["warm_s"])
    return {
        "benchmark": "checkpoint_sweep",
        "dsa": DSA,
        "workload": "chase{num_keys}x{num_buckets}-p{num_probes}".format(
            **WORKLOAD),
        "points": n,
        "warm_frac": WARM_FRAC,
        "straight_s": round(straight_s, 3),
        "sweep_s": round(sweep["total_s"], 3),
        "warm_s": round(sweep["warm_s"], 3),
        "save_s": round(sweep["save_s"], 4),
        "mean_restore_s": round(mean_restore, 4),
        "tail_s": round(sweep["tail_s"], 3),
        "speedup": round(straight_s / sweep["total_s"], 2),
        "save_restore_overhead_x": round(overhead_x, 4),
    }


def test_snapshot_sweep_speedup(tmp_path):
    """8 post-warmup points run ≥3x faster forked than straight, and
    the snapshot machinery costs ≤10% of the warmup it replaces."""
    smoke = bool(os.environ.get(SMOKE_ENV))
    result = compare(str(tmp_path))
    print()
    print(json.dumps(result, indent=2))
    assert result["points"] == 8
    if smoke:
        assert result["speedup"] > 1.0        # direction, not magnitude
    else:
        assert result["speedup"] >= SPEEDUP_FLOOR, result
        assert result["save_restore_overhead_x"] <= OVERHEAD_CEIL, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None,
                        help="write the result record as JSON here")
    args = parser.parse_args(argv)
    result = compare()
    text = json.dumps(result, indent=2)
    print(text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
