"""Back-end throughput: fused routine compilation vs the interpreter.

Two measurements, one record:

* **ALU-burst microbenchmark** — a synthetic walker whose entry routine
  is one ``allocM`` plus a 29-action fusible ALU chain sized to fit a
  wide ``#Exe=32`` budget, so the routine compiler fuses ~94 % of the
  dynamic action stream into a single dispatch per request. The same
  request stream runs under ``compile_mode="off"`` (pure interpreter)
  and ``"on"``; throughput is back-end actions/sec (the interpreter's
  ``actions_total`` counter over wall time — the compiled path bumps the
  same counters, so both modes count identical work).
* **fig14 ci wall ratio** — the end-to-end golden-trace suite (all five
  DSAs at the ``ci`` profile) wall time compiled over interpreted, as a
  lower-is-better ``*_x`` ratio. Table-3 geometries run #Exe=2..4, so
  only short blocks fuse and the win here is modest; the metric guards
  against the compiled path ever *costing* end-to-end time.

Run standalone to emit ``BENCH_compile.json``::

    PYTHONPATH=src python benchmarks/bench_compile_backend.py --out BENCH_compile.json

Under pytest the module asserts the compiled back-end clears the
issue's >=1.5x actions/sec bar (set ``REPRO_BENCH_SMOKE=1`` for a
correctness-only smoke run, as CI does on shared runners where timing
is noisy; smoke also shrinks the fig14 leg to a single-workload suite).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.core import (
    IMM,
    MSG,
    R,
    Transition,
    WalkerSpec,
    XCacheConfig,
    XCacheSystem,
    compile_walker,
    op,
)
from repro.core.config import COMPILE_MODE_ENV
from repro.core.messages import EV_META_LOAD
from repro.harness import clear_cache, run_fig14_suite
from repro.harness.suite import SUITE_CACHE_ENV

NUM_EXE = 32          # wide back-end so the whole ALU chain fuses
ALU_ROUNDS = 7        # 1 mov + 4*7 ALU ops = 29 actions <= NUM_EXE
DEFAULT_REQUESTS = 20_000
SPEEDUP_FLOOR = 1.5   # acceptance bar from the issue
SMOKE_ENV = "REPRO_BENCH_SMOKE"

_SMOKE_SUITE = ("TPC-H-19",)


def make_program():
    """Entry-only walker: allocM, a fusible ALU burst, finish."""
    body = [
        op.allocM(),
        op.mov(R(0), MSG("addr")),
    ]
    for i in range(ALU_ROUNDS):
        body.append(op.addi(R(1), R(0), i + 1))
        body.append(op.xor(R(2), R(1), R(0)))
        body.append(op.and_(R(3), R(2), IMM(0xFFFF)))
        body.append(op.add(R(0), R(0), R(3)))
    body.append(op.finish())
    spec = WalkerSpec(
        name="alu-burst",
        transitions=(
            Transition("Default", EV_META_LOAD, tuple(body)),
        ),
    )
    return compile_walker(spec)


def make_config(compile_mode: str) -> XCacheConfig:
    return XCacheConfig(ways=8, sets=256, num_active=8, num_exe=NUM_EXE,
                        xregs_per_walker=8, compile_mode=compile_mode,
                        name=f"alu-burst-{compile_mode}")


def drive(compile_mode: str, requests: int):
    """Run ``requests`` distinct-tag loads; return (actions/sec, actions)."""
    system = XCacheSystem(make_config(compile_mode), make_program())
    start = time.perf_counter()
    for i in range(requests):
        system.load((i,), walk_fields={"addr": i * 64})
    system.run()
    elapsed = time.perf_counter() - start
    actions = system.controller.stats.counter("actions_total").value
    assert len(system.responses) == requests, (len(system.responses), requests)
    assert actions >= requests * (2 + 4 * ALU_ROUNDS), (actions, requests)
    return actions / elapsed, actions


def fig14_wall(compile_mode: str, workloads) -> float:
    """Cold wall-clock seconds for the fig14 ci suite in one mode."""
    saved_mode = os.environ.get(COMPILE_MODE_ENV)
    saved_cache = os.environ.pop(SUITE_CACHE_ENV, None)
    os.environ[COMPILE_MODE_ENV] = compile_mode
    clear_cache()
    try:
        start = time.perf_counter()
        run_fig14_suite("ci", workloads=workloads)
        return time.perf_counter() - start
    finally:
        clear_cache()
        if saved_mode is None:
            os.environ.pop(COMPILE_MODE_ENV, None)
        else:
            os.environ[COMPILE_MODE_ENV] = saved_mode
        if saved_cache is not None:
            os.environ[SUITE_CACHE_ENV] = saved_cache


def compare(requests: int = DEFAULT_REQUESTS,
            suite_workloads=None) -> dict:
    """Benchmark both modes on the same work; return the result record."""
    # warm-up pass per mode so import/alloc effects don't skew timing
    drive("off", min(requests, 2_000))
    drive("on", min(requests, 2_000))
    interp_aps, interp_actions = drive("off", requests)
    compiled_aps, compiled_actions = drive("on", requests)
    assert interp_actions == compiled_actions, \
        (interp_actions, compiled_actions)
    wall_off = fig14_wall("off", suite_workloads)
    wall_on = fig14_wall("on", suite_workloads)
    return {
        "benchmark": "compile_backend",
        "requests": requests,
        "alu_rounds": ALU_ROUNDS,
        "num_exe": NUM_EXE,
        "actions": interp_actions,
        "backend_interp_actions_per_sec": round(interp_aps),
        "backend_compiled_actions_per_sec": round(compiled_aps),
        "speedup": round(compiled_aps / interp_aps, 2),
        "fig14_ci_wall_x": round(wall_on / wall_off, 2),
    }


def test_compile_backend_speedup():
    """Compiled back-end sustains >=1.5x the interpreter's actions/sec."""
    smoke = bool(os.environ.get(SMOKE_ENV))
    requests = 2_000 if smoke else DEFAULT_REQUESTS
    result = compare(requests,
                     suite_workloads=_SMOKE_SUITE if smoke else None)
    print()
    print(json.dumps(result, indent=2))
    if smoke:
        assert result["backend_compiled_actions_per_sec"] > 0
    else:
        assert result["speedup"] >= SPEEDUP_FLOOR, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=DEFAULT_REQUESTS)
    parser.add_argument("--smoke-suite", action="store_true",
                        help="shrink the fig14 leg to one workload")
    parser.add_argument("--out", default=None,
                        help="write the result record as JSON here")
    args = parser.parse_args(argv)
    result = compare(args.requests,
                     suite_workloads=_SMOKE_SUITE if args.smoke_suite
                     else None)
    text = json.dumps(result, indent=2)
    print(text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
