"""Ablation: hierarchy composition (§6 — MX and MXA, which the paper
describes but does not evaluate).

* **flat** — one X-Cache straight over DRAM (the Figure-14 setup);
* **MX**   — a small walker-less L1 X-Cache in front of it: hot meta-tags
  are served upstream at 1-cycle latency, filtering the last level;
* **MXA**  — the X-Cache's walker fills through an address cache instead
  of raw DRAM: re-walks after meta-tag evictions hit cached lines.

Driven by a hot-key Widx probe trace where both effects can show up.
"""

import pytest

from repro.core import CacheBackedMemory, MetaL1, XCacheConfig
from repro.core.controller import Controller
from repro.data import HashIndex
from repro.dsa.walkers import build_hash_walker
from repro.mem import AddressCache, CacheConfig, DRAMModel, MemoryImage
from repro.sim import Simulator
from repro.workloads import make_widx_workload

_CFG = dict(ways=2, sets=32, data_sectors=128, num_active=8,
            xregs_per_walker=16)


def _workload():
    return make_widx_workload(num_keys=1024, num_probes=4096,
                              num_buckets=512, skew=1.3, hash_cycles=20,
                              seed=47)


def _drive_flat_or_mxa(use_addr_level: bool):
    workload = _workload()
    sim = Simulator()
    image = MemoryImage()
    dram = DRAMModel(sim, image)
    backing = dram
    addr_cache = None
    if use_addr_level:
        addr_cache = AddressCache(sim, dram, CacheConfig(ways=8, sets=64))
        backing = CacheBackedMemory(addr_cache, image)
    controller = Controller(sim, XCacheConfig(**_CFG),
                            build_hash_walker(workload.num_buckets, 20),
                            backing)
    index = HashIndex.build(image, workload.pairs, workload.num_buckets)
    expected = {k: index.probe(k) for k in set(workload.probes)}
    state = {"next": 0, "bad": 0, "last": 0}

    def issue():
        if state["next"] < len(workload.probes):
            key = workload.probes[state["next"]]
            state["next"] += 1
            controller.meta_load((key,),
                                 walk_fields={"table": index.table_addr})

    def on_resp(resp):
        key = resp.request.tag[0]
        got = (int.from_bytes(resp.data[:8], "little")
               if resp.found and resp.data else None)
        if got != expected[key]:
            state["bad"] += 1
        state["last"] = resp.completed_at
        issue()

    controller.set_response_handler(on_resp)
    for _ in range(16):
        issue()
    sim.run()
    assert state["bad"] == 0
    return state["last"], dram.stats.get("reads")


def _drive_mx():
    workload = _workload()
    sim = Simulator()
    image = MemoryImage()
    dram = DRAMModel(sim, image)
    last_level = Controller(sim, XCacheConfig(**_CFG),
                            build_hash_walker(workload.num_buckets, 20),
                            dram)
    l1 = MetaL1(sim, last_level, entries=64)
    index = HashIndex.build(image, workload.pairs, workload.num_buckets)
    expected = {k: index.probe(k) for k in set(workload.probes)}
    state = {"next": 0, "bad": 0, "last": 0}

    def issue():
        if state["next"] >= len(workload.probes):
            return
        key = workload.probes[state["next"]]
        state["next"] += 1

        def on_resp(resp, key=key):
            got = (int.from_bytes(resp.data[:8], "little")
                   if resp.found and resp.data else None)
            if got != expected[key]:
                state["bad"] += 1
            state["last"] = sim.now
            issue()

        l1.meta_load((key,), on_resp,
                     walk_fields={"table": index.table_addr})

    for _ in range(16):
        issue()
    sim.run()
    assert state["bad"] == 0
    return state["last"], dram.stats.get("reads"), l1.hit_rate()


def test_ablation_hierarchy(benchmark):
    def sweep():
        flat = _drive_flat_or_mxa(use_addr_level=False)
        mxa = _drive_flat_or_mxa(use_addr_level=True)
        mx = _drive_mx()
        return flat, mxa, mx

    (flat, mxa, mx) = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nhierarchy ablation (hot-key Widx trace):")
    print(f"  flat : {flat[0]:>8} cycles, DRAM {flat[1]}")
    print(f"  MXA  : {mxa[0]:>8} cycles, DRAM {mxa[1]} "
          f"(address level soaks re-walks)")
    print(f"  MX   : {mx[0]:>8} cycles, DRAM {mx[1]}, L1 hit {mx[2]:.2f}")
    assert mxa[1] <= flat[1]     # the address level absorbs DRAM traffic
    assert mx[2] > 0.3           # hot keys concentrate in the tiny L1
