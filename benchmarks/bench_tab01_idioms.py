"""Table 1: X-Cache vs state-of-the-art storage idioms.

Qualitative taxonomy regenerated from structured idiom descriptors.
"""


def test_tab01(run_report):
    run_report("tab01")
