"""Service-layer throughput: warm worker pool vs fresh-process runs,
plus content-addressed dedup service rates.

Two measurements, one record:

* **Warm pool vs fresh processes** — the same batch of distinct ci
  experiment jobs executed (a) one fresh spawned worker process per
  job, paying interpreter boot + simulator imports + compile warm-up
  every time (what a service *without* a persistent pool would pay),
  and (b) through one long-lived :class:`repro.svc.service.Service`
  worker that boots once (boot excluded via ``wait_ready``) and then
  amortizes that setup across the batch. Both sides use one worker and
  the spawn start method, and the store is disabled, so ``pool_speedup``
  isolates process *warmth* — not parallelism, not dedup.
* **Dedup service rate** — after one simulation of a spec is stored,
  N identical submits resolve as store hits without touching a worker;
  ``dedup_hits_per_sec`` is the resolution rate and
  ``dedup_simulations`` (a config key: must stay exactly 1) is the
  counter-backed proof that N identical requests cost one simulation.

Run standalone to emit ``BENCH_svc.json``::

    PYTHONPATH=src python benchmarks/bench_svc_throughput.py --out BENCH_svc.json

Under pytest the module asserts the warm pool clears the issue's
>=1.3x-over-fresh-process bar (set ``REPRO_BENCH_SMOKE=1`` for a
correctness-only smoke run, as CI does on shared runners).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.svc.jobs import JobSpec
from repro.svc.pool import WorkerPool
from repro.svc.service import Service

DEFAULT_JOBS = 6
DEFAULT_DEDUP_REQUESTS = 200
EXPERIMENT = "fig04"
PROFILE = "ci"
POOL_SPEEDUP_FLOOR = 1.3       # acceptance bar from the issue
SMOKE_ENV = "REPRO_BENCH_SMOKE"


def make_specs(jobs: int):
    """Distinct jobs (per-job seed override) so nothing dedups and no
    in-worker memo crosses jobs — every job simulates fully."""
    return [JobSpec(experiment=EXPERIMENT, profile=PROFILE,
                    profile_overrides=(("seed", 7 + i),))
            for i in range(jobs)]


def run_fresh_process(spec: JobSpec) -> dict:
    """Execute one job on a worker spawned just for it (boot included)."""
    pool = WorkerPool(workers=1, health=False)
    pool.start()
    try:
        while True:
            for kind, handle, _job_id, payload in pool.poll(0.05):
                if kind == "ready":
                    pool.dispatch(handle, 1, spec)
                elif kind == "result":
                    assert payload["ok"], payload.get("error")
                    return payload
                elif kind == "died":  # pragma: no cover - bench guard
                    raise RuntimeError("bench worker died")
    finally:
        pool.stop()


def drive_cold(specs) -> float:
    """Jobs/sec with a fresh process per job."""
    start = time.perf_counter()
    for spec in specs:
        run_fresh_process(spec)
    return len(specs) / (time.perf_counter() - start)


def drive_warm(specs) -> float:
    """Jobs/sec through one long-lived service worker (boot excluded)."""
    service = Service(workers=1, store=None,
                      health=False).start(wait_ready=True)
    try:
        start = time.perf_counter()
        handles = [service.submit(spec) for spec in specs]
        for job in handles:
            assert job.result(timeout=600)["all_ok"] is not None
        return len(specs) / (time.perf_counter() - start)
    finally:
        service.close()


def drive_dedup(requests: int) -> dict:
    """Store-hit resolution rate for identical submits after the first."""
    spec = JobSpec(experiment=EXPERIMENT, profile=PROFILE)
    service = Service(workers=1, health=False).start(wait_ready=True)
    try:
        service.submit(spec).result(timeout=600)  # the one simulation
        start = time.perf_counter()
        for _ in range(requests):
            job = service.submit(spec)
            assert job.from_store
            job.result(0)
        elapsed = time.perf_counter() - start
        stats = service.store.stats
        assert stats.hits == requests, stats.as_dict()
        return {"hits_per_sec": requests / elapsed,
                "simulations": stats.misses}
    finally:
        service.close()


def compare(jobs: int = DEFAULT_JOBS,
            dedup_requests: int = DEFAULT_DEDUP_REQUESTS) -> dict:
    specs = make_specs(jobs)
    cold_jps = drive_cold(specs)
    warm_jps = drive_warm(specs)
    dedup = drive_dedup(dedup_requests)
    return {
        "benchmark": "svc_throughput",
        "experiment": EXPERIMENT,
        "profile": PROFILE,
        "workers": 1,
        "jobs": jobs,
        "dedup_requests": dedup_requests,
        "dedup_simulations": dedup["simulations"],
        "cold_jobs_per_sec": round(cold_jps, 3),
        "warm_jobs_per_sec": round(warm_jps, 3),
        "pool_speedup": round(warm_jps / cold_jps, 2),
        "dedup_hits_per_sec": round(dedup["hits_per_sec"]),
    }


def test_warm_pool_speedup():
    """The warm pool clears 1.3x over fresh-process-per-job, and N
    identical requests cost exactly one simulation."""
    smoke = bool(os.environ.get(SMOKE_ENV))
    jobs = 2 if smoke else DEFAULT_JOBS
    dedup_requests = 20 if smoke else DEFAULT_DEDUP_REQUESTS
    result = compare(jobs, dedup_requests)
    print()
    print(json.dumps(result, indent=2))
    assert result["dedup_simulations"] == 1, result
    if smoke:
        assert result["warm_jobs_per_sec"] > 0
        assert result["dedup_hits_per_sec"] > 0
    else:
        assert result["pool_speedup"] >= POOL_SPEEDUP_FLOOR, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=DEFAULT_JOBS)
    parser.add_argument("--dedup-requests", type=int,
                        default=DEFAULT_DEDUP_REQUESTS)
    parser.add_argument("--out", default=None,
                        help="write the result record as JSON here")
    args = parser.parse_args(argv)
    result = compare(args.jobs, args.dedup_requests)
    text = json.dumps(result, indent=2)
    print(text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
