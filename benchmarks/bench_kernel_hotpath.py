"""Event-kernel hot path: bucketed scheduler vs the seed heapq kernel.

Drives both kernels through the same synthetic event mix, shaped like a
Widx run at the ``full`` profile:

* ~70 % of events reschedule at delay 1 (back-to-back controller ticks,
  queue hand-offs, hash-unit pipelining);
* ~20 % at short DSA latencies (hash completion, walk steps) — delays
  drawn from {11, 15, 22, 26, 37};
* ~10 % at DRAM-fill distance (delay 60, beyond the cache hit path).

The delay sequence is precomputed so the benchmark times the kernel —
schedule + dispatch — rather than the RNG. 64 concurrent event chains
model a loaded system (Widx runs #Active=16 walkers per engine across
several engines and queues).

Run standalone to emit ``BENCH_kernel.json``::

    PYTHONPATH=src python benchmarks/bench_kernel_hotpath.py --out BENCH_kernel.json

Under pytest the module asserts the bucketed kernel clears the issue's
>=2.0x events/sec bar (set ``REPRO_BENCH_SMOKE=1`` for a correctness-only
smoke run, as CI does on shared runners where timing is noisy).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

from repro.sim import HeapSimulator, Simulator

CHAINS = 64          # concurrent event chains (walkers x engines + queues)
DEFAULT_EVENTS = 500_000
SPEEDUP_FLOOR = 2.0  # acceptance bar from the issue
SMOKE_ENV = "REPRO_BENCH_SMOKE"

_SHORT_DELAYS = (11, 15, 22, 26, 37)


def make_delays(num_events: int, seed: int = 1):
    """Precompute the Widx-shaped delay sequence (one entry per event)."""
    rng = random.Random(seed)
    delays = []
    for _ in range(num_events):
        r = rng.random()
        if r < 0.70:
            delays.append(1)
        elif r < 0.90:
            delays.append(rng.choice(_SHORT_DELAYS))
        else:
            delays.append(60)
    return delays


def drive(sim, num_events: int, delays) -> float:
    """Run ``num_events`` callbacks through ``sim``; return events/sec."""
    budget = [num_events]
    cursor = [0]

    def chain() -> None:
        if budget[0] <= 0:
            return
        budget[0] -= 1
        i = cursor[0]
        cursor[0] = i + 1
        sim.call_after(delays[i % len(delays)], chain)

    start = time.perf_counter()
    for _ in range(CHAINS):
        chain()
    sim.run()
    elapsed = time.perf_counter() - start
    executed = sim.events_executed
    assert executed >= num_events, (executed, num_events)
    return executed / elapsed


def compare(num_events: int = DEFAULT_EVENTS, seed: int = 1) -> dict:
    """Benchmark both kernels on the same mix; return the result record."""
    delays = make_delays(num_events, seed)
    # warm-up pass per kernel so allocator/JIT-free timing is steady
    drive(HeapSimulator(), min(num_events, 50_000), delays)
    drive(Simulator(), min(num_events, 50_000), delays)
    heap_eps = drive(HeapSimulator(), num_events, delays)
    bucket_eps = drive(Simulator(), num_events, delays)
    return {
        "benchmark": "kernel_hotpath",
        "events": num_events,
        "chains": CHAINS,
        "seed": seed,
        "heap_events_per_sec": round(heap_eps),
        "bucket_events_per_sec": round(bucket_eps),
        "speedup": round(bucket_eps / heap_eps, 2),
    }


def test_kernel_hotpath_speedup():
    """Bucketed kernel sustains >=2x the heapq kernel's events/sec."""
    smoke = bool(os.environ.get(SMOKE_ENV))
    events = 50_000 if smoke else DEFAULT_EVENTS
    result = compare(events)
    print()
    print(json.dumps(result, indent=2))
    if smoke:
        assert result["bucket_events_per_sec"] > 0
    else:
        assert result["speedup"] >= SPEEDUP_FLOOR, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=DEFAULT_EVENTS)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", default=None,
                        help="write the result record as JSON here")
    args = parser.parse_args(argv)
    result = compare(args.events, args.seed)
    text = json.dumps(result, indent=2)
    print(text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
