"""Service-telemetry overhead: spans + registry + ledger must be free.

The telemetry plane hangs per-job work off every lifecycle transition —
monotonic stamps, five summary observations, a flushed ledger line —
all coordinator-side, never on the simulation event path. Per job that
is ~60 microseconds (measured: ~2 us per counter inc, ~4 us per summary
observation, ~22 us per flushed ledger line); this bench proves the
discipline holds end to end as a number:

* **plain vs armed** — the same batch of distinct ci experiment jobs
  (the ``BENCH_svc.json`` warm-pool workload: per-job seed overrides,
  nothing dedups) driven through (a) a service with ``telemetry=False``
  (no registry, no ledger — the PR-7 baseline configuration) and (b)
  one with the registry armed *and* a run ledger appending per job.
  Both sides use one warm worker with boot excluded, interleaved
  plain/armed/plain/armed so machine drift hits both equally.
  ``telemetry_overhead_x`` (plain/armed, lower is better, 1.0 = free)
  is the gated metric: CI holds it to 1.05 via an explicit
  ``--tolerance``, i.e. the armed service keeps >=95% of the warm-pool
  jobs/sec the committed baseline records.
* **scrape rate** — ``Service.prometheus()`` calls/sec against a
  populated registry (gauge sync + store-stat pinning + quantile
  rendering per call), showing a scraper cannot meaningfully tax the
  coordinator.

Run standalone to emit ``BENCH_telemetry.json``::

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py \\
        --out BENCH_telemetry.json

Under pytest the module asserts the overhead bound directly (set
``REPRO_BENCH_SMOKE=1`` for a correctness-only smoke run, as CI does
on shared runners).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

from repro.svc.jobs import JobSpec
from repro.svc.service import Service

DEFAULT_JOBS = 6
DEFAULT_SCRAPES = 300
EXPERIMENT = "fig04"
PROFILE = "ci"
OVERHEAD_CEILING_X = 1.05      # armed keeps >= 95% of plain throughput
SMOKE_ENV = "REPRO_BENCH_SMOKE"


def make_specs(jobs: int, salt: int = 0):
    """Distinct jobs (per-job seed override) so neither the store nor
    in-flight coalescing short-circuits a single dispatch."""
    return [JobSpec(experiment=EXPERIMENT, profile=PROFILE,
                    profile_overrides=(("seed", salt * 1000 + i),))
            for i in range(jobs)]


def drive(specs, *, telemetry: bool, ledger=None) -> float:
    """Jobs/sec through one warm worker (boot excluded)."""
    service = Service(workers=1, store=None, health=False,
                      telemetry=telemetry, ledger=ledger,
                      max_pending=len(specs) + 1).start(wait_ready=True)
    try:
        start = time.perf_counter()
        handles = [service.submit(spec) for spec in specs]
        for job in handles:
            job.result(timeout=600)
        return len(specs) / (time.perf_counter() - start)
    finally:
        service.close()


def drive_scrapes(scrapes: int) -> float:
    """Prometheus renders/sec against a populated registry."""
    service = Service(workers=1, health=False,
                      max_pending=64).start(wait_ready=True)
    try:
        for job in [service.submit(JobSpec(
                experiment="sleep:0",
                profile_overrides=(("seed", i),))) for i in range(24)]:
            job.result(timeout=600)
        start = time.perf_counter()
        for _ in range(scrapes):
            service.prometheus()
        return scrapes / (time.perf_counter() - start)
    finally:
        service.close()


def compare(jobs: int = DEFAULT_JOBS,
            scrapes: int = DEFAULT_SCRAPES) -> dict:
    with tempfile.TemporaryDirectory() as td:
        ledger = os.path.join(td, "bench-ledger.jsonl")
        # interleave so drift (thermal, noisy neighbours) hits both
        # sides equally; each drive gets fresh seeds so every job
        # simulates fully
        plain_a = drive(make_specs(jobs, salt=1), telemetry=False)
        armed_a = drive(make_specs(jobs, salt=2), telemetry=True,
                        ledger=ledger)
        plain_b = drive(make_specs(jobs, salt=3), telemetry=False)
        armed_b = drive(make_specs(jobs, salt=4), telemetry=True,
                        ledger=ledger)
    plain = (plain_a + plain_b) / 2
    armed = (armed_a + armed_b) / 2
    return {
        "benchmark": "telemetry_overhead",
        "experiment": EXPERIMENT,
        "profile": PROFILE,
        "workers": 1,
        "jobs": jobs,
        "scrapes": scrapes,
        "plain_jobs_per_sec": round(plain, 3),
        "telemetry_jobs_per_sec": round(armed, 3),
        "telemetry_overhead_x": round(max(plain / armed, 1.0), 4),
        "scrape_per_sec": round(drive_scrapes(scrapes), 1),
    }


def test_telemetry_overhead():
    """Registry + ledger hold >=95% of plain warm-pool throughput."""
    smoke = bool(os.environ.get(SMOKE_ENV))
    jobs = 2 if smoke else DEFAULT_JOBS
    scrapes = 30 if smoke else DEFAULT_SCRAPES
    result = compare(jobs, scrapes)
    print()
    print(json.dumps(result, indent=2))
    assert result["telemetry_jobs_per_sec"] > 0
    assert result["scrape_per_sec"] > 0
    if not smoke:
        assert result["telemetry_overhead_x"] <= OVERHEAD_CEILING_X, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=DEFAULT_JOBS)
    parser.add_argument("--scrapes", type=int, default=DEFAULT_SCRAPES)
    parser.add_argument("--out", default=None,
                        help="write the result record as JSON here")
    args = parser.parse_args(argv)
    result = compare(args.jobs, args.scrapes)
    text = json.dumps(result, indent=2)
    print(text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
