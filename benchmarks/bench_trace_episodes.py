"""Episode-trace throughput: guarded trace closures vs fused blocks,
plus the vectorized DRAM bank/batch path vs scalar issue.

Three measurements, one record:

* **Branchy-loop microbenchmark** — a synthetic walker whose entry
  routine is a counted ALU loop (dozens of dynamic actions per
  request, one conditional branch per iteration). Basic-block fusion
  (PR 5) stops at every ``BNZ``, so the block compiler re-enters the
  dispatch loop each iteration; the episode trace (this PR) stitches
  the whole loop — blocks plus inlined branch guards — into a single
  closure per episode. The back-end budget (``NUM_EXE``) covers one
  whole episode per cycle, the trace design point (PR 5's bench sized
  its budget to its fused chain the same way); narrower budgets slice
  the closure across cycles through the per-cursor resume entries and
  converge back toward block-mode rates. Throughput is back-end
  actions/sec over the
  interpreter's ``actions_total`` counter (identical counters in every
  mode, so all modes count identical work); ``trace_speedup`` is the
  traced-over-blocks ratio on this workload, and the traced rate is
  additionally held to >= 1.4x the PR 5 compiled baseline
  (``BENCH_compile.json``'s 750,222 actions/sec).
* **DRAM batch issue** — a same-cycle burst issue loop against the
  banked DRAM model, batch path (struct-of-arrays bank state + NumPy
  address decode + ``call_at_many``) vs the scalar per-request loop
  (``REPRO_DRAM_BATCH=0``). Throughput is kernel events/sec (each
  completion is exactly one bucket-kernel event); ``dram_batch_speedup``
  gates the vectorized path's gain.

Run standalone to emit ``BENCH_trace.json``::

    PYTHONPATH=src python benchmarks/bench_trace_episodes.py --out BENCH_trace.json

Under pytest the module asserts the traced back-end clears the issue's
>=1.4x-over-PR5 bar and that the batch DRAM path beats scalar issue
(set ``REPRO_BENCH_SMOKE=1`` for a correctness-only smoke run, as CI
does on shared runners where timing is noisy).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.core import (
    IMM,
    MSG,
    R,
    Transition,
    WalkerSpec,
    XCacheConfig,
    XCacheSystem,
    compile_walker,
    op,
)
from repro.core.messages import EV_META_LOAD
from repro.mem import DRAMConfig, DRAMModel, MemRequest, MemoryImage
from repro.mem.dram import DRAM_BATCH_ENV, MemResponse
from repro.sim import Simulator

NUM_EXE = 96            # episode-scale budget: one episode per cycle
LOOP_ITERS = 12         # dynamic actions/request = 4 + 6 * LOOP_ITERS
DEFAULT_REQUESTS = 12_000
DEFAULT_DRAM_REQUESTS = 200_000
DRAM_BURST = 64         # requests per request_batch() call
PR5_BASELINE_APS = 750_222      # BENCH_compile.json, compiled back-end
TRACE_OVER_PR5_FLOOR = 1.4      # acceptance bar from the issue
SMOKE_ENV = "REPRO_BENCH_SMOKE"


def make_program():
    """Entry-only walker: allocM, then a counted fusible ALU loop with
    one conditional branch per iteration, then finish."""
    body = [
        op.allocM(),                       # 0  (interpreted boundary)
        op.mov(R(0), MSG("n")),            # 1  loop counter
        op.mov(R(1), MSG("addr")),         # 2  accumulator seed
        # loop head (pc 3): 5 fusible ALU actions ...
        op.add(R(2), R(1), R(0)),          # 3
        op.xor(R(1), R(2), R(0)),          # 4
        op.and_(R(2), R(1), IMM(0xFFFFFF)),  # 5
        op.addi(R(1), R(2), 1),            # 6
        op.addi(R(0), R(0), -1),           # 7  decrement
        # ... then the branch every block-mode dispatch stops at
        op.bnz(R(0), target=3),            # 8  traced as an inline guard
        op.finish(),                       # 9
    ]
    spec = WalkerSpec(
        name="trace-loop",
        transitions=(
            Transition("Default", EV_META_LOAD, tuple(body)),
        ),
    )
    return compile_walker(spec)


def make_config(compile_mode: str, trace_threshold: int) -> XCacheConfig:
    return XCacheConfig(ways=8, sets=256, num_active=8, num_exe=NUM_EXE,
                        xregs_per_walker=8, compile_mode=compile_mode,
                        trace_threshold=trace_threshold,
                        name=f"trace-loop-{compile_mode}-t{trace_threshold}")


def drive(compile_mode: str, trace_threshold: int, requests: int):
    """Run ``requests`` distinct-tag loads; returns (actions/sec,
    actions, controller)."""
    system = XCacheSystem(make_config(compile_mode, trace_threshold),
                          make_program())
    start = time.perf_counter()
    for i in range(requests):
        system.load((i,), walk_fields={"n": LOOP_ITERS, "addr": i * 64})
    system.run()
    elapsed = time.perf_counter() - start
    actions = system.controller.stats.counter("actions_total").value
    assert len(system.responses) == requests, (len(system.responses),
                                               requests)
    assert actions >= requests * (4 + 6 * LOOP_ITERS), (actions, requests)
    return actions / elapsed, actions, system.controller


def drive_dram(batch: bool, requests: int, burst: int = DRAM_BURST):
    """Issue ``requests`` block reads in same-cycle bursts, draining the
    kernel between bursts; returns kernel events/sec.

    Addresses stride one row per element across the full bank set, so
    each burst exercises every bank and the open-row tracking (the same
    mix hits misses/conflicts on the scalar and batch paths — the
    differential tests pin the two byte-identical)."""
    saved = os.environ.get(DRAM_BATCH_ENV)
    os.environ[DRAM_BATCH_ENV] = "1" if batch else "0"
    try:
        sim = Simulator()
        image = MemoryImage()
        dram = DRAMModel(sim, image, DRAMConfig())
        completed = [0]

        def on_done(resp: MemResponse) -> None:
            completed[0] += 1

        row_bytes = dram.config.row_bytes
        span = row_bytes * dram.config.num_banks * 64
        start = time.perf_counter()
        issued = 0
        base = 0
        while issued < requests:
            reqs = [MemRequest((base + k * row_bytes) % span)
                    for k in range(burst)]
            dram.request_batch(reqs, on_done)
            issued += burst
            base += burst * row_bytes + 64
            sim.run()
        elapsed = time.perf_counter() - start
        assert completed[0] == issued, (completed[0], issued)
        assert sim.events_executed == issued
        return sim.events_executed / elapsed
    finally:
        if saved is None:
            os.environ.pop(DRAM_BATCH_ENV, None)
        else:
            os.environ[DRAM_BATCH_ENV] = saved


def compare(requests: int = DEFAULT_REQUESTS,
            dram_requests: int = DEFAULT_DRAM_REQUESTS) -> dict:
    """Benchmark every mode on the same work; return the result record."""
    # warm-up pass per mode so import/alloc effects don't skew timing
    drive("on", 0, min(requests, 500))
    drive("on", 8, min(requests, 500))
    blocks_aps, blocks_actions, _ = drive("on", 0, requests)
    traced_aps, traced_actions, ctrl = drive("on", 8, requests)
    assert blocks_actions == traced_actions, (blocks_actions,
                                              traced_actions)
    ts = ctrl.trace_stats
    assert ts.installs >= 1 and ts.dispatches >= 1, ts.as_dict()
    assert ts.deopts == 0, ts.as_dict()   # steady loop: guards never fail
    drive_dram(True, min(dram_requests, 20_000))
    drive_dram(False, min(dram_requests, 20_000))
    batch_eps = drive_dram(True, dram_requests)
    scalar_eps = drive_dram(False, dram_requests)
    return {
        "benchmark": "trace_episodes",
        "requests": requests,
        "loop_iters": LOOP_ITERS,
        "num_exe": NUM_EXE,
        "actions": traced_actions,
        "dram_requests": dram_requests,
        "dram_burst": DRAM_BURST,
        "backend_blocks_actions_per_sec": round(blocks_aps),
        "backend_traced_actions_per_sec": round(traced_aps),
        "trace_speedup": round(traced_aps / blocks_aps, 2),
        "trace_over_pr5_x": round(PR5_BASELINE_APS / traced_aps, 2),
        "dram_scalar_events_per_sec": round(scalar_eps),
        "dram_batch_events_per_sec": round(batch_eps),
        "dram_batch_speedup": round(batch_eps / scalar_eps, 2),
    }


def test_trace_episode_speedup():
    """Traced episodes clear 1.4x the PR 5 compiled actions/sec; the
    batch DRAM path beats scalar issue."""
    smoke = bool(os.environ.get(SMOKE_ENV))
    requests = 600 if smoke else DEFAULT_REQUESTS
    dram_requests = 10_000 if smoke else DEFAULT_DRAM_REQUESTS
    result = compare(requests, dram_requests)
    print()
    print(json.dumps(result, indent=2))
    if smoke:
        assert result["backend_traced_actions_per_sec"] > 0
        assert result["dram_batch_events_per_sec"] > 0
    else:
        floor = PR5_BASELINE_APS * TRACE_OVER_PR5_FLOOR
        assert result["backend_traced_actions_per_sec"] >= floor, result
        assert result["trace_speedup"] >= 1.1, result
        assert result["dram_batch_speedup"] >= 1.1, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=DEFAULT_REQUESTS)
    parser.add_argument("--dram-requests", type=int,
                        default=DEFAULT_DRAM_REQUESTS)
    parser.add_argument("--out", default=None,
                        help="write the result record as JSON here")
    args = parser.parse_args(argv)
    result = compare(args.requests, args.dram_requests)
    text = json.dumps(result, indent=2)
    print(text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
