"""Table 2: X-Cache features benefiting each DSA.

Cross-checked against the live Table-3 configurations and walkers.
"""


def test_tab02(run_report):
    run_report("tab02")
