"""Table 4: energy parameters.

The per-event energy constants the power model is seeded with.
"""


def test_tab04(run_report):
    run_report("tab04")
