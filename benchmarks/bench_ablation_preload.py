"""Ablation: decoupled preloading depth (SpArch's run-ahead walker).

"SpArch needs a preload walker that runs ahead in decoupled fashion and
caches the required rows" — this ablation sweeps how far ahead the
preloader runs, from effectively coupled (lookahead 1) to deeply
decoupled, and reports the latency-hiding payoff.
"""

import pytest

from repro.core.config import table3_config
from repro.dsa import SpGEMMXCacheModel
from repro.workloads import dense_spgemm_input


def _sweep():
    a, b = dense_spgemm_input(n=512, nnz_per_row=10, skew=0.3, seed=29)
    cfg = table3_config("sparch", scale=0.25)
    out = {}
    for lookahead in (1, 4, 16, 32):
        result = SpGEMMXCacheModel(a, b, "outer", config=cfg,
                                   lookahead=lookahead).run()
        assert result.checks_passed
        out[lookahead] = result.cycles
    return out


def test_ablation_preload_depth(benchmark):
    cycles = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print("\npreload-depth ablation (SpArch outer product):")
    for lookahead, cyc in cycles.items():
        print(f"  lookahead={lookahead:3d}: {cyc} cycles "
              f"({cycles[1] / cyc:.2f}x vs coupled)")
    assert cycles[32] < cycles[1]  # decoupling must hide DRAM latency
