"""Figure 14: runtime vs baseline DSAs and address caches.

The headline result: ~1.7x geomean over equally-sized address
caches, competitive with hardwired DSAs, across all five DSAs.
"""


def test_fig14(run_report):
    run_report("fig14")
