"""Figure 15: total power, X-Cache vs address-based cache.

Address caches burn 26-79% more power: they walk (and move whole
lines) even when the data is resident.
"""


def test_fig15(run_report):
    run_report("fig15")
