"""Ablation: meta-tag geometry (ways) and hit-path width (#wlen).

Two of the generator's Figure-13 parameters the main figures hold
fixed:

* associativity — GraphPulse runs direct-mapped ("a direct-mapped cache
  suffices", §7.1) while Widx uses 8 ways; this ablation measures what
  associativity buys the conflict-prone hash workload;
* #wlen — words supplied per hit, which sets the data-return
  serialization for SpArch's multi-sector rows.
"""

from dataclasses import replace

import pytest

from repro.core.config import table3_config
from repro.dsa import SpGEMMXCacheModel, WidxXCacheModel
from repro.workloads import dense_spgemm_input, make_widx_workload


def _sweep():
    out = {}
    workload = make_widx_workload(num_keys=4096, num_probes=8192,
                                  num_buckets=2048, skew=1.3,
                                  hash_cycles=20, seed=31)
    base = table3_config("widx", scale=0.0625)
    for ways in (1, 2, 8):
        sets = base.sets * base.ways // ways
        cfg = replace(base, ways=ways, sets=sets)
        result = WidxXCacheModel(workload, config=cfg).run()
        assert result.checks_passed
        out[f"widx ways={ways}"] = (result.cycles, result.hit_rate)

    a, b = dense_spgemm_input(n=384, nnz_per_row=10, seed=37)
    scfg = table3_config("sparch", scale=0.25)
    for wlen in (1, 4, 8):
        cfg = replace(scfg, wlen=wlen)
        result = SpGEMMXCacheModel(a, b, "outer", config=cfg).run()
        assert result.checks_passed
        out[f"sparch wlen={wlen}"] = (result.cycles, result.hit_rate)
    return out


def test_ablation_geometry(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print("\ngeometry ablation:")
    for label, (cycles, hit) in rows.items():
        print(f"  {label:<18} {cycles:>9} cycles, hit {hit:.2f}")
    # associativity must help the hash workload's conflict misses
    assert rows["widx ways=8"][1] >= rows["widx ways=1"][1]
    # wider hit return must not slow SpArch's multi-sector rows
    assert rows["sparch wlen=8"][0] <= rows["sparch wlen=1"][0] * 1.02
