"""Ablation: the three sparse-GEMM dataflows on one X-Cache.

The paper's §3.2 motivates programmable walkers with exactly this
contrast (Figures 2 and 5): inner-product, outer-product (SpArch), and
Gustavson (Gamma) GEMM all want rows/columns of B cached by index, but
induce completely different reuse. One meta-tagged cache + one walker
family serves all three; this bench races them on the same A×B and
verifies all three against the functional reference.
"""

import pytest

from repro.core.config import table3_config
from repro.dsa import SpGEMMXCacheModel
from repro.workloads import dense_spgemm_input


def _race():
    a, b = dense_spgemm_input(n=160, nnz_per_row=6, seed=41)
    cfg = table3_config("sparch", scale=0.25)
    out = {}
    for algorithm in ("outer", "gustavson", "inner"):
        result = SpGEMMXCacheModel(a, b, algorithm, config=cfg).run()
        assert result.checks_passed, algorithm
        out[algorithm] = result
    return out


def test_ablation_spgemm_dataflow(benchmark):
    results = benchmark.pedantic(_race, rounds=1, iterations=1)
    print("\nSpGEMM dataflow ablation (same cache, same walker family):")
    for algo, r in results.items():
        print(f"  {algo:<10} {r.cycles:>9} cycles, hit {r.hit_rate:.2f}, "
              f"{r.requests} meta loads, DRAM {r.dram_accesses}")
    # inner product issues O(rows x cols) probes; its saving grace is the
    # near-perfect column reuse the meta-tags capture
    assert results["inner"].requests > results["outer"].requests
    assert results["inner"].hit_rate > results["outer"].hit_rate
