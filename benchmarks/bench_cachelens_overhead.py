"""Cache-lens overhead: miss taxonomy must ride along nearly for free.

The cache-contents lens (``repro.obs.cachelens``) does real per-event
work when armed — seen-set membership, a fully-associative LRU touch,
two 2x shadow probes, and windowed heatmap bookkeeping — so unlike the
unarmed publish sites (a single ``bus is None`` test, gated by
``bench_obs_overhead``) it cannot be literally free.  The discipline
this bench enforces is that the work stays a small fraction of the
simulation it observes:

* **unarmed vs armed** — the same ci experiment executed end to end
  through ``execute_one`` with (a) an inactive :class:`CaptureSpec`
  (no bus attached anywhere — the default harness path) and (b)
  ``CaptureSpec(misses=True)`` (a :class:`CacheLensProcessor` on every
  system bus, classifying every miss and profiling every reuse).  Runs
  interleave unarmed/armed/unarmed/armed so machine drift hits both
  sides equally, are timed in **CPU seconds** (``time.process_time``)
  so scheduler noise on shared runners is not mistaken for lens cost,
  and the memo cache is cleared before every run so each one simulates
  fully.  ``cachelens_overhead_x`` (armed/unarmed, lower is better,
  1.0 = free) is the gated metric: CI holds it via an explicit
  ``--tolerance`` and the full (non-smoke) pytest run asserts the 1.11
  ceiling directly, i.e. an armed run keeps >=90% of unarmed
  throughput.
* **lens events/sec** — raw classification rate of a synthetic
  miss+fill stream through ``CacheLensProcessor.handle``, sizing the
  per-event cost in isolation (reuse sampled 1:1, the worst case).

Run standalone to emit ``BENCH_cachelens.json``::

    PYTHONPATH=src python benchmarks/bench_cachelens_overhead.py \\
        --out BENCH_cachelens.json

Under pytest the module asserts the overhead bound directly (set
``REPRO_BENCH_SMOKE=1`` for a correctness-only smoke run, as CI does
on shared runners).
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time

from repro.harness.parallel import execute_one
from repro.harness.suite import clear_cache
from repro.obs.capture import CaptureSpec
from repro.obs.cachelens import MISS_CLASSES, CacheLensProcessor
from repro.obs.events import CacheFill, CacheModel, Hit, Miss

EXPERIMENT = "fig04"
PROFILE = "ci"
DEFAULT_ROUNDS = 9
DEFAULT_EVENTS = 100_000
OVERHEAD_CEILING_X = 1.11      # armed keeps >= 90% of unarmed runtime
SMOKE_ENV = "REPRO_BENCH_SMOKE"


def drive(spec: CaptureSpec):
    """One fully-simulated run; returns (cpu-seconds, lens summary|None).

    GC is collected before and disabled during the timed region so a
    collection triggered by the *previous* run's garbage doesn't land
    inside this run's measurement.
    """
    clear_cache()
    telemetry: dict = {}
    gc.collect()
    gc.disable()
    start = time.process_time()
    execute_one(EXPERIMENT, PROFILE, spec, telemetry=telemetry)
    elapsed = time.process_time() - start
    gc.enable()
    clear_cache()
    return elapsed, telemetry.get("cachelens")


def drive_lens_events(num_events: int) -> float:
    """Raw classification throughput of a synthetic event stream."""
    lens = CacheLensProcessor()
    lens.handle(CacheModel(cycle=0, component="bench", kind="meta",
                           ways=4, sets=64, tag_class="key"))
    # 3:1 hit:miss mix over a footprint just past the modelled capacity,
    # so every taxonomy branch (compulsory/capacity/conflict) runs
    footprint = 4 * 64 + 32
    events = []
    for i in range(num_events):
        tag = (i % footprint,)
        if i & 3:
            events.append(Hit(cycle=i, component="bench", tag=tag))
        else:
            setidx = tag[0] & 63
            events.append(Miss(cycle=i, component="bench", tag=tag,
                               set_index=setidx))
            events.append(CacheFill(cycle=i, component="bench", tag=tag,
                                    set_index=setidx, way=0))
    handle = lens.handle
    start = time.perf_counter()
    for event in events:
        handle(event)
    elapsed = time.perf_counter() - start
    entry = lens.summary()["bench"]
    assert sum(entry[c] for c in MISS_CLASSES) == entry["misses"]
    return len(events) / elapsed


def compare(rounds: int = DEFAULT_ROUNDS,
            num_events: int = DEFAULT_EVENTS) -> dict:
    unarmed_times, armed_times = [], []
    lens_holder = [None]

    def pairs(n: int) -> None:
        # alternate within-pair order each round so slow drift never
        # lands on whichever side consistently runs second
        for i in range(n):
            if i % 2 == 0:
                unarmed_times.append(drive(CaptureSpec())[0])
                elapsed, lens_holder[0] = drive(CaptureSpec(misses=True))
                armed_times.append(elapsed)
            else:
                elapsed, lens_holder[0] = drive(CaptureSpec(misses=True))
                armed_times.append(elapsed)
                unarmed_times.append(drive(CaptureSpec())[0])

    # one unmeasured pair first so allocator/import warmup hits neither
    drive(CaptureSpec())
    drive(CaptureSpec(misses=True))
    # take the MIN per side: for CPU-bound work every perturbation
    # (noisy neighbour, frequency dip) only ever adds time, so the
    # minimum converges on the true cost from above. A ratio over the
    # ceiling after few rounds usually means the min has not converged
    # yet on one side — extend the sample once before believing it.
    pairs(rounds)
    extensions = 0
    while (min(armed_times) / min(unarmed_times) > OVERHEAD_CEILING_X
           and extensions < 3):
        pairs(rounds)
        extensions += 1
    unarmed = min(unarmed_times)
    armed = min(armed_times)
    lens_summary = lens_holder[0]
    assert lens_summary, "armed run produced no lens summary"
    misses = sum(e["misses"] for e in lens_summary.values())
    assert misses > 0, "armed run classified no misses"
    return {
        "benchmark": "cachelens_overhead",
        "experiment": EXPERIMENT,
        "profile": PROFILE,
        "rounds": rounds,
        "lens_events": num_events,
        "misses_classified": misses,
        "unarmed_runs_per_sec": round(1.0 / unarmed, 3),
        "armed_runs_per_sec": round(1.0 / armed, 3),
        "cachelens_overhead_x": round(max(armed / unarmed, 1.0), 4),
        "lens_events_per_sec": round(drive_lens_events(num_events)),
    }


def test_cachelens_overhead():
    """An armed lens keeps >=90% of unarmed end-to-end throughput."""
    smoke = bool(os.environ.get(SMOKE_ENV))
    rounds = 1 if smoke else DEFAULT_ROUNDS
    num_events = 20_000 if smoke else DEFAULT_EVENTS
    result = compare(rounds, num_events)
    print()
    print(json.dumps(result, indent=2))
    assert result["misses_classified"] > 0
    assert result["lens_events_per_sec"] > 0
    if not smoke:
        assert result["cachelens_overhead_x"] <= OVERHEAD_CEILING_X, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS)
    parser.add_argument("--events", type=int, default=DEFAULT_EVENTS)
    parser.add_argument("--out", default=None,
                        help="write the result record as JSON here")
    args = parser.parse_args(argv)
    result = compare(args.rounds, args.events)
    text = json.dumps(result, indent=2)
    print(text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
