"""Observability overhead: the event bus must be free when nobody looks.

Drives the bucketed kernel through the same Widx-shaped event mix as
``bench_kernel_hotpath``, with an obs publish site inside every chain
callback, under three configurations:

* ``no_bus`` — ``bus is None``: the publish site is a single attribute
  test, the PR-1 hot path. This is the number that must stay within
  noise of ``BENCH_kernel.json``'s ``bucket_events_per_sec``.
* ``noop_processor`` — an :class:`EventBus` with a type-subscribed
  no-op processor: event construction + dict lookup + one call.
* ``jsonl_export`` — a :class:`JsonlExporter` streaming every event to
  disk: the worst case anyone pays, and only when they asked for it.

Run standalone to emit ``BENCH_obs.json``::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --out BENCH_obs.json

Under pytest the module asserts the ``no_bus`` configuration is within
noise of the recorded kernel baseline (``REPRO_BENCH_SMOKE=1`` loosens
the bound for CI's shared, noisy runners).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

from repro.obs.bus import EventBus
from repro.obs.events import Hit
from repro.obs.export import JsonlExporter
from repro.obs.processors import NullProcessor
from repro.sim import Simulator

from bench_kernel_hotpath import make_delays

CHAINS = 64
DEFAULT_EVENTS = 200_000
SMOKE_ENV = "REPRO_BENCH_SMOKE"
# no_bus must keep >= this fraction of BENCH_kernel.json's recorded
# bucket_events_per_sec (full mode); smoke mode only sanity-checks,
# because CI runners differ wildly from the machine that recorded it
NOISE_FLOOR = 0.80
SMOKE_FLOOR = 0.10

_TAG = (7,)


def drive(sim, num_events: int, delays, bus) -> float:
    """Run ``num_events`` chain callbacks, publishing one Hit each when
    the bus is armed; return events/sec."""
    budget = [num_events]
    cursor = [0]

    def chain() -> None:
        if budget[0] <= 0:
            return
        budget[0] -= 1
        i = cursor[0]
        cursor[0] = i + 1
        if bus is not None:
            bus.publish(Hit(cycle=sim.now, component="bench", tag=_TAG,
                            store=False, take=False, load_to_use=i & 0xFF))
        sim.call_after(delays[i % len(delays)], chain)

    start = time.perf_counter()
    for _ in range(CHAINS):
        chain()
    sim.run()
    elapsed = time.perf_counter() - start
    executed = sim.events_executed
    assert executed >= num_events, (executed, num_events)
    return executed / elapsed


def _noop_bus() -> EventBus:
    bus = EventBus()
    bus.attach(NullProcessor())
    return bus


def compare(num_events: int = DEFAULT_EVENTS, seed: int = 1) -> dict:
    """Benchmark the three configurations; return the result record."""
    delays = make_delays(num_events, seed)
    warm = min(num_events, 25_000)

    with tempfile.TemporaryDirectory(prefix="bench-obs-") as tmp:
        jsonl_path = os.path.join(tmp, "events.jsonl")

        # warm-up passes so allocator behaviour is steady
        drive(Simulator(), warm, delays, None)
        drive(Simulator(), warm, delays, _noop_bus())

        no_bus_eps = drive(Simulator(), num_events, delays, None)
        noop_eps = drive(Simulator(), num_events, delays, _noop_bus())

        export_bus = EventBus()
        exporter = JsonlExporter(jsonl_path)
        export_bus.attach(exporter)
        export_eps = drive(Simulator(), num_events, delays, export_bus)
        export_bus.close()
        assert exporter.events_written >= num_events

    return {
        "benchmark": "obs_overhead",
        "events": num_events,
        "chains": CHAINS,
        "seed": seed,
        "no_bus_events_per_sec": round(no_bus_eps),
        "noop_processor_events_per_sec": round(noop_eps),
        "jsonl_export_events_per_sec": round(export_eps),
        "noop_overhead_x": round(no_bus_eps / noop_eps, 2),
        "export_overhead_x": round(no_bus_eps / export_eps, 2),
    }


def _kernel_baseline() -> int:
    """The recorded bucket-kernel events/sec from BENCH_kernel.json."""
    path = os.path.join(os.path.dirname(__file__), os.pardir,
                        "BENCH_kernel.json")
    with open(path) as fh:
        return json.load(fh)["bucket_events_per_sec"]


def test_obs_overhead_no_bus_within_noise():
    """An unarmed publish site keeps kernel-hotpath throughput."""
    smoke = bool(os.environ.get(SMOKE_ENV))
    events = 50_000 if smoke else DEFAULT_EVENTS
    result = compare(events)
    print()
    print(json.dumps(result, indent=2))
    assert result["noop_processor_events_per_sec"] > 0
    assert result["jsonl_export_events_per_sec"] > 0
    baseline = _kernel_baseline()
    floor = SMOKE_FLOOR if smoke else NOISE_FLOOR
    assert result["no_bus_events_per_sec"] >= floor * baseline, (
        f"no-bus throughput {result['no_bus_events_per_sec']} fell below "
        f"{floor:.0%} of the recorded kernel baseline {baseline}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=DEFAULT_EVENTS)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", default=None,
                        help="write the result record as JSON here")
    args = parser.parse_args(argv)
    result = compare(args.events, args.seed)
    text = json.dumps(result, indent=2)
    print(text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
