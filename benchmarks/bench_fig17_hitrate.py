"""Figure 17: runtime vs Widx over the on-chip fraction sweep.

The meta-tag advantage grows with hit rate (TPC-H-22).
"""


def test_fig17(run_report):
    run_report("fig17")
