"""Figure 16: X-Cache power breakdown by component.

Data arrays dominate; meta-tags cost 1.5-6.5% of data-RAM energy;
the routine RAM (programmability) stays under ~4.2%.
"""


def test_fig16(run_report):
    run_report("fig16")
