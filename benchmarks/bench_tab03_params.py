"""Table 3: design parameters per DSA.

The Table-3 presets, checked verbatim against the paper.
"""


def test_tab03(run_report):
    run_report("tab03")
