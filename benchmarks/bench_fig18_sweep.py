"""Figure 18: sweeping #Active and #Exe.

GraphPulse (controller-bound) gains up to ~2x; Widx (DRAM-bound)
gains at most ~10%.
"""


def test_fig18(run_report):
    run_report("fig18")
