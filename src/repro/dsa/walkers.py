"""Walker programs (X-Routines) for the five evaluated DSAs.

Three program families cover all five DSAs — the reuse the paper
demonstrates:

* :func:`build_hash_walker` — Widx and DASX. Hashes the key, loads the
  bucket root, chases the chain, caches the matching node's RID tagged
  by the key (Figure 10a).
* :func:`build_row_walker` — SpArch and Gamma ("we only had to
  reprogram the controller"). Reads ``row_ptr`` metadata, then runs a
  variable-length tiled refill of the row's packed elements, tagged by
  the row id (Figure 10b).
* :func:`build_event_walker` — GraphPulse. A store-miss allocates an
  entry and deposits the event payload; store-hits coalesce in the hit
  path; no DRAM walk at all (the event queue lives on-chip).

Every program is expressed purely in the Figure-8 action set and
compiled by :func:`repro.core.walker.compile_walker`; the controller
interprets it action-by-action.
"""

from __future__ import annotations

from ..core.isa import IMM, MSG, R
from ..core.messages import EV_FILL, EV_META_LOAD, EV_META_STORE
from ..core.walker import CompiledWalker, Transition, WalkerSpec, compile_walker, op
from ..data.btree import BTree
from ..data.hashindex import HashIndex

__all__ = [
    "build_hash_walker",
    "build_row_walker",
    "build_event_walker",
    "build_btree_walker",
]


def build_hash_walker(num_buckets: int, hash_cycles: int,
                      name: str = "widx-walker") -> CompiledWalker:
    """Hash-index walker (Widx/DASX).

    Register map: R0 key, R1 table base, R2 current address, R3 peeked
    value, R4 offset scratch, R5-R8 match path temporaries.

    ``hash_cycles`` is the hash-unit latency — ~60 cycles for the
    string-keyed TPC-H 19/20 queries, a handful for numeric keys. On a
    meta-tag hit none of this runs: the paper's 10× load-to-use win.
    """
    if num_buckets & (num_buckets - 1):
        raise ValueError("num_buckets must be a power of two")
    mask = num_buckets - 1
    spec = WalkerSpec(
        name=name,
        description="chained hash-index walk, meta-tag = key",
        transitions=(
            # IDX: kick the hash unit, yield until it returns.
            Transition("Default", EV_META_LOAD, (
                op.allocM(),
                op.mov(R(0), MSG("key")),
                op.mov(R(1), MSG("table")),
                op.enq_self("Hashed", delay=max(1, hash_cycles),
                            hash_fields={"h": R(0)}),
                op.state("Hash"),
            ), note="IDX: hash the key"),
            # META: bucket-root table lookup.
            Transition("Hash", "Hashed", (
                op.mov(R(2), MSG("h")),
                op.and_(R(2), R(2), IMM(mask)),
                op.shl(R(2), R(2), IMM(3)),
                op.add(R(2), R(2), R(1)),
                op.enq_dram(addr=R(2)),
                op.state("Meta"),
            ), note="META: fetch bucket root pointer"),
            Transition("Meta", EV_FILL, (
                op.and_(R(4), R(2), IMM(63)),
                op.peek(R(3), R(4), width=8),
                op.bnz(R(3), "chase"),
                op.deallocM(),                     # empty bucket: not found
                op.lbl("chase"),
                op.mov(R(2), R(3)),
                op.enq_dram(addr=R(2)),
                op.state("Data"),
            ), note="AREF: load first node"),
            # DATA/MATCH: compare keys, follow next pointers.
            Transition("Data", EV_FILL, (
                op.and_(R(4), R(2), IMM(63)),
                op.peek(R(3), R(4), width=8),       # node.key
                op.beq(R(3), R(0), "match"),
                op.addi(R(4), R(4), HashIndex.NEXT_OFF),
                op.peek(R(3), R(4), width=8),       # node.next
                op.bnz(R(3), "next"),
                op.deallocM(),                      # chain exhausted
                op.lbl("next"),
                op.mov(R(2), R(3)),
                op.enq_dram(addr=R(2)),
                op.state("Data"),
                op.jmp("end"),
                op.lbl("match"),
                op.addi(R(5), R(4), HashIndex.RID_OFF),
                op.peek(R(6), R(5), width=8),       # node.rid
                op.allocD(R(7), IMM(1)),
                op.write(R(7), R(6)),
                op.update("sector_start", R(7)),
                op.addi(R(8), R(7), 1),
                op.update("sector_end", R(8)),
                op.finish(),
                op.lbl("end"),
            ), note="MATCH: compare, cache RID or follow chain"),
        ),
    )
    return compile_walker(spec)


def _row_setup_tail():
    """Shared SETUP sequence once row_ptr[r] (R4) and row_ptr[r+1] (R5)
    are known: size the refill, allocate sectors, start the tiled fill.

    Register map: R4 start element, R5 end element, R6 sector cursor,
    R7 element count → sector count, R8 sector start, R9 sector end,
    R10 pairs base, R11 row start address, R12 refill bytes,
    R13-R15 block-count scratch.
    """
    return (
        # n = end - start  (two's-complement subtract: ~a + b + 1)
        op.not_(R(7), R(4)),
        op.add(R(7), R(7), R(5)),
        op.addi(R(7), R(7), 1),
        op.bnz(R(7), "fill"),
        op.update("sector_start", IMM(0)),          # empty row
        op.update("sector_end", IMM(0)),
        op.finish(),
        op.lbl("fill"),
        op.shl(R(7), R(7), IMM(1)),                 # 16B/elt ÷ 8B sectors
        op.allocD(R(8), R(7)),
        op.update("sector_start", R(8)),
        op.add(R(9), R(8), R(7)),
        op.update("sector_end", R(9)),
        op.mov(R(6), R(8)),                         # copy cursor
        # AG: row start address and refill size
        op.shl(R(11), R(4), IMM(4)),
        op.add(R(11), R(11), R(10)),
        op.shl(R(12), R(7), IMM(3)),
        op.enq_dram(addr=R(11), size=R(12)),        # tiled multi-block fill
        # blocks outstanding = ((start+bytes-1)>>6) - (start>>6) + 1
        op.add(R(13), R(11), R(12)),
        op.dec(R(13)),
        op.shr(R(13), R(13), IMM(6)),
        op.shr(R(15), R(11), IMM(6)),
        op.not_(R(15), R(15)),
        op.add(R(14), R(13), R(15)),
        op.addi(R(14), R(14), 2),
        op.state("Tile"),
    )


def build_row_walker(name: str = "sparch-walker") -> CompiledWalker:
    """CSR-row walker (SpArch/Gamma).

    meta-tag = row id of matrix B; the refill is a variable-length tile
    (the row's packed ``(col, value)`` pairs, 16 B each). Walk fields:
    ``row_ptr`` (base of the row-pointer array) and ``pairs`` (base of
    the packed element array).
    """
    spec = WalkerSpec(
        name=name,
        description="variable-length CSR row refill, meta-tag = row id",
        transitions=(
            # META: fetch row_ptr[r] (and usually row_ptr[r+1]).
            Transition("Default", EV_META_LOAD, (
                op.allocM(),
                op.mov(R(0), MSG("row")),
                op.mov(R(1), MSG("row_ptr")),
                op.mov(R(10), MSG("pairs")),
                op.shl(R(2), R(0), IMM(2)),
                op.add(R(2), R(2), R(1)),
                op.enq_dram(addr=R(2)),
                op.state("Meta"),
            ), note="META: fetch row_ptr entries"),
            Transition("Meta", EV_FILL, (
                op.and_(R(3), R(2), IMM(63)),
                op.peek(R(4), R(3), width=4),        # row_ptr[r]
                op.addi(R(3), R(3), 4),
                op.beq(R(3), IMM(64), "neednext"),   # r+1 in the next block
                op.peek(R(5), R(3), width=4),        # row_ptr[r+1]
                *_row_setup_tail(),
                op.jmp("end"),
                op.lbl("neednext"),
                op.addi(R(2), R(2), 4),
                op.enq_dram(addr=R(2)),
                op.state("Meta2"),
                op.lbl("end"),
            ), note="AG: size the tile, start the refill"),
            Transition("Meta2", EV_FILL, (
                op.peek(R(5), IMM(0), width=4),      # row_ptr[r+1] @ block 0
                *_row_setup_tail(),
            ), note="AG (block-straddling row_ptr)"),
            # DATA: copy each arriving block slice, sector-by-sector.
            Transition("Tile", EV_FILL, (
                op.write(R(6), IMM(0), nbytes=64, from_msg=True),
                op.shr(R(3), MSG("bytes"), IMM(3)),
                op.add(R(6), R(6), R(3)),
                op.dec(R(14)),
                op.bnz(R(14), "more"),
                op.finish(),
                op.lbl("more"),
                op.state("Tile"),
            ), note="DATA: sector copy of the tile"),
        ),
    )
    return compile_walker(spec)


def build_event_walker(name: str = "graphpulse-walker") -> CompiledWalker:
    """GraphPulse event-coalescing program.

    A store miss allocates the vertex's entry and deposits the payload;
    store *hits* never reach the walker — the hit path merges payloads
    with the controller's fadd port. Loads use take/nowalk semantics, so
    this program needs no load path and touches DRAM not at all.
    """
    spec = WalkerSpec(
        name=name,
        description="event insert, meta-tag = vertex id; hits coalesce",
        transitions=(
            Transition("Default", EV_META_STORE, (
                op.allocM(),
                op.allocD(R(0), IMM(1)),
                op.write(R(0), MSG("payload")),
                op.update("sector_start", R(0)),
                op.addi(R(1), R(0), 1),
                op.update("sector_end", R(1)),
                op.finish(),
            ), note="insert: allocate entry + deposit payload"),
        ),
    )
    return compile_walker(spec)


def build_btree_walker(name: str = "btree-walker") -> CompiledWalker:
    """B-tree point-lookup walker (extension beyond the paper's five DSAs).

    meta-tag = key; walk field ``root`` = the tree's root node address.
    One routine handles *both* node types: it dispatches on the flags
    word, does a 4-way separator comparison for inner nodes (descend),
    and a 3-slot match for leaves — the in-node branching the hash and
    row walkers never needed, showcasing the control-flow half of the
    action ISA. Nodes are block-sized and block-aligned, so every level
    costs exactly one fill.
    """
    k = BTree.KEY_OFF
    v = BTree.VAL_OFF
    c = BTree.CHILD_OFF
    spec = WalkerSpec(
        name=name,
        description="B-tree point lookup, meta-tag = key",
        transitions=(
            Transition("Default", EV_META_LOAD, (
                op.allocM(),
                op.mov(R(0), MSG("key")),
                op.mov(R(2), MSG("root")),
                op.enq_dram(addr=R(2)),
                op.state("Node"),
            ), note="fetch the root node"),
            Transition("Node", EV_FILL, (
                op.peek(R(3), IMM(BTree.FLAGS_OFF)),
                op.bnz(R(3), "leaf"),
                # INNER: pick the child by separator comparison
                op.peek(R(4), IMM(k)),
                op.blt(R(0), R(4), "c0"),
                op.peek(R(4), IMM(k + 8)),
                op.blt(R(0), R(4), "c1"),
                op.peek(R(4), IMM(k + 16)),
                op.blt(R(0), R(4), "c2"),
                op.peek(R(2), IMM(c + 24)),
                op.jmp("descend"),
                op.lbl("c0"),
                op.peek(R(2), IMM(c)),
                op.jmp("descend"),
                op.lbl("c1"),
                op.peek(R(2), IMM(c + 8)),
                op.jmp("descend"),
                op.lbl("c2"),
                op.peek(R(2), IMM(c + 16)),
                op.lbl("descend"),
                op.bnz(R(2), "go"),
                op.deallocM(),                 # null child: not found
                op.lbl("go"),
                op.enq_dram(addr=R(2)),
                op.state("Node"),
                op.jmp("end"),
                # LEAF: 3-slot key match
                op.lbl("leaf"),
                op.peek(R(4), IMM(k)),
                op.beq(R(0), R(4), "hit0"),
                op.peek(R(4), IMM(k + 8)),
                op.beq(R(0), R(4), "hit1"),
                op.peek(R(4), IMM(k + 16)),
                op.beq(R(0), R(4), "hit2"),
                op.deallocM(),                 # key absent
                op.lbl("hit0"),
                op.peek(R(5), IMM(v)),
                op.jmp("store"),
                op.lbl("hit1"),
                op.peek(R(5), IMM(v + 8)),
                op.jmp("store"),
                op.lbl("hit2"),
                op.peek(R(5), IMM(v + 16)),
                op.lbl("store"),
                op.allocD(R(6), IMM(1)),
                op.write(R(6), R(5)),
                op.update("sector_start", R(6)),
                op.addi(R(7), R(6), 1),
                op.update("sector_end", R(7)),
                op.finish(),
                op.lbl("end"),
            ), note="dispatch on node type; descend or match"),
        ),
    )
    return compile_walker(spec)
