"""SpArch and Gamma: sparse GEMM accelerators sharing one X-Cache.

Both DSAs multiply A×B with B in CSR and need rows of B on demand:

* **SpArch** (outer product) streams A in CSC; column k of A pairs with
  row k of B, so row k is reused once per nonzero of column k, and a
  decoupled preloader runs ahead caching upcoming rows (Figure 10b).
* **Gamma** (Gustavson) consumes A row-wise; row i of A needs row k of B
  for every nonzero A[i,k]. Reuse is dynamic and input-dependent —
  whenever later rows of A reference the same k.

The paper's point: both use the *same* X-Cache microarchitecture and
meta-tag (B's row id); only the controller program — here literally the
same :func:`~repro.dsa.walkers.build_row_walker` binary — is shared,
while the datapath's access order differs.

Variants:

* :class:`SpGEMMXCacheModel` (``algorithm="outer"|"gustavson"``) —
  meta-tagged row cache with preloading. ``ideal=True`` approximates the
  hardwired baseline (the DSA's custom row RAM; the paper finds X-Cache
  competitive).
* :class:`SpGEMMAddressModel` — address-tagged comparator: every element
  access must read ``row_ptr[k]`` (translate) before touching the row's
  blocks, even when the row's data is already cached.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..core.config import XCacheConfig, table3_config
from ..core.controller import MetaResponse
from ..core.energy import EnergyModel
from ..core.xcache import XCacheSystem
from ..data.csr import CSRLayout, SparseMatrix, spgemm_gustavson
from ..mem.addrcache import AddressCache, CacheConfig
from ..mem.dram import DRAMConfig, DRAMModel
from ..mem.layout import MemoryImage
from ..sim import new_simulator
from .base import RunResult
from .walkers import build_row_walker
from .widx import matched_cache_config

__all__ = ["SpGEMMXCacheModel", "SpGEMMAddressModel", "element_trace"]


def element_trace(a: SparseMatrix,
                  algorithm: str,
                  b: Optional[SparseMatrix] = None
                  ) -> List[Tuple[int, int, float]]:
    """The (k, i, a_val) access sequence the datapath generates.

    ``k`` is the cached B structure needed (a row for outer/Gustavson, a
    *column* for inner product), ``i`` the output row. Outer product
    iterates A's columns (CSC); Gustavson iterates A's rows; inner
    product (the paper's Figure-2 DSA) visits every candidate (i, j)
    output and intersects row i of A with column j of B — ``b`` is
    required to enumerate its nonempty columns.
    """
    trace: List[Tuple[int, int, float]] = []
    if algorithm == "outer":
        at = a.transpose()
        for k in range(at.rows):
            rows, vals = at.row(k)
            for i, v in zip(rows, vals):
                trace.append((k, i, v))
    elif algorithm == "gustavson":
        for i in range(a.rows):
            cols, vals = a.row(i)
            for k, v in zip(cols, vals):
                trace.append((k, i, v))
    elif algorithm == "inner":
        if b is None:
            raise ValueError("inner product needs B to enumerate columns")
        bt = b.transpose()
        nonempty_cols = [j for j in range(bt.rows) if bt.row_nnz(j)]
        for i in range(a.rows):
            if not a.row_nnz(i):
                continue
            for j in nonempty_cols:
                trace.append((j, i, 0.0))
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    return trace


class SpGEMMXCacheModel:
    """SpArch/Gamma datapath over the shared row-walker X-Cache."""

    def __init__(self, a: SparseMatrix, b: SparseMatrix,
                 algorithm: str = "outer",
                 config: Optional[XCacheConfig] = None,
                 lookahead: int = 32, window: int = 16,
                 ideal: bool = False,
                 dram_config: DRAMConfig = DRAMConfig()) -> None:
        if a.cols != b.rows:
            raise ValueError(f"shape mismatch {a.cols} != {b.rows}")
        self.a = a
        self.b = b
        self.algorithm = algorithm
        if algorithm == "outer":
            dsa = "sparch"
        elif algorithm == "gustavson":
            dsa = "gamma"
        elif algorithm == "inner":
            dsa = "inner"     # Figure 2's inner-product DSA
        else:
            raise ValueError(f"unknown algorithm {algorithm!r}")
        cfg = config if config is not None else table3_config(
            "sparch" if dsa == "inner" else dsa)
        if ideal:
            # Hardwired row-fetcher baseline: same geometry and walker
            # behaviour, but no microcode interpretation — modelled as a
            # doubled-width back-end.
            cfg = replace(cfg, num_exe=cfg.num_exe * 2,
                          name=f"hardwired-{dsa}")
        self.config = cfg
        self.ideal = ideal
        self.dsa = dsa
        self.lookahead = lookahead
        self.window = window
        self.system = XCacheSystem(cfg, build_row_walker(),
                                   dram_config=dram_config)
        # Inner product walks B's *columns*: lay B out in CSC (= the CSR
        # of its transpose) and tag by column id. Same walker binary.
        cached = b.transpose() if algorithm == "inner" else b
        self._cached_matrix = cached
        self.layout = CSRLayout.build(self.system.image, cached,
                                      packed=True)
        self.trace = element_trace(a, algorithm, b)
        self._a_rows = None
        if algorithm == "inner":
            self._a_rows = [dict(zip(*a.row(i))) for i in range(a.rows)]
        # distinct-tag runs, for the decoupled preloader
        self._runs: List[int] = []
        last = None
        for k, _i, _v in self.trace:
            if k != last:
                self._runs.append(k)
                last = k
        self._result: Dict[Tuple[int, int], float] = {}
        self._loads: Dict[int, Tuple[int, int, float]] = {}
        self._preloads: set = set()
        self._next_compute = 0
        self._next_run = 0
        self._outstanding = 0
        self._preloads_outstanding = 0
        self._done_elements = 0
        self._last_done = 0
        self._failures = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Attach handlers and seed preloader + compute pump."""
        self.system.on_response(self._on_response)
        self._walk_fields = {"row_ptr": self.layout.row_ptr_addr,
                             "pairs": self.layout.pairs_addr}
        self._advance_preloader()
        self._issue_computes()

    def run(self) -> RunResult:
        self.start()
        self.system.run()
        return self.finish()

    def finish(self) -> RunResult:
        """Assemble the result after the simulation has drained."""
        ctrl = self.system.controller
        energy = EnergyModel().xcache_breakdown(ctrl, self._last_done)
        stats = ctrl.stats
        checks = (self._failures == 0
                  and self._done_elements == len(self.trace)
                  and self._validate())
        return RunResult(
            dsa=self.dsa,
            variant="baseline" if self.ideal else "xcache",
            cycles=self._last_done,
            dram_reads=self.system.dram.stats.get("reads"),
            dram_writes=self.system.dram.stats.get("writes"),
            onchip_accesses=stats.get("tag_probes")
            + ctrl.dataram.stats.get("bytes_read") // 8
            + ctrl.dataram.stats.get("bytes_written") // 8,
            hits=stats.get("hits"),
            misses=stats.get("misses"),
            requests=len(self.trace),
            energy=energy,
            checks_passed=checks,
            extras={
                "miss_merges": float(stats.get("miss_merges")),
                "capacity_evictions": float(stats.get("capacity_evictions")),
                "flops": 2.0 * sum(1 for _ in self._result),
            },
        )

    def _validate(self) -> bool:
        ref = spgemm_gustavson(self.a, self.b).to_dict()
        if set(ref) != set(self._result):
            return False
        return all(abs(ref[k] - self._result[k]) < 1e-6 * (1 + abs(ref[k]))
                   for k in ref)

    # ------------------------------------------------------------------
    # decoupled preloader (runs `lookahead` distinct rows ahead)
    # ------------------------------------------------------------------
    def _advance_preloader(self) -> None:
        while (self._preloads_outstanding < self.lookahead
               and self._next_run < len(self._runs)):
            k = self._runs[self._next_run]
            self._next_run += 1
            self._preloads_outstanding += 1
            msg = self.system.load((k,), walk_fields=self._walk_fields,
                                   preload=True)
            self._preloads.add(msg.uid)

    # ------------------------------------------------------------------
    # compute pump
    # ------------------------------------------------------------------
    def _issue_computes(self) -> None:
        while (self._outstanding < self.window
               and self._next_compute < len(self.trace)):
            k, i, v = self.trace[self._next_compute]
            self._next_compute += 1
            self._outstanding += 1
            msg = self.system.load((k,), walk_fields=self._walk_fields)
            self._loads[msg.uid] = (k, i, v)

    def _on_response(self, resp: MetaResponse) -> None:
        self._last_done = max(self._last_done, resp.completed_at)
        uid = resp.request.uid
        if uid in self._preloads:
            self._preloads.discard(uid)
            self._preloads_outstanding -= 1
            self._advance_preloader()
            return
        k, i, a_val = self._loads.pop(uid)
        if not resp.found:
            self._failures += 1
        elif self.algorithm == "inner":
            # MATCH: intersect column k of B with row i of A.
            acc = 0.0
            hit = False
            a_row = self._a_rows[i]
            for row_idx, b_val in CSRLayout.parse_pairs(resp.data):
                v = a_row.get(row_idx)
                if v is not None:
                    acc += v * b_val
                    hit = True
            if hit and acc != 0.0:
                self._result[(i, k)] = self._result.get((i, k), 0.0) + acc
        else:
            for col, b_val in CSRLayout.parse_pairs(resp.data):
                key = (i, col)
                self._result[key] = self._result.get(key, 0.0) + a_val * b_val
        self._done_elements += 1
        self._outstanding -= 1
        self._issue_computes()


class SpGEMMAddressModel:
    """Address-tagged comparator with an ideal walker.

    Per element (k, i): read ``row_ptr[k]`` (+``row_ptr[k+1]``) through
    the cache, then touch every block of row k's packed pairs. Address
    tags capture block reuse, but the translate step repeats on *every*
    access — "Address-caches walk even when the data is already in the
    cache" — and cold ``row_ptr`` blocks cost the extra DRAM access the
    paper calls out for SpArch/Gamma.
    """

    def __init__(self, a: SparseMatrix, b: SparseMatrix,
                 algorithm: str = "outer",
                 xcache_config: Optional[XCacheConfig] = None,
                 num_engines: Optional[int] = None,
                 dram_config: DRAMConfig = DRAMConfig()) -> None:
        if a.cols != b.rows:
            raise ValueError(f"shape mismatch {a.cols} != {b.rows}")
        self.a = a
        self.b = b
        self.algorithm = algorithm
        self.dsa = "sparch" if algorithm == "outer" else "gamma"
        xcfg = xcache_config if xcache_config is not None \
            else table3_config(self.dsa)
        self.sim = new_simulator()
        self.image = MemoryImage()
        self.dram = DRAMModel(self.sim, self.image, dram_config)
        self.cache = AddressCache(self.sim, self.dram,
                                  matched_cache_config(xcfg))
        self.layout = CSRLayout.build(self.image, b, packed=True)
        self.trace = element_trace(a, algorithm)
        self.num_engines = num_engines or xcfg.num_active
        self._result: Dict[Tuple[int, int], float] = {}
        self._next = 0
        self._done = 0
        self._agen_ops = 0
        self._last_done = 0

    def run(self) -> RunResult:
        for _ in range(self.num_engines):
            self._dispatch()
        self.sim.run()
        energy = EnergyModel().address_cache_breakdown(
            self.cache, self._last_done, agen_ops=self._agen_ops,
            hash_ops=0)
        checks = (self._done == len(self.trace) and self._validate())
        return RunResult(
            dsa=self.dsa,
            variant="addr",
            cycles=self._last_done,
            dram_reads=self.dram.stats.get("reads"),
            dram_writes=self.dram.stats.get("writes"),
            onchip_accesses=self.cache.stats.get("accesses"),
            hits=self.cache.stats.get("hits"),
            misses=self.cache.stats.get("misses"),
            requests=len(self.trace),
            energy=energy,
            checks_passed=checks,
        )

    def _validate(self) -> bool:
        ref = spgemm_gustavson(self.a, self.b).to_dict()
        if set(ref) != set(self._result):
            return False
        return all(abs(ref[k] - self._result[k]) < 1e-6 * (1 + abs(ref[k]))
                   for k in ref)

    def _dispatch(self) -> None:
        if self._next >= len(self.trace):
            return
        k, i, a_val = self.trace[self._next]
        self._next += 1
        # translate: row_ptr[k] and row_ptr[k+1]
        ptr_addr = self.layout.row_ptr_entry(k)
        self._agen_ops += 2
        lo = self.b.indptr[k]
        hi = self.b.indptr[k + 1]
        first = self.layout.pairs_addr + CSRLayout.PAIR_BYTES * lo
        last = self.layout.pairs_addr + CSRLayout.PAIR_BYTES * hi - 1
        blocks: List[int] = []
        if hi > lo:
            blocks = list(range(first & ~63, (last & ~63) + 64, 64))

        def after_translate(_lat: int) -> None:
            self._walk_blocks(blocks, 0, k, i, a_val)

        extra = [] if (ptr_addr & 63) != 60 else [ptr_addr + 4]
        if extra:
            self.cache.access(
                ptr_addr, False,
                lambda _l: self.cache.access(extra[0], False, after_translate),
            )
        else:
            self.cache.access(ptr_addr, False, after_translate)

    def _walk_blocks(self, blocks: List[int], j: int, k: int, i: int,
                     a_val: float) -> None:
        if j >= len(blocks):
            cols, vals = self.b.row(k)
            for col, b_val in zip(cols, vals):
                key = (i, col)
                self._result[key] = self._result.get(key, 0.0) + a_val * b_val
            self._done += 1
            self._last_done = self.sim.now
            self._dispatch()
            return
        self._agen_ops += 1
        self.cache.access(blocks[j], False,
                          lambda _l: self._walk_blocks(blocks, j + 1, k, i,
                                                       a_val))
