"""Shared infrastructure for the DSA models.

Each DSA in :mod:`repro.dsa` is modelled in (up to) three variants, the
comparison Figure 14 draws:

* ``xcache``   — the DSA datapath issuing meta loads/stores against a
  programmed X-Cache.
* ``baseline`` — the DSA's original hardwired design (custom on-chip RAM
  and orchestration).
* ``addr``     — an equally-sized *address-tagged* cache with an ideal
  (zero-time) walker: the walker makes the same orchestration decisions
  but the cache is indexed by addresses, so every access must still
  perform the metadata→address translation and the data-structure walk.

All variants report a :class:`RunResult`, which the harness reduces to
the paper's rows (speedups, memory-access ratios, power).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from ..core.controller import Controller, MetaResponse
from ..core.energy import EnergyBreakdown
from ..sim import Component, Simulator

__all__ = ["RunResult", "RequestPump"]


@dataclass
class RunResult:
    """Outcome of one DSA variant run."""

    dsa: str
    variant: str
    cycles: int
    dram_reads: int
    dram_writes: int
    onchip_accesses: int
    hits: int
    misses: int
    requests: int
    energy: Optional[EnergyBreakdown] = None
    checks_passed: bool = True
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def dram_accesses(self) -> int:
        return self.dram_reads + self.dram_writes

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def speedup_over(self, other: "RunResult") -> float:
        """How much faster this run is than ``other`` (>1 = faster)."""
        if self.cycles <= 0:
            return 0.0
        return other.cycles / self.cycles

    def row(self) -> Dict[str, object]:
        return {
            "dsa": self.dsa,
            "variant": self.variant,
            "cycles": self.cycles,
            "dram": self.dram_accesses,
            "onchip": self.onchip_accesses,
            "hit_rate": round(self.hit_rate, 4),
            "ok": self.checks_passed,
        }


class RequestPump(Component):
    """Issues requests from a generator with bounded outstanding.

    Models the DSA datapath's issue bandwidth: at most ``window``
    requests in flight; each completion admits the next. ``issue_fn``
    sends one request (by index); ``on_done`` fires when the trace
    drains and every response has returned.
    """

    def __init__(self, sim: Simulator, total: int,
                 issue_fn: Callable[[int], None],
                 window: int = 16,
                 on_done: Optional[Callable[[], None]] = None,
                 name: str = "pump") -> None:
        super().__init__(sim, name)
        if window <= 0:
            raise ValueError("window must be positive")
        self.total = total
        self.window = window
        self.issue_fn = issue_fn
        self.on_done = on_done
        self._next = 0
        self._outstanding = 0
        self._completed = 0

    def start(self) -> None:
        if self.total == 0:
            if self.on_done is not None:
                self.sim.call_after(0, self.on_done)
            return
        self._fill()

    def _fill(self) -> None:
        while self._outstanding < self.window and self._next < self.total:
            index = self._next
            self._next += 1
            self._outstanding += 1
            self.stats.inc("issued")
            self.issue_fn(index)

    def complete(self) -> None:
        """Call once per finished request."""
        self._outstanding -= 1
        self._completed += 1
        if self._completed == self.total:
            if self.on_done is not None:
                self.on_done()
            return
        self._fill()

    @property
    def done(self) -> bool:
        return self._completed == self.total
