"""Gamma convenience wrappers (Gustavson SpGEMM).

Same X-Cache microarchitecture and walker binary as SpArch — the paper's
portability demonstration — with the row-wise access order of
Gustavson's algorithm.
"""

from __future__ import annotations

from typing import Optional

from ..core.config import XCacheConfig
from ..data.csr import SparseMatrix
from ..mem.dram import DRAMConfig
from .spgemm import SpGEMMAddressModel, SpGEMMXCacheModel

__all__ = ["GammaXCacheModel", "GammaAddressModel"]


class GammaXCacheModel(SpGEMMXCacheModel):
    """Gustavson SpGEMM over the row-walker X-Cache."""

    def __init__(self, a: SparseMatrix, b: SparseMatrix,
                 config: Optional[XCacheConfig] = None,
                 ideal: bool = False,
                 dram_config: DRAMConfig = DRAMConfig(), **kw) -> None:
        super().__init__(a, b, algorithm="gustavson", config=config,
                         ideal=ideal, dram_config=dram_config, **kw)


class GammaAddressModel(SpGEMMAddressModel):
    """Address-tagged comparator for Gamma."""

    def __init__(self, a: SparseMatrix, b: SparseMatrix,
                 xcache_config: Optional[XCacheConfig] = None,
                 dram_config: DRAMConfig = DRAMConfig(), **kw) -> None:
        super().__init__(a, b, algorithm="gustavson",
                         xcache_config=xcache_config,
                         dram_config=dram_config, **kw)
