"""DASX: a hardware data-structure iterator (Kumar et al.).

DASX executes refill–compute–update *rounds*: a collector runs ahead of
the compute unit, refilling a hardwired object cache with the objects
the next round references; compute-unit accesses then hit on-chip. We
study the hash-table iterator (the paper's DASX(Hash) row): objects are
hash-index entries, and — unlike Widx — DASX couples hashing *into* the
walk, so X-Cache's hit-path hash elimination helps even more.

Variants:

* :class:`DasxXCacheModel`   — decoupled preloads into X-Cache; the
  compute unit's meta-loads hit (and reuse persists *across* rounds,
  which the flush-per-round baseline cannot do).
* :class:`DasxBaselineModel` — original DASX: per round, the collector
  hash+walks every key through an address cache into an object buffer
  that is reloaded each round; compute accesses are 1-cycle buffer hits.
* :class:`DasxAddressModel`  — same-size address cache with an ideal
  walker (the Figure 14 comparator): hash + walk on every access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import XCacheConfig, table3_config
from ..core.controller import MetaResponse
from ..core.energy import EnergyModel
from ..core.xcache import XCacheSystem
from ..data.hashindex import HashIndex
from ..mem.addrcache import AddressCache, CacheConfig
from ..mem.dram import DRAMConfig, DRAMModel
from ..mem.layout import MemoryImage
from ..sim import new_simulator
from .base import RunResult
from .walkers import build_hash_walker
from .widx import WidxWorkload, WidxAddressModel, _HashProbeEngine, \
    matched_cache_config

__all__ = ["DasxXCacheModel", "DasxBaselineModel", "DasxAddressModel"]


class DasxXCacheModel:
    """Round-based collector + compute unit over X-Cache."""

    def __init__(self, workload: WidxWorkload,
                 config: Optional[XCacheConfig] = None,
                 round_size: int = 64,
                 dram_config: DRAMConfig = DRAMConfig()) -> None:
        self.workload = workload
        self.config = config if config is not None else table3_config("dasx")
        self.round_size = round_size
        program = build_hash_walker(workload.num_buckets,
                                    workload.hash_cycles,
                                    name="dasx-walker")
        self.system = XCacheSystem(self.config, program,
                                   dram_config=dram_config)
        self.index = HashIndex.build(self.system.image, workload.pairs,
                                     workload.num_buckets)
        self._rounds: List[Sequence[int]] = [
            workload.probes[i:i + round_size]
            for i in range(0, len(workload.probes), round_size)
        ]
        self._expected: Dict[int, Optional[int]] = {}
        self._phase = "preload"
        self._round = 0
        self._outstanding = 0
        self._failures = 0
        self._last_done = 0

    def start(self) -> None:
        """Attach handlers and issue the first round (no simulation)."""
        self.system.on_response(self._on_response)
        self._walk_fields = {"table": self.index.table_addr}
        self._start_preload(0)

    def run(self) -> RunResult:
        self.start()
        self.system.run()
        return self.finish()

    def finish(self) -> RunResult:
        """Assemble the result after the simulation has drained."""
        ctrl = self.system.controller
        energy = EnergyModel().xcache_breakdown(ctrl, self._last_done)
        stats = ctrl.stats
        return RunResult(
            dsa=self.workload.name if self.workload.name != "widx" else "dasx",
            variant="xcache",
            cycles=self._last_done,
            dram_reads=self.system.dram.stats.get("reads"),
            dram_writes=self.system.dram.stats.get("writes"),
            onchip_accesses=stats.get("tag_probes")
            + ctrl.dataram.stats.get("bytes_read") // 8
            + ctrl.dataram.stats.get("bytes_written") // 8,
            hits=stats.get("hits"),
            misses=stats.get("misses"),
            requests=len(self.workload.probes),
            energy=energy,
            checks_passed=self._failures == 0,
            extras={"rounds": float(len(self._rounds)),
                    "miss_merges": float(stats.get("miss_merges"))},
        )

    # ------------------------------------------------------------------
    def _start_preload(self, round_idx: int) -> None:
        """Collector phase: decoupled preloads for the round's keys."""
        if round_idx >= len(self._rounds):
            return
        self._phase = "preload"
        self._round = round_idx
        keys = self._rounds[round_idx]
        self._outstanding = len(keys)
        for key in keys:
            self.system.load((key,), walk_fields=self._walk_fields,
                             preload=True)

    def _start_compute(self) -> None:
        """Compute phase: meta-loads over the (now resident) round."""
        self._phase = "compute"
        keys = self._rounds[self._round]
        self._outstanding = len(keys)
        for key in keys:
            msg = self.system.load((key,), walk_fields=self._walk_fields)
            self._expected[msg.uid] = self.index.probe(key)

    def _on_response(self, resp: MetaResponse) -> None:
        self._last_done = max(self._last_done, resp.completed_at)
        if self._phase == "compute":
            expected = self._expected.pop(resp.request.uid, "missing")
            got = (int.from_bytes(resp.data[:8], "little")
                   if resp.found and resp.data else None)
            if expected == "missing" or got != expected:
                self._failures += 1
        self._outstanding -= 1
        if self._outstanding == 0:
            if self._phase == "preload":
                self._start_compute()
            else:
                self._start_preload(self._round + 1)


class DasxBaselineModel:
    """Original DASX: flush-per-round object buffer.

    Per round: ``num_collectors`` engines hash+walk each key through an
    address cache; once the round's objects are buffered, the compute
    unit consumes them at one per cycle; the buffer is then reloaded for
    the next round (no cross-round reuse).
    """

    def __init__(self, workload: WidxWorkload, round_size: int = 64,
                 num_collectors: int = 4,
                 cache_config: Optional[CacheConfig] = None,
                 dram_config: DRAMConfig = DRAMConfig()) -> None:
        self.workload = workload
        self.round_size = round_size
        self.sim = new_simulator()
        self.image = MemoryImage()
        self.dram = DRAMModel(self.sim, self.image, dram_config)
        cfg = cache_config or matched_cache_config(table3_config("dasx"))
        self.cache = AddressCache(self.sim, self.dram, cfg)
        self.index = HashIndex.build(self.image, workload.pairs,
                                     workload.num_buckets)
        self.engines = [
            _HashProbeEngine(self.sim, self.cache, self.index,
                             workload.hash_cycles, f"collector{i}")
            for i in range(num_collectors)
        ]
        self._rounds: List[Sequence[int]] = [
            workload.probes[i:i + round_size]
            for i in range(0, len(workload.probes), round_size)
        ]
        self._failures = 0
        self._last_done = 0

    def run(self) -> RunResult:
        self._run_round(0)
        self.sim.run()
        hash_ops = sum(e.stats.get("hashes") for e in self.engines)
        agen_ops = sum(e.stats.get("agen_ops") for e in self.engines)
        energy = EnergyModel().address_cache_breakdown(
            self.cache, self._last_done, agen_ops=agen_ops,
            hash_ops=hash_ops, hash_cycles=self.workload.hash_cycles)
        return RunResult(
            dsa="dasx",
            variant="baseline",
            cycles=self._last_done,
            dram_reads=self.dram.stats.get("reads"),
            dram_writes=self.dram.stats.get("writes"),
            onchip_accesses=self.cache.stats.get("accesses"),
            hits=self.cache.stats.get("hits"),
            misses=self.cache.stats.get("misses"),
            requests=len(self.workload.probes),
            energy=energy,
            checks_passed=self._failures == 0,
            extras={"rounds": float(len(self._rounds))},
        )

    def _run_round(self, round_idx: int) -> None:
        if round_idx >= len(self._rounds):
            return
        keys = list(self._rounds[round_idx])
        pending = {"n": len(keys), "next": 0}

        def collect(engine: _HashProbeEngine) -> None:
            if pending["next"] >= len(keys):
                return
            key = keys[pending["next"]]
            pending["next"] += 1
            expected = self.index.probe(key)

            def on_done(rid) -> None:
                if rid != expected:
                    self._failures += 1
                pending["n"] -= 1
                if pending["n"] == 0:
                    # compute phase: one object per cycle from the buffer
                    self.sim.call_after(
                        len(keys), lambda: self._finish_round(round_idx))
                else:
                    collect(engine)

            engine.probe(key, on_done)

        for engine in self.engines:
            collect(engine)

    def _finish_round(self, round_idx: int) -> None:
        self._last_done = self.sim.now
        self._run_round(round_idx + 1)


class DasxAddressModel(DasxBaselineModel):
    """Figure-14 comparator for DASX: ideal walker over an address cache.

    Same round orchestration as the X-Cache variant (collector refills a
    round, compute consumes it), but objects are address-tagged: every
    collector refill must hash + walk through the cache, resident or not.
    Parallelism matches the X-Cache configuration's #Active.
    """

    def __init__(self, workload: WidxWorkload,
                 xcache_config: Optional[XCacheConfig] = None,
                 round_size: int = 64,
                 dram_config: DRAMConfig = DRAMConfig()) -> None:
        xcfg = xcache_config if xcache_config is not None \
            else table3_config("dasx")
        super().__init__(workload, round_size=round_size,
                         num_collectors=xcfg.num_active,
                         cache_config=matched_cache_config(xcfg),
                         dram_config=dram_config)

    def run(self) -> RunResult:
        result = super().run()
        result.variant = "addr"
        return result
