"""Widx: hash-index walking for in-memory databases (Kocberber et al.).

The DSA accelerates hash-join index probes: hash the key, locate the
bucket, chase the chained nodes, return the RID. The original Widx kept
data in an *address-based* cache, so every probe — even for hot keys —
paid the hash (up to ~60 cycles for TPC-H's string keys) and the walk.

X-Cache instead tags the cached index nodes with the *keys themselves*
(Figure 10a): a meta-tag hit returns the RID in 3 cycles, skipping both
hashing and walking. That is the source of the paper's 1.54× speedup
over Widx and the ~10× lower load-to-use latency.

Variants modelled here:

* :class:`WidxXCacheModel`    — meta-tagged X-Cache (hash walker program).
* :class:`WidxBaselineModel`  — original Widx: ``num_walkers`` probe
  engines that always hash + walk through an address cache.
* :class:`WidxAddressModel`   — the Figure-14 comparator: address-tagged
  cache of the same size with an *ideal* walker (same parallelism as
  X-Cache, zero orchestration cost — but it must still translate and
  walk, because the tags are addresses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.config import XCacheConfig, table3_config
from ..core.controller import Controller, MetaResponse
from ..core.energy import EnergyModel
from ..core.xcache import XCacheSystem
from ..data.hashindex import HashIndex
from ..mem.addrcache import AddressCache, CacheConfig
from ..mem.dram import DRAMConfig, DRAMModel
from ..mem.layout import MemoryImage
from ..sim import Component, Simulator, new_simulator
from .base import RequestPump, RunResult
from .walkers import build_hash_walker

__all__ = [
    "WidxWorkload",
    "WidxXCacheModel",
    "WidxBaselineModel",
    "WidxAddressModel",
    "matched_cache_config",
]

HASH_CYCLES_STRING = 60   # TPC-H 19/20: string keys (paper: "up to 60 cycles")
HASH_CYCLES_NUMERIC = 4   # TPC-H 22: numeric keys


@dataclass(frozen=True)
class WidxWorkload:
    """A hash-join probe workload.

    ``pairs``  — (key, rid) tuples building the index.
    ``probes`` — the key trace the DSA looks up.
    ``num_buckets`` — index bucket count (power of two).
    ``hash_cycles`` — hash-unit latency (string vs numeric keys).
    """

    pairs: Tuple[Tuple[int, int], ...]
    probes: Tuple[int, ...]
    num_buckets: int
    hash_cycles: int = HASH_CYCLES_STRING
    name: str = "widx"


def matched_cache_config(config: XCacheConfig) -> CacheConfig:
    """Address-cache geometry matching an X-Cache's data capacity.

    The paper keeps the same geometry across X-Cache, the address cache,
    and the baseline "to ensure a fair comparison".
    """
    sets = max(1, config.data_bytes // (config.ways * 64))
    # round down to a power of two
    while sets & (sets - 1):
        sets &= sets - 1
    return CacheConfig(ways=config.ways, sets=sets, block_bytes=64,
                       hit_latency=config.hit_latency)


def _build_index(image: MemoryImage, workload: WidxWorkload) -> HashIndex:
    return HashIndex.build(image, workload.pairs, workload.num_buckets)


class WidxXCacheModel:
    """Widx datapath over a programmed X-Cache."""

    def __init__(self, workload: WidxWorkload,
                 config: Optional[XCacheConfig] = None,
                 dram_config: DRAMConfig = DRAMConfig(),
                 window: int = 16) -> None:
        self.workload = workload
        self.config = config if config is not None else table3_config("widx")
        program = build_hash_walker(workload.num_buckets,
                                    workload.hash_cycles)
        self.system = XCacheSystem(self.config, program,
                                   dram_config=dram_config)
        self.index = _build_index(self.system.image, workload)
        self.window = window
        self._expected: Dict[int, Optional[int]] = {}
        self._failures = 0
        self._last_done = 0

    def start(self) -> None:
        """Attach handlers and seed the request pump (no simulation)."""
        probes = self.workload.probes
        self._table = self.index.table_addr
        self._pump = RequestPump(self.system.sim, len(probes), self._issue,
                                 window=self.window, name="widx-pump")
        self.system.on_response(self._on_resp)
        self._pump.start()

    def _on_resp(self, resp: MetaResponse) -> None:
        expected = self._expected.pop(resp.request.uid, "missing")
        if expected == "missing":
            self._failures += 1
        elif expected is None:
            if resp.found:
                self._failures += 1
        else:
            got = (int.from_bytes(resp.data[:8], "little")
                   if resp.found and resp.data else None)
            if got != expected:
                self._failures += 1
        self._last_done = max(self._last_done, resp.completed_at)
        self._pump.complete()

    def run(self) -> RunResult:
        self.start()
        self.system.run()
        return self.finish()

    def finish(self) -> RunResult:
        """Assemble the result after the simulation has drained."""
        probes = self.workload.probes
        ctrl = self.system.controller
        energy = EnergyModel().xcache_breakdown(ctrl, self._last_done)
        stats = ctrl.stats
        return RunResult(
            dsa=self.workload.name,
            variant="xcache",
            cycles=self._last_done,
            dram_reads=self.system.dram.stats.get("reads"),
            dram_writes=self.system.dram.stats.get("writes"),
            onchip_accesses=stats.get("tag_probes")
            + ctrl.dataram.stats.get("bytes_read") // 8
            + ctrl.dataram.stats.get("bytes_written") // 8,
            hits=stats.get("hits"),
            misses=stats.get("misses"),
            requests=len(probes),
            energy=energy,
            checks_passed=self._failures == 0,
            extras={
                "miss_merges": stats.get("miss_merges"),
                "actions": stats.get("actions_total"),
                "mean_load_to_use": stats.histogram("load_to_use").mean,
            },
        )

    def _issue(self, index: int) -> None:
        key = self.workload.probes[index]
        msg = self.system.load((key,), walk_fields={"table": self._table})
        self._expected[msg.uid] = self.index.probe(key)


class _HashProbeEngine(Component):
    """One blocking probe engine: hash → root access → chain walk.

    This is the translate-and-walk loop an address-tagged design cannot
    avoid: the engine computes the bucket address (hash), loads the root
    pointer through the cache, then loads nodes until the key matches.
    """

    def __init__(self, sim: Simulator, cache: AddressCache,
                 index: HashIndex, hash_cycles: int, name: str) -> None:
        super().__init__(sim, name)
        self.cache = cache
        self.index = index
        self.hash_cycles = hash_cycles

    def probe(self, key: int, callback: Callable[[Optional[int]], None]) -> None:
        self.stats.inc("hashes")
        self.stats.inc("agen_ops", 2)
        rid, walk = self.index.probe_with_walk(key)
        bucket = self.index.bucket_of(key)
        root = self.index.bucket_root_entry(bucket)

        def after_hash() -> None:
            self.cache.access(root, False, lambda _lat: self._walk(walk, 0,
                                                                    rid,
                                                                    callback))

        self.sim.call_after(max(1, self.hash_cycles), after_hash)

    def _walk(self, walk: List[int], i: int, rid: Optional[int],
              callback: Callable[[Optional[int]], None]) -> None:
        if i >= len(walk):
            callback(rid)
            return
        self.stats.inc("agen_ops")
        self.cache.access(walk[i], False,
                          lambda _lat: self._walk(walk, i + 1, rid, callback))


class _AddressVariantBase:
    """Shared machinery for the baseline and ideal-address variants."""

    variant = "addr"

    def __init__(self, workload: WidxWorkload, num_engines: int,
                 cache_config: Optional[CacheConfig] = None,
                 dram_config: DRAMConfig = DRAMConfig()) -> None:
        self.workload = workload
        self.sim = new_simulator()
        self.image = MemoryImage()
        self.dram = DRAMModel(self.sim, self.image, dram_config)
        cfg = cache_config or matched_cache_config(table3_config("widx"))
        self.cache = AddressCache(self.sim, self.dram, cfg)
        self.index = _build_index(self.image, workload)
        self.engines = [
            _HashProbeEngine(self.sim, self.cache, self.index,
                             workload.hash_cycles, f"engine{i}")
            for i in range(num_engines)
        ]
        self._failures = 0
        self._last_done = 0
        self._next_probe = 0
        from ..sim.stats import Histogram
        self.latency_hist = Histogram("probe_latency")

    def _dispatch(self, engine: _HashProbeEngine) -> None:
        if self._next_probe >= len(self.workload.probes):
            return
        key = self.workload.probes[self._next_probe]
        self._next_probe += 1
        expected = self.index.probe(key)
        started = self.sim.now

        def on_done(rid: Optional[int]) -> None:
            if rid != expected:
                self._failures += 1
            self._done += 1
            self._last_done = self.sim.now
            self.latency_hist.add(self.sim.now - started)
            self._dispatch(engine)

        engine.probe(key, on_done)

    def run(self) -> RunResult:
        self._done = 0
        for engine in self.engines:
            self._dispatch(engine)
        self.sim.run()
        hash_ops = sum(e.stats.get("hashes") for e in self.engines)
        agen_ops = sum(e.stats.get("agen_ops") for e in self.engines)
        energy = EnergyModel().address_cache_breakdown(
            self.cache, self._last_done, agen_ops=agen_ops,
            hash_ops=hash_ops, hash_cycles=self.workload.hash_cycles)
        return RunResult(
            dsa=self.workload.name,
            variant=self.variant,
            cycles=self._last_done,
            dram_reads=self.dram.stats.get("reads"),
            dram_writes=self.dram.stats.get("writes"),
            onchip_accesses=self.cache.stats.get("accesses"),
            hits=self.cache.stats.get("hits"),
            misses=self.cache.stats.get("misses"),
            requests=len(self.workload.probes),
            energy=energy,
            checks_passed=(self._failures == 0
                           and self._done == len(self.workload.probes)),
            extras={"hash_ops": float(hash_ops)},
        )


class WidxBaselineModel(_AddressVariantBase):
    """The original Widx: a few walker units, always hash + walk."""

    variant = "baseline"

    def __init__(self, workload: WidxWorkload, num_walkers: int = 4,
                 cache_config: Optional[CacheConfig] = None,
                 dram_config: DRAMConfig = DRAMConfig()) -> None:
        super().__init__(workload, num_walkers, cache_config, dram_config)


class WidxAddressModel(_AddressVariantBase):
    """Address-tagged comparator with an ideal walker.

    Same parallelism as the X-Cache configuration's #Active, zero
    orchestration cost — the remaining cost is purely what address tags
    force: hash + root + chain accesses on every probe.
    """

    variant = "addr"

    def __init__(self, workload: WidxWorkload,
                 xcache_config: Optional[XCacheConfig] = None,
                 dram_config: DRAMConfig = DRAMConfig()) -> None:
        xcfg = xcache_config if xcache_config is not None \
            else table3_config("widx")
        super().__init__(workload, xcfg.num_active,
                         matched_cache_config(xcfg), dram_config)
