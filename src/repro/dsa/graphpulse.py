"""GraphPulse: event-driven asynchronous graph processing (Rahman et al.).

GraphPulse PEs emit (vertex, Δ) events; an on-chip event queue
*coalesces* events to the same vertex by adding payloads. The paper
replaces this queue with an X-Cache: the meta-tag is the vertex id,
a store-hit merges payloads with an adder on the hit port, a store-miss
allocates an entry (no DRAM walk at all), and the PE pops events with
take-loads (read + invalidate).

The workload is delta-based PageRank. Each processed event folds the
coalesced residual into the vertex's rank, streams the vertex's
adjacency from DRAM, and emits damped shares to the out-neighbours.

Variants:

* :class:`GraphPulseXCacheModel`  — events in a programmed X-Cache.
* ``ideal=True``                  — the hardwired-event-queue baseline:
  identical behaviour with an unconstrained controller (the paper finds
  X-Cache ≈ baseline for GraphPulse).
* :class:`GraphPulseAddressModel` — events in a DRAM-resident residual
  array behind an address cache: every insert is a read-modify-write
  through the cache, every pop a read + write.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace
from functools import partial
from typing import Callable, Deque, Dict, List, Optional

from collections import deque

from ..core.config import XCacheConfig, table3_config
from ..core.controller import MetaResponse
from ..core.energy import EnergyModel
from ..core.xcache import XCacheSystem
from ..data.graphs import Graph, GraphLayout, pagerank_event_driven
from ..mem.addrcache import AddressCache, CacheConfig
from ..mem.dram import DRAMConfig, DRAMModel, MemRequest
from ..mem.layout import MemoryImage
from ..sim import new_simulator
from .base import RunResult
from .walkers import build_event_walker

__all__ = ["GraphPulseXCacheModel", "GraphPulseAddressModel",
           "graphpulse_config"]


def _structure_cache(sim, dram, graph: Graph) -> AddressCache:
    """Graph-structure cache shared by all GraphPulse variants.

    GraphPulse bins events for locality and streams the partition's
    adjacency; a conventional cache sized to the (scaled) partition
    models that structure-side path. Events themselves never live here.
    """
    graph_bytes = 4 * (graph.num_edges + graph.num_vertices + 1)
    sets = 1
    while sets * 8 * 64 < 2 * graph_bytes:
        sets *= 2
    return AddressCache(sim, dram,
                        CacheConfig(ways=8, sets=sets, ports=2),
                        name="graph-structure")


def _f2b(x: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", x))[0]


def _b2f(bits: int) -> float:
    return struct.unpack("<d", struct.pack("<Q", bits))[0]


def graphpulse_config(num_vertices: int,
                      base: Optional[XCacheConfig] = None) -> XCacheConfig:
    """Table-3 GraphPulse geometry, with sets covering the graph.

    The paper provisions 131072 direct-mapped sets and preloads once;
    we size sets to the (scaled) graph so the event store never spills —
    conflict evictions would silently drop residual mass (see DESIGN.md
    fidelity notes).
    """
    cfg = base if base is not None else table3_config("graphpulse")
    sets = 1
    while sets < num_vertices:
        sets *= 2
    return replace(cfg, sets=sets, data_sectors=max(cfg.ways * sets, 64),
                   name="xcache-graphpulse")


class GraphPulseXCacheModel:
    """PageRank PEs over an X-Cache event queue."""

    def __init__(self, graph: Graph, config: Optional[XCacheConfig] = None,
                 damping: float = 0.85, epsilon: float = 1e-6,
                 num_pes: int = 4, ideal: bool = False,
                 dram_config: DRAMConfig = DRAMConfig()) -> None:
        self.graph = graph
        cfg = config if config is not None else graphpulse_config(
            graph.num_vertices)
        if ideal:
            # Hardwired event-queue baseline: same geometry/behaviour,
            # no microcode interpretation (doubled back-end width).
            cfg = replace(cfg, num_exe=cfg.num_exe * 2,
                          name="hardwired-eventq")
        self.config = cfg
        self.ideal = ideal
        self.damping = damping
        self.epsilon = epsilon
        self.num_pes = num_pes
        self.system = XCacheSystem(cfg, build_event_walker(),
                                   dram_config=dram_config,
                                   store_merge="fadd")
        self.layout = GraphLayout.build(self.system.image, graph)
        self.struct_cache = _structure_cache(self.system.sim,
                                             self.system.dram, graph)
        self.rank: List[float] = [0.0] * graph.num_vertices
        self._pending: Deque[int] = deque()
        self._in_queue = [False] * graph.num_vertices
        self._outstanding_stores = 0
        self._takes: Dict[int, int] = {}   # msg uid -> vertex
        self._store_acks: Dict[int, Callable[[], None]] = {}
        # adjacency-stream / share-emission fan-in, keyed by a unique
        # token (the same vertex can be in flight twice): token ->
        # [remaining, v, share]. Plain data + bound-method partials, so
        # in-flight fan-ins survive snapshot/restore.
        self._streams: Dict[int, List] = {}
        self._stream_seq = 0
        self._emit_waits: Dict[int, int] = {}
        self._emit_seq = 0
        self._events_processed = 0
        self._last_done = 0
        self._idle_pes = 0
        self._max_cycles = 50_000_000

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Attach handlers and seed the initial residuals."""
        n = self.graph.num_vertices
        self.system.on_response(self._on_response)
        seed = (1.0 - self.damping) / n
        for v in range(n):
            self._emit(v, seed)
        self._idle_pes = self.num_pes
        self._schedule_pes()

    def run(self, max_cycles: int = 50_000_000) -> RunResult:
        self._max_cycles = max_cycles
        self.start()
        self.system.run(until=max_cycles)
        return self.finish()

    def finish(self) -> RunResult:
        """Assemble + validate the result after the run drains."""
        ctrl = self.system.controller
        energy = EnergyModel().xcache_breakdown(ctrl, self._last_done)
        stats = ctrl.stats
        checks = self._validate()
        return RunResult(
            dsa="graphpulse",
            variant="baseline" if self.ideal else "xcache",
            cycles=self._last_done,
            dram_reads=self.system.dram.stats.get("reads"),
            dram_writes=self.system.dram.stats.get("writes"),
            onchip_accesses=stats.get("tag_probes")
            + ctrl.dataram.stats.get("bytes_read") // 8
            + ctrl.dataram.stats.get("bytes_written") // 8,
            hits=stats.get("hits") + stats.get("store_hits"),
            misses=stats.get("misses"),
            requests=stats.get("meta_loads") + stats.get("meta_stores"),
            energy=energy,
            checks_passed=checks,
            extras={
                "events_processed": float(self._events_processed),
                "merge_ops": float(stats.get("merge_ops")),
                "rank_sum": sum(self.rank),
            },
        )

    def _validate(self) -> bool:
        total = sum(self.rank)
        if not 0.90 <= total <= 1.001:
            return False
        ref, _ = pagerank_event_driven(self.graph, self.damping,
                                       epsilon=self.epsilon / 10)
        l1 = sum(abs(a - b) for a, b in zip(self.rank, ref))
        return l1 < 0.05

    # ------------------------------------------------------------------
    def _emit(self, v: int, share: float, on_ack=None) -> None:
        self._outstanding_stores += 1
        msg = self.system.store((v,), _f2b(share))
        if on_ack is not None:
            self._store_acks[msg.uid] = on_ack
        if not self._in_queue[v]:
            self._in_queue[v] = True
            self._pending.append(v)

    def _schedule_pes(self) -> None:
        while self._idle_pes > 0 and self._pending:
            v = self._pending.popleft()
            self._in_queue[v] = False
            self._idle_pes -= 1
            msg = self.system.load((v,), take=True)
            self._takes[msg.uid] = v

    def _on_response(self, resp: MetaResponse) -> None:
        self._last_done = max(self._last_done, resp.completed_at)
        uid = resp.request.uid
        if uid in self._takes:
            v = self._takes.pop(uid)
            if resp.found and resp.data:
                residual = _b2f(int.from_bytes(resp.data[:8], "little"))
            else:
                residual = 0.0
            self._process_event(v, residual)
            return
        # a store ack
        self._outstanding_stores -= 1
        on_ack = self._store_acks.pop(uid, None)
        if on_ack is not None:
            on_ack()
        self._schedule_pes()

    def _process_event(self, v: int, residual: float) -> None:
        if residual <= self.epsilon:
            self._pe_done()
            return
        self._events_processed += 1
        self.rank[v] += residual
        deg = self.graph.out_degree(v)
        if deg == 0:
            self._pe_done()
            return
        share = self.damping * residual / deg
        # Stream the adjacency row from DRAM: indptr block + index blocks.
        first = self.layout.indices_entry(self.graph.indptr[v])
        last = self.layout.indices_entry(self.graph.indptr[v + 1] - 1)
        blocks = [self.layout.indptr_entry(v) & ~63]
        blocks.extend(range(first & ~63, (last & ~63) + 64, 64))
        self._stream_seq += 1
        token = self._stream_seq
        self._streams[token] = [len(blocks), v, share]
        on_block = partial(self._on_struct_block, token)
        for block in blocks:
            self.struct_cache.access(block, False, on_block)

    def _on_struct_block(self, token: int, _lat: int) -> None:
        entry = self._streams[token]
        entry[0] -= 1
        if entry[0] == 0:
            del self._streams[token]
            self._emit_shares(entry[1], entry[2])

    def _emit_shares(self, v: int, share: float) -> None:
        """Emit events; the PE stays busy until the queue accepts all
        of them (insert bandwidth back-pressures event generation)."""
        neighbors = self.graph.out_neighbors(v)
        if share <= self.epsilon or not neighbors:
            self._pe_done()
            return
        self._emit_seq += 1
        token = self._emit_seq
        self._emit_waits[token] = len(neighbors)
        acked = partial(self._on_share_ack, token)
        for u in neighbors:
            self._emit(u, share, on_ack=acked)

    def _on_share_ack(self, token: int) -> None:
        self._emit_waits[token] -= 1
        if self._emit_waits[token] == 0:
            del self._emit_waits[token]
            self._pe_done()

    def _pe_done(self) -> None:
        self._idle_pes += 1
        self._last_done = max(self._last_done, self.system.sim.now)
        self._schedule_pes()


class GraphPulseAddressModel:
    """Residuals in a DRAM array behind an address-tagged cache.

    Insert(v, Δ): read residual[v] through the cache, add, write back.
    Pop(v): read residual[v], write 0. The residual array footprint is
    8 B × |V|, so graphs larger than the cache thrash — the traffic an
    on-chip meta-tagged event store never generates.
    """

    def __init__(self, graph: Graph,
                 cache_config: Optional[CacheConfig] = None,
                 damping: float = 0.85, epsilon: float = 1e-6,
                 num_pes: int = 4,
                 dram_config: DRAMConfig = DRAMConfig()) -> None:
        self.graph = graph
        self.damping = damping
        self.epsilon = epsilon
        self.num_pes = num_pes
        self.sim = new_simulator()
        self.image = MemoryImage()
        self.dram = DRAMModel(self.sim, self.image, dram_config)
        if cache_config is None:
            xcfg = graphpulse_config(graph.num_vertices)
            from .widx import matched_cache_config
            cache_config = matched_cache_config(xcfg)
        self.cache = AddressCache(self.sim, self.dram, cache_config)
        self.layout = GraphLayout.build(self.image, graph)
        self.struct_cache = _structure_cache(self.sim, self.dram, graph)
        self.residual = [0.0] * graph.num_vertices   # functional mirror
        self.rank: List[float] = [0.0] * graph.num_vertices
        self._pending: Deque[int] = deque()
        self._in_queue = [False] * graph.num_vertices
        self._idle_pes = num_pes
        self._events_processed = 0
        self._inserts = 0
        self._last_done = 0

    def run(self, max_cycles: int = 50_000_000) -> RunResult:
        n = self.graph.num_vertices
        seed = (1.0 - self.damping) / n
        for v in range(n):
            self._insert(v, seed, lambda: None)
        self._schedule_pes()
        self.sim.run(until=max_cycles)
        energy = EnergyModel().address_cache_breakdown(
            self.cache, self._last_done,
            agen_ops=self._inserts * 2, hash_ops=0)
        checks = self._validate()
        return RunResult(
            dsa="graphpulse",
            variant="addr",
            cycles=self._last_done,
            dram_reads=self.dram.stats.get("reads"),
            dram_writes=self.dram.stats.get("writes"),
            onchip_accesses=self.cache.stats.get("accesses"),
            hits=self.cache.stats.get("hits"),
            misses=self.cache.stats.get("misses"),
            requests=self._inserts,
            energy=energy,
            checks_passed=checks,
            extras={"events_processed": float(self._events_processed),
                    "rank_sum": sum(self.rank)},
        )

    def _validate(self) -> bool:
        total = sum(self.rank)
        if not 0.90 <= total <= 1.001:
            return False
        ref, _ = pagerank_event_driven(self.graph, self.damping,
                                       epsilon=self.epsilon / 10)
        l1 = sum(abs(a - b) for a, b in zip(self.rank, ref))
        return l1 < 0.05

    # ------------------------------------------------------------------
    def _insert(self, v: int, delta: float, done: Callable[[], None]) -> None:
        """Read-modify-write residual[v] through the address cache."""
        self._inserts += 1
        addr = self.layout.rank_entry(v)  # reuse rank array as residual slot

        def after_read(_lat: int) -> None:
            self.residual[v] += delta
            self.cache.access(addr, True, lambda _l: done())

        self.cache.access(addr, False, after_read)
        if not self._in_queue[v]:
            self._in_queue[v] = True
            self._pending.append(v)

    def _schedule_pes(self) -> None:
        while self._idle_pes > 0 and self._pending:
            v = self._pending.popleft()
            self._in_queue[v] = False
            self._idle_pes -= 1
            self._pop(v)

    def _pop(self, v: int) -> None:
        addr = self.layout.rank_entry(v)

        def after_read(_lat: int) -> None:
            residual = self.residual[v]
            self.residual[v] = 0.0
            self.cache.access(addr, True,
                              lambda _l: self._process(v, residual))

        self.cache.access(addr, False, after_read)

    def _process(self, v: int, residual: float) -> None:
        self._last_done = self.sim.now
        if residual <= self.epsilon:
            self._pe_done()
            return
        self._events_processed += 1
        self.rank[v] += residual
        deg = self.graph.out_degree(v)
        if deg == 0:
            self._pe_done()
            return
        share = self.damping * residual / deg
        first = self.layout.indices_entry(self.graph.indptr[v])
        last = self.layout.indices_entry(self.graph.indptr[v + 1] - 1)
        blocks = [self.layout.indptr_entry(v) & ~63]
        blocks.extend(range(first & ~63, (last & ~63) + 64, 64))
        remaining = {"n": len(blocks)}

        def on_block(_lat) -> None:
            remaining["n"] -= 1
            if remaining["n"] == 0:
                self._emit_shares(v, share)

        for block in blocks:
            self.struct_cache.access(block, False, on_block)

    def _emit_shares(self, v: int, share: float) -> None:
        if share > self.epsilon:
            outstanding = {"n": self.graph.out_degree(v)}

            def one_done() -> None:
                outstanding["n"] -= 1
                if outstanding["n"] == 0:
                    self._pe_done()

            for u in self.graph.out_neighbors(v):
                self._insert(u, share, one_done)
        else:
            self._pe_done()

    def _pe_done(self) -> None:
        self._idle_pes += 1
        self._last_done = self.sim.now
        self._schedule_pes()
