"""SpArch convenience wrappers (outer-product SpGEMM).

SpArch and Gamma share the row-walker X-Cache (see
:mod:`repro.dsa.spgemm`); these aliases pin the algorithm and Table-3
geometry so callers can say "SpArch" and mean it.
"""

from __future__ import annotations

from typing import Optional

from ..core.config import XCacheConfig
from ..data.csr import SparseMatrix
from ..mem.dram import DRAMConfig
from .spgemm import SpGEMMAddressModel, SpGEMMXCacheModel

__all__ = ["SpArchXCacheModel", "SpArchAddressModel"]


class SpArchXCacheModel(SpGEMMXCacheModel):
    """Outer-product SpGEMM over the row-walker X-Cache."""

    def __init__(self, a: SparseMatrix, b: SparseMatrix,
                 config: Optional[XCacheConfig] = None,
                 ideal: bool = False,
                 dram_config: DRAMConfig = DRAMConfig(), **kw) -> None:
        super().__init__(a, b, algorithm="outer", config=config,
                         ideal=ideal, dram_config=dram_config, **kw)


class SpArchAddressModel(SpGEMMAddressModel):
    """Address-tagged comparator for SpArch."""

    def __init__(self, a: SparseMatrix, b: SparseMatrix,
                 xcache_config: Optional[XCacheConfig] = None,
                 dram_config: DRAMConfig = DRAMConfig(), **kw) -> None:
        super().__init__(a, b, algorithm="outer",
                         xcache_config=xcache_config,
                         dram_config=dram_config, **kw)
