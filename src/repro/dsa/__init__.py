"""The five evaluated DSAs: Widx, DASX, GraphPulse, SpArch, Gamma.

Each module provides the X-Cache integration, the hardwired baseline,
and the address-tagged comparator Figure 14 measures against.
"""

from .base import RequestPump, RunResult
from .walkers import (
    build_btree_walker,
    build_event_walker,
    build_hash_walker,
    build_row_walker,
)
from .widx import (
    HASH_CYCLES_NUMERIC,
    HASH_CYCLES_STRING,
    WidxAddressModel,
    WidxBaselineModel,
    WidxWorkload,
    WidxXCacheModel,
    matched_cache_config,
)
from .dasx import DasxAddressModel, DasxBaselineModel, DasxXCacheModel
from .graphpulse import (
    GraphPulseAddressModel,
    GraphPulseXCacheModel,
    graphpulse_config,
)
from .spgemm import SpGEMMAddressModel, SpGEMMXCacheModel, element_trace
from .sparch import SpArchAddressModel, SpArchXCacheModel
from .gamma import GammaAddressModel, GammaXCacheModel

__all__ = [
    "RunResult", "RequestPump",
    "build_hash_walker", "build_row_walker", "build_event_walker",
    "build_btree_walker",
    "WidxWorkload", "WidxXCacheModel", "WidxBaselineModel",
    "WidxAddressModel", "matched_cache_config",
    "HASH_CYCLES_STRING", "HASH_CYCLES_NUMERIC",
    "DasxXCacheModel", "DasxBaselineModel", "DasxAddressModel",
    "GraphPulseXCacheModel", "GraphPulseAddressModel", "graphpulse_config",
    "SpGEMMXCacheModel", "SpGEMMAddressModel", "element_trace",
    "SpArchXCacheModel", "SpArchAddressModel",
    "GammaXCacheModel", "GammaAddressModel",
]
