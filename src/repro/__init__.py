"""X-Cache: a modular architecture for domain-specific caches.

Functional/cycle-level reproduction of Sedaghati, Hakimi, Hojabr,
Shriraman — ISCA 2022 (DOI 10.1145/3470496.3527380).

Subpackages
-----------
``repro.sim``       discrete-event simulation kernel
``repro.mem``       memory image, DRAM model, address-tagged cache
``repro.data``      CSR/CSC matrices, hash index, graphs
``repro.core``      meta-tags, X-Action microcode, coroutine controller
``repro.dsa``       Widx, DASX, GraphPulse, SpArch, Gamma integrations
``repro.workloads`` synthetic TPC-H traces, power-law graphs, matrices
``repro.harness``   per-figure/table experiment drivers
"""

__version__ = "1.0.0"

from .core import (
    XCacheConfig,
    XCacheSystem,
    compile_walker,
    op,
    table3_config,
)

__all__ = [
    "__version__",
    "XCacheConfig",
    "XCacheSystem",
    "compile_walker",
    "op",
    "table3_config",
]
