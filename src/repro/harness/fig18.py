"""Figure 18 — sweeping the design parameters #Active and #Exe.

The paper sweeps the controller's parallelism knobs for two DSAs with
opposite bottlenecks:

* **GraphPulse** (p2p-Gnutella08): controller-throughput bound — more
  #Active/#Exe shrinks runtime by up to ~2×;
* **Widx** (TPC-H-22): DRAM-latency bound and hit-dominated — the same
  sweep buys at most ~10 %.
"""

from __future__ import annotations

from dataclasses import replace

from ..dsa.graphpulse import GraphPulseXCacheModel, graphpulse_config
from ..dsa.widx import WidxXCacheModel
from ..workloads.graphgen import p2p_gnutella08
from .profiles import get_profile
from .report import ExperimentReport

__all__ = ["run"]

# (#Active, #Exe) points, sweeping up from the Table-3 defaults as the
# paper does.
_SWEEP = ((16, 2), (16, 4), (32, 8), (64, 8))


def run(profile: str = "full") -> ExperimentReport:
    prof = get_profile(profile)
    report = ExperimentReport(
        exp_id="fig18",
        title="Sweeping #Active / #Exe (runtime normalized to smallest "
              "config)",
        headers=["#Active", "#Exe", "graphpulse norm", "widx norm"],
    )

    graph = p2p_gnutella08(scale=prof.graph_scale / 2, seed=prof.seed)
    widx_wl = prof.widx_workload("TPC-H-22")
    widx_cfg = prof.xcache_config("widx")

    gp_cycles = []
    widx_cycles = []
    for active, exe in _SWEEP:
        # The event pipeline's insert bandwidth scales with #Exe (the
        # merge adders live in the executor stage).
        gp_cfg = replace(graphpulse_config(graph.num_vertices),
                         num_active=active, num_exe=exe,
                         hit_ports=max(1, exe // 2))
        gp = GraphPulseXCacheModel(graph, config=gp_cfg,
                                   num_pes=2 * prof.graph_pes).run()
        gp_cycles.append(gp.cycles)

        wx_cfg = replace(widx_cfg, num_active=active, num_exe=exe)
        wx = WidxXCacheModel(widx_wl, config=wx_cfg).run()
        widx_cycles.append(wx.cycles)

    for (active, exe), gp_c, wx_c in zip(_SWEEP, gp_cycles, widx_cycles):
        report.rows.append([
            active, exe,
            round(gp_c / gp_cycles[0], 3),
            round(wx_c / widx_cycles[0], 3),
        ])

    gp_gain = gp_cycles[0] / min(gp_cycles)
    widx_gain = widx_cycles[0] / min(widx_cycles)
    report.expect_range(
        "GraphPulse gain from parallelism",
        "up to ~2x runtime reduction",
        gp_gain, 1.2, 4.0,
    )
    report.expect(
        "Widx barely improves (DRAM bound)",
        "at most ~10% speedup",
        widx_gain,
        widx_gain <= 1.35,
    )
    report.expect(
        "GraphPulse benefits more than Widx",
        "access pattern decides whether parallelism helps",
        gp_gain / max(widx_gain, 1e-9),
        gp_gain > widx_gain,
    )
    return report
