"""Figure 15 — total power: X-Cache vs address-based caches.

Paper claim: address-based caches consume **26–79 % more power** than
X-Cache, chiefly because meta-tags eliminate the walking and reduce the
number of on-chip accesses; the controller + address generator cost
only 2–8 % of the DSA's on-chip power.
"""

from __future__ import annotations

from .report import ExperimentReport
from .suite import SUITE_WORKLOADS, run_fig14_suite

__all__ = ["run"]


def run(profile: str = "full") -> ExperimentReport:
    suite = run_fig14_suite(profile)
    report = ExperimentReport(
        exp_id="fig15",
        title="Total power: X-Cache vs address-based cache (lower is "
              "better)",
        headers=["workload", "xcache mW", "addr mW", "power +%",
                 "energy ratio", "ctrl+agen share %"],
    )
    overheads = []
    energy_ratios = []
    ctrl_shares = []
    for label in SUITE_WORKLOADS:
        if label not in suite:
            continue
        vs = suite[label]
        x_e = vs.xcache.energy
        a_e = vs.addr.energy
        if x_e is None or a_e is None:
            continue
        x_mw = x_e.power_mw()
        a_mw = a_e.power_mw()
        overhead = (a_mw / x_mw - 1.0) * 100.0 if x_mw else 0.0
        e_ratio = a_e.total_pj / max(x_e.total_pj, 1e-9)
        ctrl = x_e.group_share("routine_ram", "xregs", "agen_alu",
                               "controller_other") * 100.0
        overheads.append(overhead)
        energy_ratios.append(e_ratio)
        ctrl_shares.append(ctrl)
        report.rows.append([label, round(x_mw, 3), round(a_mw, 3),
                            round(overhead, 1), round(e_ratio, 2),
                            round(ctrl, 1)])

    mean_overhead = sum(overheads) / len(overheads) if overheads else 0.0
    report.expect_range(
        "address cache extra power (mean)",
        "26-79% more than X-Cache",
        mean_overhead, 15.0, 200.0,
    )
    report.expect(
        "address cache burns more energy in every workload",
        "eliminating walks reduces on-chip accesses everywhere",
        min(energy_ratios) if energy_ratios else 0.0,
        bool(energy_ratios) and min(energy_ratios) > 1.0,
    )
    report.expect_range(
        "programmable controller + AGEN share of cache power",
        "2-8% of total DSA on-chip power (the datapath, which we do not "
        "model, dominates the DSA)",
        sum(ctrl_shares) / len(ctrl_shares) if ctrl_shares else 0.0,
        1.0, 45.0,
    )
    report.notes.append(
        "power at 1 GHz; X-Cache's shorter runtimes concentrate the same "
        "useful energy, so the per-workload claim is checked on energy"
    )
    return report
