"""The Figure-14 run suite: 3 variants × every DSA/workload.

Figures 14, 15, and 16 all consume the same runs (runtime, traffic, and
energy of X-Cache vs the hardwired baseline vs the address-tagged
comparator), so the suite executes once per profile and is memoized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..dsa import (
    DasxAddressModel,
    DasxBaselineModel,
    DasxXCacheModel,
    GammaAddressModel,
    GammaXCacheModel,
    GraphPulseAddressModel,
    GraphPulseXCacheModel,
    RunResult,
    SpArchAddressModel,
    SpArchXCacheModel,
    WidxAddressModel,
    WidxBaselineModel,
    WidxXCacheModel,
)
from ..workloads.graphgen import p2p_gnutella08
from ..workloads.matrices import dense_spgemm_input
from .profiles import Profile, get_profile

__all__ = ["VariantSet", "run_fig14_suite", "SUITE_WORKLOADS", "clear_cache"]

# workload labels, in the order Figure 14's x-axis lists them
SUITE_WORKLOADS: Tuple[str, ...] = (
    "TPC-H-19", "TPC-H-20", "TPC-H-22",   # Widx
    "dasx",
    "graphpulse",
    "sparch",
    "gamma",
)


@dataclass
class VariantSet:
    """The three Figure-14 bars for one workload."""

    label: str
    xcache: RunResult
    baseline: RunResult
    addr: RunResult

    @property
    def speedup_vs_baseline(self) -> float:
        return self.baseline.cycles / self.xcache.cycles

    @property
    def speedup_vs_addr(self) -> float:
        return self.addr.cycles / self.xcache.cycles

    @property
    def dram_ratio(self) -> float:
        """Address-cache memory accesses relative to X-Cache."""
        return self.addr.dram_accesses / max(1, self.xcache.dram_accesses)

    @property
    def all_checked(self) -> bool:
        return (self.xcache.checks_passed and self.baseline.checks_passed
                and self.addr.checks_passed)


_CACHE: Dict[Tuple[str, Tuple[str, ...]], Dict[str, VariantSet]] = {}


def clear_cache() -> None:
    """Forget memoized suite runs (tests that tweak profiles use this)."""
    _CACHE.clear()


def _run_widx(label: str, profile: Profile) -> VariantSet:
    workload = profile.widx_workload(label)
    cfg = profile.xcache_config("widx")
    x = WidxXCacheModel(workload, config=cfg).run()
    base = WidxBaselineModel(workload, num_walkers=8,
                             cache_config=None).run()
    addr = WidxAddressModel(workload, xcache_config=cfg).run()
    return VariantSet(label, x, base, addr)


def _run_dasx(profile: Profile) -> VariantSet:
    workload = profile.dasx_workload()
    cfg = profile.xcache_config("dasx")
    x = DasxXCacheModel(workload, config=cfg).run()
    base = DasxBaselineModel(workload).run()
    addr = DasxAddressModel(workload, xcache_config=cfg).run()
    return VariantSet("dasx", x, base, addr)


def _run_graphpulse(profile: Profile) -> VariantSet:
    graph = p2p_gnutella08(scale=profile.graph_scale, seed=profile.seed)
    x = GraphPulseXCacheModel(graph, num_pes=profile.graph_pes).run()
    base = GraphPulseXCacheModel(graph, num_pes=profile.graph_pes,
                                 ideal=True).run()
    addr = GraphPulseAddressModel(graph, num_pes=profile.graph_pes).run()
    return VariantSet("graphpulse", x, base, addr)


def _run_spgemm(label: str, profile: Profile) -> VariantSet:
    a, b = dense_spgemm_input(n=profile.spgemm_n,
                              nnz_per_row=profile.spgemm_nnz_per_row,
                              seed=profile.seed)
    cfg = profile.xcache_config(label)
    if label == "sparch":
        x = SpArchXCacheModel(a, b, config=cfg).run()
        base = SpArchXCacheModel(a, b, config=cfg, ideal=True).run()
        addr = SpArchAddressModel(a, b, xcache_config=cfg).run()
    else:
        x = GammaXCacheModel(a, b, config=cfg).run()
        base = GammaXCacheModel(a, b, config=cfg, ideal=True).run()
        addr = GammaAddressModel(a, b, xcache_config=cfg).run()
    return VariantSet(label, x, base, addr)


def run_fig14_suite(profile: str = "full",
                    workloads: Optional[Tuple[str, ...]] = None
                    ) -> Dict[str, VariantSet]:
    """Run (or fetch memoized) the full comparison suite."""
    selected = workloads if workloads is not None else SUITE_WORKLOADS
    key = (profile, tuple(selected))
    if key in _CACHE:
        return _CACHE[key]
    prof = get_profile(profile)
    out: Dict[str, VariantSet] = {}
    for label in selected:
        if label.startswith("TPC-H"):
            out[label] = _run_widx(label, prof)
        elif label == "dasx":
            out[label] = _run_dasx(prof)
        elif label == "graphpulse":
            out[label] = _run_graphpulse(prof)
        elif label in ("sparch", "gamma"):
            out[label] = _run_spgemm(label, prof)
        else:
            raise KeyError(f"unknown suite workload {label!r}")
    _CACHE[key] = out
    return out
