"""The Figure-14 run suite: 3 variants × every DSA/workload.

Figures 14, 15, and 16 all consume the same runs (runtime, traffic, and
energy of X-Cache vs the hardwired baseline vs the address-tagged
comparator), so the suite executes once per profile and is memoized.

Two memoization layers stack:

* in-process — a plain dict, as before;
* on disk — when the ``REPRO_SUITE_CACHE`` environment variable names a
  directory, finished suites are pickled there and reloaded on the next
  miss. The parallel harness (``python -m repro.harness --parallel N``)
  points every worker at one shared directory so the suite simulates
  once instead of once per fig-14/15/16 worker.

Disk entries are **content-addressed** the same way the service result
store is (:mod:`repro.svc.store`): the filename digest is the canonical
JSON digest of (profile, workloads, code version) — not ``repr()`` of a
Python tuple — so a cache entry can never be served to a different code
version, and any process that can compute the canonical key agrees on
the path. Each pickle carries its key + format; a wrapper mismatch (an
entry from an older repo revision or layout) is *invalidated* — treated
as a miss and overwritten — never an error.

Suites driven from a warm snapshot carry **snapshot provenance**
(snapshot digest + fork overrides) as part of the identity key, both
in-process and on disk — a forked run can never alias a straight run's
cached result. Straight runs keep their pre-provenance keys, so a
cache directory survives this extension unchanged.
"""

from __future__ import annotations

import os
import pathlib
import pickle
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

SUITE_CACHE_ENV = "REPRO_SUITE_CACHE"

from ..dsa import (
    DasxAddressModel,
    DasxBaselineModel,
    DasxXCacheModel,
    GammaAddressModel,
    GammaXCacheModel,
    GraphPulseAddressModel,
    GraphPulseXCacheModel,
    RunResult,
    SpArchAddressModel,
    SpArchXCacheModel,
    WidxAddressModel,
    WidxBaselineModel,
    WidxXCacheModel,
)
from ..workloads.graphgen import p2p_gnutella08
from ..workloads.matrices import dense_spgemm_input
from .profiles import Profile, get_profile

__all__ = ["VariantSet", "run_fig14_suite", "SUITE_WORKLOADS", "clear_cache",
           "SUITE_CACHE_ENV"]

# workload labels, in the order Figure 14's x-axis lists them
SUITE_WORKLOADS: Tuple[str, ...] = (
    "TPC-H-19", "TPC-H-20", "TPC-H-22",   # Widx
    "dasx",
    "graphpulse",
    "sparch",
    "gamma",
)


@dataclass
class VariantSet:
    """The three Figure-14 bars for one workload."""

    label: str
    xcache: RunResult
    baseline: RunResult
    addr: RunResult

    @property
    def speedup_vs_baseline(self) -> float:
        return self.baseline.cycles / self.xcache.cycles

    @property
    def speedup_vs_addr(self) -> float:
        return self.addr.cycles / self.xcache.cycles

    @property
    def dram_ratio(self) -> float:
        """Address-cache memory accesses relative to X-Cache."""
        return self.addr.dram_accesses / max(1, self.xcache.dram_accesses)

    @property
    def all_checked(self) -> bool:
        return (self.xcache.checks_passed and self.baseline.checks_passed
                and self.addr.checks_passed)


_CACHE: Dict[tuple, Dict[str, VariantSet]] = {}


def clear_cache() -> None:
    """Forget in-process memoized suite runs (disk entries survive)."""
    _CACHE.clear()


#: bumped when the pickled layout changes; older entries invalidate
SUITE_CACHE_FORMAT = 2


def _memo_key(profile: str, workloads: Tuple[str, ...],
              provenance: Optional[dict] = None) -> tuple:
    """The memo key for one suite run.

    Without provenance this is the historical ``(profile, workloads)``
    pair — existing cache directories stay valid. A snapshot-driven
    suite appends a normalized ``(("fork_overrides", ...), ("snapshot",
    ...))`` tuple so a forked run gets its own slot everywhere.
    """
    if not provenance:
        return (profile, tuple(workloads))
    items = tuple(sorted((str(k), str(v))
                         for k, v in provenance.items()))
    return (profile, tuple(workloads), items)


def _canonical_key(key: tuple) -> dict:
    """The content address of one suite run: config + workloads + code
    (+ snapshot provenance when the suite was forked from a warmup)."""
    from ..svc.store import code_version

    out = {
        "kind": "fig14-suite",
        "profile": key[0],
        "workloads": list(key[1]),
        "code": code_version(),
        "format": SUITE_CACHE_FORMAT,
    }
    if len(key) > 2 and key[2]:
        out["provenance"] = [list(item) for item in key[2]]
    return out


def _disk_cache_path(key: tuple) -> Optional[pathlib.Path]:
    root = os.environ.get(SUITE_CACHE_ENV)
    if not root:
        return None
    from ..svc.store import digest_of

    digest = digest_of(_canonical_key(key))[:16]
    return pathlib.Path(root) / f"suite_{key[0]}_{digest}.pkl"


def _disk_load(path: pathlib.Path,
               key: tuple) -> Optional[Dict[str, VariantSet]]:
    try:
        with path.open("rb") as fh:
            wrapped = pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
        return None  # absent or torn write: fall through to a fresh run
    # compat shim: entries written by older revisions (bare dicts, or a
    # wrapper with a stale format/key) invalidate quietly — a fresh run
    # overwrites them — instead of crashing or serving stale results
    if (not isinstance(wrapped, dict)
            or wrapped.get("format") != SUITE_CACHE_FORMAT
            or wrapped.get("key") != _canonical_key(key)):
        return None
    return wrapped.get("suite")


def _disk_store(path: pathlib.Path, key: tuple,
                suite: Dict[str, VariantSet]) -> None:
    wrapped = {"format": SUITE_CACHE_FORMAT, "key": _canonical_key(key),
               "suite": suite}
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with tmp.open("wb") as fh:
            pickle.dump(wrapped, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)  # atomic vs concurrent workers
    except OSError:
        pass  # cache is best-effort; the run itself already succeeded


def _run_widx(label: str, profile: Profile) -> VariantSet:
    workload = profile.widx_workload(label)
    cfg = profile.xcache_config("widx")
    x = WidxXCacheModel(workload, config=cfg).run()
    base = WidxBaselineModel(workload, num_walkers=8,
                             cache_config=None).run()
    addr = WidxAddressModel(workload, xcache_config=cfg).run()
    return VariantSet(label, x, base, addr)


def _run_dasx(profile: Profile) -> VariantSet:
    workload = profile.dasx_workload()
    cfg = profile.xcache_config("dasx")
    x = DasxXCacheModel(workload, config=cfg).run()
    base = DasxBaselineModel(workload).run()
    addr = DasxAddressModel(workload, xcache_config=cfg).run()
    return VariantSet("dasx", x, base, addr)


def _run_graphpulse(profile: Profile) -> VariantSet:
    graph = p2p_gnutella08(scale=profile.graph_scale, seed=profile.seed)
    x = GraphPulseXCacheModel(graph, num_pes=profile.graph_pes).run()
    base = GraphPulseXCacheModel(graph, num_pes=profile.graph_pes,
                                 ideal=True).run()
    addr = GraphPulseAddressModel(graph, num_pes=profile.graph_pes).run()
    return VariantSet("graphpulse", x, base, addr)


def _run_spgemm(label: str, profile: Profile) -> VariantSet:
    a, b = dense_spgemm_input(n=profile.spgemm_n,
                              nnz_per_row=profile.spgemm_nnz_per_row,
                              seed=profile.seed)
    cfg = profile.xcache_config(label)
    if label == "sparch":
        x = SpArchXCacheModel(a, b, config=cfg).run()
        base = SpArchXCacheModel(a, b, config=cfg, ideal=True).run()
        addr = SpArchAddressModel(a, b, xcache_config=cfg).run()
    else:
        x = GammaXCacheModel(a, b, config=cfg).run()
        base = GammaXCacheModel(a, b, config=cfg, ideal=True).run()
        addr = GammaAddressModel(a, b, xcache_config=cfg).run()
    return VariantSet(label, x, base, addr)


def run_fig14_suite(profile: str = "full",
                    workloads: Optional[Tuple[str, ...]] = None,
                    provenance: Optional[dict] = None
                    ) -> Dict[str, VariantSet]:
    """Run (or fetch memoized) the full comparison suite.

    ``provenance`` (e.g. ``{"snapshot": <payload sha256>,
    "fork_overrides": {...}}``) marks a suite whose runs were warmed
    from a snapshot: it becomes part of the memo identity in both
    layers, so forked results never alias straight ones.
    """
    selected = workloads if workloads is not None else SUITE_WORKLOADS
    key = _memo_key(profile, tuple(selected), provenance)
    if key in _CACHE:
        return _CACHE[key]
    disk_path = _disk_cache_path(key)
    if disk_path is not None and disk_path.exists():
        cached = _disk_load(disk_path, key)
        if cached is not None:
            _CACHE[key] = cached
            return cached
    prof = get_profile(profile)
    out: Dict[str, VariantSet] = {}
    for label in selected:
        if label.startswith("TPC-H"):
            out[label] = _run_widx(label, prof)
        elif label == "dasx":
            out[label] = _run_dasx(prof)
        elif label == "graphpulse":
            out[label] = _run_graphpulse(prof)
        elif label in ("sparch", "gamma"):
            out[label] = _run_spgemm(label, prof)
        else:
            raise KeyError(f"unknown suite workload {label!r}")
    _CACHE[key] = out
    if disk_path is not None:
        _disk_store(disk_path, key, out)
    return out
