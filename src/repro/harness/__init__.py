"""Experiment harness: one driver per paper table/figure.

Usage::

    from repro.harness import run_experiment
    print(run_experiment("fig14").render())

or from the command line::

    python -m repro.harness fig14 [quick|full]
"""

from __future__ import annotations

from typing import Callable, Dict

from . import (
    fig04,
    fig07,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    fig19,
    fig20,
    tab01,
    tab02,
    tab03,
    tab04,
)
from ..core.messages import reset_ids
from .profiles import PROFILES, Profile, get_profile
from .report import ExperimentReport, Expectation, format_table
from .suite import SUITE_WORKLOADS, VariantSet, clear_cache, run_fig14_suite
from .export import report_to_csv, report_to_dict, report_to_json, write_run

EXPERIMENTS: Dict[str, Callable[[str], ExperimentReport]] = {
    "fig04": fig04.run,
    "fig07": fig07.run,
    "fig14": fig14.run,
    "fig15": fig15.run,
    "fig16": fig16.run,
    "fig17": fig17.run,
    "fig18": fig18.run,
    "fig19": fig19.run,
    "fig20": fig20.run,
    "tab01": tab01.run,
    "tab02": tab02.run,
    "tab03": tab03.run,
    "tab04": tab04.run,
}


def run_experiment(exp_id: str, profile: str = "full") -> ExperimentReport:
    """Run one paper experiment by id ('fig14', 'tab03', ...)."""
    if exp_id not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {exp_id!r}; "
                       f"have {sorted(EXPERIMENTS)}")
    # Message uids (= request/walk correlation ids) restart per
    # experiment so serial and --parallel runs number requests
    # identically; see core.messages.reset_ids.
    reset_ids()
    return EXPERIMENTS[exp_id](profile)


__all__ = [
    "EXPERIMENTS",
    "run_experiment",
    "ExperimentReport",
    "Expectation",
    "format_table",
    "Profile",
    "PROFILES",
    "get_profile",
    "run_fig14_suite",
    "SUITE_WORKLOADS",
    "VariantSet",
    "clear_cache",
    "report_to_dict",
    "report_to_json",
    "report_to_csv",
    "write_run",
]
