"""Table 3 — X-Cache design parameters per DSA.

Rendered from the live Table-3 presets and sanity-checked against the
published values.
"""

from __future__ import annotations

from ..core.config import TABLE3, table3_config
from .report import ExperimentReport

__all__ = ["run"]

_PAPER = {
    "widx": (16, 2, 8, 1024, 4),
    "dasx": (16, 4, 8, 1024, 4),
    "sparch": (32, 4, 8, 512, 4),
    "gamma": (32, 4, 8, 512, 4),
    "graphpulse": (16, 4, 1, 131072, 8),
}

_LABEL = {
    "widx": "Widx",
    "dasx": "DASX(Hash)",
    "sparch": "SpArch",
    "gamma": "Gamma",
    "graphpulse": "GraphPulse",
}


def run(profile: str = "full") -> ExperimentReport:
    report = ExperimentReport(
        exp_id="tab03",
        title="X-Cache design parameters per DSA (Table 3)",
        headers=["DSA", "#Active", "#Exe", "#Way", "#Set", "#Word",
                 "data KB"],
    )
    all_match = True
    for key in ("widx", "dasx", "sparch", "gamma", "graphpulse"):
        config = table3_config(key)
        row = (config.num_active, config.num_exe, config.ways,
               config.sets, config.wlen)
        if row != _PAPER[key]:
            all_match = False
        report.rows.append([
            _LABEL[key], *row, round(config.data_bytes / 1024, 1),
        ])
    report.expect(
        "presets match the published Table 3",
        "exact",
        1.0 if all_match else 0.0, all_match,
    )
    report.expect(
        "GraphPulse is direct-mapped",
        "#Way = 1 (preloaded once, arbitrary access order)",
        float(TABLE3["graphpulse"][2]),
        TABLE3["graphpulse"][2] == 1,
    )
    return report
