"""Machine-readable experiment exports.

``python -m repro.harness`` prints human tables; downstream tooling
(plotting scripts, CI dashboards, regression tracking) wants structured
data. This module serializes :class:`ExperimentReport` to JSON and CSV,
and can dump a whole run directory in one call::

    from repro.harness import run_experiment
    from repro.harness.export import report_to_json, write_run

    write_run("results/", ["tab03", "fig19"], profile="quick")
"""

from __future__ import annotations

import csv
import io
import json
import pathlib
from typing import Dict, Iterable, List, Optional

from .report import ExperimentReport

__all__ = ["report_to_dict", "report_to_json", "report_to_csv", "write_run"]


def report_to_dict(report: ExperimentReport) -> Dict[str, object]:
    """Lossless dict form of a report (JSON-serializable)."""
    return {
        "exp_id": report.exp_id,
        "title": report.title,
        "headers": list(report.headers),
        "rows": [list(row) for row in report.rows],
        "expectations": [
            {
                "claim": e.claim,
                "paper": e.paper,
                "measured": e.measured,
                "ok": e.ok,
                "detail": e.detail,
            }
            for e in report.expectations
        ],
        "notes": list(report.notes),
        "all_ok": report.all_ok,
    }


def report_to_json(report: ExperimentReport, indent: int = 2) -> str:
    return json.dumps(report_to_dict(report), indent=indent, default=str)


def report_to_csv(report: ExperimentReport) -> str:
    """The report's data rows as CSV (headers first)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(report.headers)
    for row in report.rows:
        writer.writerow(row)
    return buf.getvalue()


def write_run(directory, experiments: Optional[Iterable[str]] = None,
              profile: str = "quick") -> List[pathlib.Path]:
    """Run experiments and write <exp>.json + <exp>.csv files.

    Returns the paths written. Also writes ``summary.json`` with the
    per-experiment pass/fail roll-up.
    """
    from . import EXPERIMENTS, run_experiment

    out_dir = pathlib.Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    targets = list(experiments) if experiments is not None \
        else sorted(EXPERIMENTS)
    written: List[pathlib.Path] = []
    summary: Dict[str, object] = {"profile": profile, "experiments": {}}
    for exp_id in targets:
        report = run_experiment(exp_id, profile)
        json_path = out_dir / f"{exp_id}.json"
        json_path.write_text(report_to_json(report))
        csv_path = out_dir / f"{exp_id}.csv"
        csv_path.write_text(report_to_csv(report))
        written.extend([json_path, csv_path])
        summary["experiments"][exp_id] = {
            "all_ok": report.all_ok,
            "checks": len(report.expectations),
        }
    summary_path = out_dir / "summary.json"
    summary_path.write_text(json.dumps(summary, indent=2))
    written.append(summary_path)
    return written
