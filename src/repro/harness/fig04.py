"""Figure 4 — load-to-use latency: address tags vs meta-tags.

The paper plots the load-to-use latency of a domain-specific meta-tag
against an address-based tag and finds meta-tags "notably improve"
it — on a hit X-Cache answers in 3 cycles, while an address-tagged
design must hash (up to ~60 cycles) and walk even when the data is
resident, giving ~10× worse hit-path latency for Widx.
"""

from __future__ import annotations

from ..dsa.widx import WidxAddressModel, WidxXCacheModel
from .profiles import get_profile
from .report import ExperimentReport

__all__ = ["run"]


def run(profile: str = "full") -> ExperimentReport:
    prof = get_profile(profile)
    # TPC-H-19: string keys, the paper's worst-case 60-cycle hash.
    workload = prof.widx_workload("TPC-H-19")
    cfg = prof.xcache_config("widx")

    xmodel = WidxXCacheModel(workload, config=cfg)
    xres = xmodel.run()
    hist_x = xmodel.system.controller.stats.histogram("load_to_use")

    amodel = WidxAddressModel(workload, xcache_config=cfg)
    ares = amodel.run()
    hist_a = amodel.latency_hist

    x_hit_latency = float(cfg.hit_latency)
    # The address design's best case: hash + root hit + one node hit.
    a_hit_latency = float(workload.hash_cycles + 2 * 3)

    report = ExperimentReport(
        exp_id="fig04",
        title="Load-to-use latency: address tags vs meta-tags (Widx, "
              "TPC-H-19)",
        headers=["tag type", "hit-path", "mean", "p50", "p90", "max"],
    )
    report.rows.append([
        "meta-tag", x_hit_latency, hist_x.mean,
        hist_x.percentile(0.5), hist_x.percentile(0.9), hist_x.max_seen,
    ])
    report.rows.append([
        "address-tag", a_hit_latency, hist_a.mean,
        hist_a.percentile(0.5), hist_a.percentile(0.9), hist_a.max_seen,
    ])

    hit_ratio = a_hit_latency / x_hit_latency
    report.expect_range(
        "hit-path latency ratio (addr/meta)",
        "~10x for Widx (hash + walk eliminated)",
        hit_ratio, 3.0, 50.0,
    )
    p50_x = hist_x.percentile(0.5)
    p50_a = hist_a.percentile(0.5)
    report.expect(
        "median load-to-use: meta-tag notably lower",
        "meta-tags notably improve load-to-use",
        p50_a / max(p50_x, 1),
        p50_a > 2 * p50_x,
        detail=f"addr p50={p50_a}cyc vs meta p50={p50_x}cyc",
    )
    report.expect(
        "mean load-to-use: meta-tag not worse",
        "hits short-circuit hash+walk; misses walk like addr",
        hist_a.mean / max(hist_x.mean, 1e-9),
        hist_a.mean >= 0.8 * hist_x.mean,
        detail=f"addr={hist_a.mean:.1f}cyc vs meta={hist_x.mean:.1f}cyc",
    )
    report.notes.append(
        f"xcache hit rate {xres.hit_rate:.2f}; runs validated: "
        f"{xres.checks_passed and ares.checks_passed}"
    )
    return report
