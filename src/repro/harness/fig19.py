"""Figure 19 — FPGA synthesis: register and logic utilization.

The paper synthesizes the controller (#Exe=4, #Active=8) on an Altera
Cyclone IV GX: 6985 logic elements (~6 % of the part), 5766
combinational functions, 3457 registers. X-Reg dominates the register
budget; the Action-Executor units dominate logic.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.area import FPGA_REFERENCE, SynthesisModel
from ..core.config import XCacheConfig
from ..dsa.walkers import build_hash_walker
from .report import ExperimentReport

__all__ = ["run"]


def run(profile: str = "full") -> ExperimentReport:
    config = XCacheConfig(num_active=8, num_exe=4, xregs_per_walker=8)
    program = build_hash_walker(1024, 60)
    model = SynthesisModel()
    area = model.synthesize(config, program)

    report = ExperimentReport(
        exp_id="fig19",
        title="FPGA synthesis breakdown (#Exe=4, #Active=8, Cyclone IV GX)",
        headers=["component", "registers", "reg %", "logic", "logic %"],
    )
    for comp in sorted(area.registers, key=lambda c: -area.registers[c]):
        report.rows.append([
            comp,
            int(area.registers[comp]),
            round(100 * area.register_share(comp), 1),
            int(area.logic[comp]),
            round(100 * area.logic_share(comp), 1),
        ])
    report.rows.append(["TOTAL", int(area.total_registers), 100.0,
                        int(area.total_logic), 100.0])

    report.expect(
        "X-Reg uses the most registers",
        "X-Reg largest register consumer (31%)",
        area.register_share("xreg"),
        area.dominant_register_component() == "xreg",
    )
    report.expect(
        "Action-Executor uses the most logic",
        "Action-Exec largest logic consumer (45%)",
        area.logic_share("action_exec"),
        area.dominant_logic_component() == "action_exec",
    )
    report.expect_range(
        "FPGA utilization",
        "<7% of a Cyclone IV EP4CGX150",
        100 * area.fpga_utilization, 0.5, 7.0,
    )
    report.expect_range(
        "total registers",
        f"{FPGA_REFERENCE['total_registers']} at reference config",
        area.total_registers,
        0.5 * FPGA_REFERENCE["total_registers"],
        1.5 * FPGA_REFERENCE["total_registers"],
    )
    report.notes.append(
        "analytical model calibrated to the published breakdown; scaling "
        "knobs: #Active (X-Reg/Act.Meta), #Exe (Action-Exec), routine "
        "table entries (Rtn.Table)"
    )
    return report
