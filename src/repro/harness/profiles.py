"""Workload/geometry profiles for the experiment drivers.

Three profiles ship:

* ``ci``    — sub-second runs for determinism tests (the golden-trace
  suite runs every experiment under two kernels). Too small for the
  paper's quantitative claims; use it when only cycle-level behaviour
  matters.
* ``quick`` — seconds-scale runs for CI and tests. Working sets are
  shrunk with cache geometry shrunk proportionally, so the qualitative
  relationships survive.
* ``full``  — the benchmark-harness profile: scaled-down analogues of
  the paper's setup (Table 3 geometry at 1/4 scale, working sets sized
  several times larger than the caches, like the paper's 100 GB TPC-H
  dataset vs a 256 KB cache).

Everything is deterministic by seed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from ..core.config import XCacheConfig, table3_config
from ..dsa.widx import WidxWorkload
from ..workloads.tpch import TPCH_QUERIES, make_widx_workload

__all__ = ["Profile", "PROFILES", "get_profile", "derive_profile",
           "ensure_profile"]


@dataclass(frozen=True)
class Profile:
    """Sizing knobs shared by the figure drivers."""

    name: str
    cache_scale: float          # Table-3 geometry scale factor
    widx_keys: int
    widx_probes: int
    widx_skew: float
    dasx_keys: int
    dasx_probes: int
    graph_scale: float          # of p2p-Gnutella08 for GraphPulse
    spgemm_n: int               # SpGEMM matrix dimension (A, B are n x n)
    spgemm_nnz_per_row: int     # SpGEMM density (paper regime: multi-block rows)
    spgemm_cache_scale: float   # SpArch/Gamma geometry scale (data RAM must
                                # cover the preload window of multi-block rows)
    graph_pes: int
    seed: int = 7
    # routine-compilation mode forced on every config this profile
    # produces; None defers to the process default (REPRO_COMPILE_MODE
    # or "on") — how A/B drivers pin interpreted vs compiled runs
    compile_mode: Optional[str] = None
    # trace-compilation hotness threshold forced on every config; None
    # defers to the process default (REPRO_TRACE_THRESHOLD or 16).
    # Pin 0 to run the block compiler alone, or 1 to trace eagerly.
    trace_threshold: Optional[int] = None
    # shortest fused block forced on every config; None defers to the
    # process default (REPRO_MIN_FUSE_LEN or 2)
    min_fuse_len: Optional[int] = None

    def xcache_config(self, dsa: str) -> XCacheConfig:
        if dsa in ("sparch", "gamma"):
            config = table3_config(dsa, scale=self.spgemm_cache_scale)
        else:
            config = table3_config(dsa, scale=self.cache_scale)
        if self.compile_mode is not None:
            config = replace(config, compile_mode=self.compile_mode)
        if self.trace_threshold is not None:
            config = replace(config, trace_threshold=self.trace_threshold)
        if self.min_fuse_len is not None:
            config = replace(config, min_fuse_len=self.min_fuse_len)
        return config

    def widx_workload(self, query: str) -> WidxWorkload:
        if query not in TPCH_QUERIES:
            raise KeyError(f"unknown query {query!r}")
        hash_cycles, skew, load_factor = TPCH_QUERIES[query]
        buckets = 1
        while buckets < self.widx_keys / load_factor:
            buckets *= 2
        return make_widx_workload(
            num_keys=self.widx_keys,
            num_probes=self.widx_probes,
            num_buckets=buckets,
            skew=skew + (self.widx_skew - 1.3),  # profile-level skew shift

            hash_cycles=hash_cycles,
            seed=self.seed,
            name=query,
        )

    def dasx_workload(self) -> WidxWorkload:
        return make_widx_workload(
            num_keys=self.dasx_keys,
            num_probes=self.dasx_probes,
            num_buckets=self.dasx_keys // 2,
            skew=1.3,
            hash_cycles=30,     # DASX couples hashing into the walk
            seed=self.seed + 1,
            name="dasx",
        )


PROFILES: Dict[str, Profile] = {
    "ci": Profile(
        name="ci",
        cache_scale=0.0625,
        widx_keys=1024,
        widx_probes=2048,
        widx_skew=1.4,
        dasx_keys=1024,
        dasx_probes=1024,
        graph_scale=0.04,
        spgemm_n=256,
        spgemm_nnz_per_row=8,
        spgemm_cache_scale=0.25,
        graph_pes=4,
    ),
    "quick": Profile(
        name="quick",
        cache_scale=0.0625,     # 512-entry Widx cache
        widx_keys=4096,
        widx_probes=8192,
        widx_skew=1.4,
        dasx_keys=4096,
        dasx_probes=4096,
        graph_scale=0.08,
        spgemm_n=512,
        spgemm_nnz_per_row=12,
        spgemm_cache_scale=0.25,
        graph_pes=8,
    ),
    "full": Profile(
        name="full",
        cache_scale=0.25,       # 2048-entry Widx cache, 64 KB data
        widx_keys=16384,
        widx_probes=24576,
        widx_skew=1.35,
        dasx_keys=16384,
        dasx_probes=16384,
        graph_scale=0.3,
        spgemm_n=2048,
        spgemm_nnz_per_row=12,
        spgemm_cache_scale=0.5,
        graph_pes=8,
    ),
}


def get_profile(name: str) -> Profile:
    if name not in PROFILES:
        raise KeyError(f"unknown profile {name!r}; have {sorted(PROFILES)}")
    return PROFILES[name]


def derive_profile(base: str, overrides: Dict[str, object],
                   name: Optional[str] = None) -> Profile:
    """A named profile with some fields replaced — the service sweep's
    parameter-grid points.

    The derived name is deterministic in (base, overrides), so two
    workers materializing the same sweep point agree on it, and so the
    fig-14 suite cache (keyed by profile name + code version) stays
    correct across processes.
    """
    base_profile = get_profile(base)
    unknown = sorted(set(overrides) - set(Profile.__dataclass_fields__))
    if unknown:
        raise KeyError(f"unknown profile field(s) {unknown}; "
                       f"have {sorted(Profile.__dataclass_fields__)}")
    if name is None:
        from ..svc.store import digest_of

        name = f"{base}+{digest_of(sorted([k, v] for k, v in overrides.items()))[:8]}"
    return replace(base_profile, name=name, **overrides)


def ensure_profile(profile: Profile) -> str:
    """Register ``profile`` under its name (idempotent); returns the
    name, ready to hand to ``run_experiment``/``run_fig14_suite``."""
    existing = PROFILES.get(profile.name)
    if existing is not None and existing != profile:
        raise ValueError(f"profile name collision: {profile.name!r} is "
                         f"already registered with different values")
    PROFILES[profile.name] = profile
    return profile.name
