"""Figure 20 — ASIC layout: controller area at 45 nm.

Paper: the controller (no RAMs) at #Exe=4, #Active=8 occupies 0.11 mm²
and 65 K cells under 45 nm; a 256 KB RAM costs ~0.8 mm² (so the data
array, not the programmable controller, dominates silicon).
"""

from __future__ import annotations

from dataclasses import replace

from ..core.area import ASIC_REFERENCE, SynthesisModel
from ..core.config import XCacheConfig
from ..dsa.walkers import build_hash_walker
from .report import ExperimentReport

__all__ = ["run"]


def run(profile: str = "full") -> ExperimentReport:
    model = SynthesisModel()
    program = build_hash_walker(1024, 60)
    reference = XCacheConfig(num_active=8, num_exe=4, xregs_per_walker=8)

    report = ExperimentReport(
        exp_id="fig20",
        title="ASIC synthesis at 45nm (controller only + RAM macro)",
        headers=["config", "#Active", "#Exe", "ctrl mm^2", "cells",
                 "RAM mm^2"],
    )
    sweep = [
        ("reference", reference),
        ("small", replace(reference, num_active=4, num_exe=2)),
        ("large", replace(reference, num_active=32, num_exe=8)),
    ]
    results = {}
    for name, cfg in sweep:
        area = model.synthesize(cfg, program)
        results[name] = area
        report.rows.append([
            name, cfg.num_active, cfg.num_exe,
            round(area.asic_mm2, 3), int(area.asic_cells),
            round(area.ram_mm2, 3),
        ])

    ref_area = results["reference"]
    report.expect_range(
        "controller area at reference config",
        "0.11 mm^2 @45nm",
        ref_area.asic_mm2, 0.05, 0.2,
    )
    report.expect_range(
        "controller cells at reference config",
        "65K cells",
        ref_area.asic_cells, 30_000, 130_000,
    )
    ram_256k = 256 * 1024
    per_256k = ASIC_REFERENCE["ram_mm2_per_256kb"]
    report.expect(
        "256KB RAM macro area",
        "0.8 mm^2 (paper: 1.1 mm^2 incl. tags)",
        per_256k,
        abs(per_256k - 0.8) < 1e-9,
    )
    report.expect(
        "area scales with #Active/#Exe",
        "larger configs pay more silicon",
        results["large"].asic_mm2 / results["small"].asic_mm2,
        results["large"].asic_mm2 > results["small"].asic_mm2,
    )
    return report
