"""Figure 7 — controller occupancy: coroutines vs threads.

Occupancy = Σ #active-registers × size_bytes × lifetime_cycles.

Coroutine walkers pin only the X-registers they touch and release them
the moment the walk retires; thread-based walkers (prior work: Ax-DAE,
CoRAM-style access engines) pin a full pipeline context — architectural
registers plus pipeline latches — and allocate/free it at *coarse
granularity* (a batch/tile of walks per thread). The paper measures
~1000× higher occupancy for threads, growing with the fraction of data
resident off-chip (long-latency DRAM stalls inflate lifetimes).

We drive the same probe set through both:

* X-Cache with a fraction of keys pre-warmed on-chip (so exactly
  ``off_chip`` of the probes walk), measuring the X-register integral;
* a :class:`~repro.core.threadctrl.ThreadController` running the same
  walks in coarse batches, blocking on each DRAM step.
"""

from __future__ import annotations

import random
from typing import List

from ..core.threadctrl import ThreadController, WalkStep
from ..dsa.widx import WidxXCacheModel
from ..mem.dram import DRAMModel
from ..mem.layout import MemoryImage
from ..sim import new_simulator
from ..workloads.tpch import make_widx_workload
from .profiles import get_profile
from .report import ExperimentReport

__all__ = ["run", "measure_occupancy"]

_BATCH = 32              # walks per thread (coarse-grained allocation)
_THREAD_CONTEXT = 2048   # bytes pinned per resident thread: architectural
#                          + pipeline registers plus the per-thread tile
#                          buffer prior-work access engines double-buffer
_ONCHIP_STEP = 3         # cycles for a walk step served on-chip


def measure_occupancy(off_chip: float, num_keys: int = 1024,
                      hash_cycles: int = 10, seed: int = 11):
    """Returns (coroutine_occupancy, thread_occupancy, ratio)."""
    if not 0.0 < off_chip <= 1.0:
        raise ValueError("off_chip must be in (0, 1]")
    workload = make_widx_workload(
        num_keys=num_keys, num_probes=num_keys,
        num_buckets=num_keys, skew=0.0, hash_cycles=hash_cycles,
        miss_fraction=0.0, seed=seed,
    )
    rng = random.Random(seed)
    probes = list(dict.fromkeys(workload.probes))  # each key once
    cold = set(k for k in probes if rng.random() < off_chip)

    # --- coroutines: warm the hot keys, then run the probe trace -------
    model = WidxXCacheModel(workload, window=32)
    index = model.index
    ctrl = model.system.controller
    for key in probes:
        if key not in cold:
            rid = index.probe(key)
            if rid is not None:
                ctrl.warm((key,), rid.to_bytes(8, "little"))
    result = model.run()
    coro_occ = ctrl.xregs.occupancy_byte_cycles

    # --- threads: same walks, coarse batches, blocking DRAM steps ------
    sim = new_simulator()
    image = MemoryImage()
    dram = DRAMModel(sim, image, model.system.dram.config)
    threads = ThreadController(sim, dram, num_pipelines=4,
                               context_bytes=_THREAD_CONTEXT)
    batch: List[WalkStep] = []
    for key in probes:
        batch.append(WalkStep("compute", cycles=hash_cycles))
        _rid, walk = index.probe_with_walk(key)
        for node in walk:
            if key in cold:
                batch.append(WalkStep("dram", addr=node % (1 << 20)))
            else:
                batch.append(WalkStep("compute", cycles=_ONCHIP_STEP))
        if len(batch) >= _BATCH * 3:
            threads.submit(batch)
            batch = []
    if batch:
        threads.submit(batch)
    sim.run()
    threads.finalize()
    thread_occ = threads.occupancy_byte_cycles

    ratio = thread_occ / max(1, coro_occ)
    return coro_occ, thread_occ, ratio, result


def run(profile: str = "full") -> ExperimentReport:
    prof = get_profile(profile)
    num_keys = {"full": 2048, "quick": 512}.get(prof.name, 256)
    report = ExperimentReport(
        exp_id="fig07",
        title="Controller occupancy: coroutine vs thread walkers",
        headers=["off-chip frac", "coroutine (B*cyc)", "thread (B*cyc)",
                 "ratio (thread/coroutine)"],
    )
    ratios = []
    threads = []
    for off_chip in (0.2, 0.4, 0.6, 0.8, 1.0):
        coro, thread, ratio, _res = measure_occupancy(off_chip, num_keys)
        report.rows.append([off_chip, coro, thread, round(ratio, 1)])
        ratios.append(ratio)
        threads.append(thread)

    report.expect_range(
        "occupancy ratio at full off-chip",
        "~1000x (threads allocate/free coarsely)",
        ratios[-1], 50.0, 50_000.0,
    )
    report.expect(
        "ratio stays orders of magnitude at every point",
        "threads dominate across the sweep",
        min(ratios),
        min(ratios) >= 20.0,
    )
    report.expect(
        "thread occupancy grows with off-chip fraction",
        "long-latency transactions inflate thread occupancy",
        threads[-1] / max(threads[0], 1),
        threads[-1] > threads[0],
    )
    report.notes.append(
        "absolute ratio depends on the thread context size "
        f"({_THREAD_CONTEXT} B here) and batch granularity ({_BATCH} "
        "walks/thread); the paper's ~1000x uses its RTL register counts"
    )
    return report
