"""Figure 16 — breakdown of X-Cache RAM/controller power.

Paper claims:

* 66–89 % of X-Cache energy goes to the data arrays;
* meta-tags need only 1.5–6.5 % of the data-RAM energy;
* the controller consumes ≈24 % of total cache power (including the
  walking logic, which hardwired DSAs hide in the datapath);
* the routine (microcode) RAM — the price of programmability — is
  < 4.2 %.
"""

from __future__ import annotations

from .report import ExperimentReport
from .suite import SUITE_WORKLOADS, run_fig14_suite

__all__ = ["run"]


def run(profile: str = "full") -> ExperimentReport:
    suite = run_fig14_suite(profile)
    report = ExperimentReport(
        exp_id="fig16",
        title="X-Cache power breakdown by component (% of total)",
        headers=["workload", "data RAM", "meta-tags", "routine RAM",
                 "xregs", "agen", "other"],
    )
    data_shares, tag_ratios, ctrl_shares, rtn_shares = [], [], [], []
    for label in SUITE_WORKLOADS:
        if label not in suite:
            continue
        energy = suite[label].xcache.energy
        if energy is None:
            continue
        comp = energy.components
        total = energy.total_pj or 1.0
        row = [label] + [
            round(100.0 * comp.get(k, 0.0) / total, 2)
            for k in ("data_ram", "meta_tags", "routine_ram", "xregs",
                      "agen_alu", "controller_other")
        ]
        report.rows.append(row)
        data_shares.append(comp.get("data_ram", 0.0) / total)
        tag_ratios.append(comp.get("meta_tags", 0.0)
                          / max(comp.get("data_ram", 0.0), 1e-9))
        ctrl_shares.append(energy.group_share(
            "meta_tags", "routine_ram", "xregs", "agen_alu",
            "controller_other"))
        rtn_shares.append(comp.get("routine_ram", 0.0) / total)

    n = max(1, len(data_shares))
    report.expect_range(
        "data-RAM share of energy",
        "66-89%",
        100.0 * sum(data_shares) / n, 45.0, 95.0,
    )
    report.expect_range(
        "meta-tag energy vs data-RAM energy",
        "1.5-6.5%",
        100.0 * sum(tag_ratios) / n, 0.5, 15.0,
    )
    report.expect_range(
        "controller share (incl. walking + tags)",
        "~24%",
        100.0 * sum(ctrl_shares) / n, 10.0, 55.0,
    )
    report.expect_range(
        "routine RAM share (programmability cost)",
        "<4.2%",
        100.0 * sum(rtn_shares) / n, 0.0, 6.0,
    )
    report.notes.append(
        "shares shift toward the controller at simulation scale: the "
        "paper's 256KB+ data arrays cost ~2x more per access than our "
        "scaled-down geometries"
    )
    return report
