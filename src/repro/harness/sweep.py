"""Snapshot-fork warm-start sweeps (``harness --sweep-from-snapshot``).

A parameter sweep over *fork-safe* knobs (back-end width, latencies,
scheduling window, compile thresholds, DRAM timing — see
:data:`repro.sim.checkpoint.FORK_SAFE_FIELDS`) re-simulates the same
warmup N times under the straight harness. The snapshot-fork sweep pays
the warmup **once**: run one model to a snapshot point, save it, then
fork the snapshot into each grid point — restore, apply the overrides,
run only the post-warmup tail. Results for the *measured region* are
identical to straight runs that changed the knob at the same cycle, and
the end-to-end cost drops from ``N × (warmup + tail)`` to
``warmup + N × tail`` (benchmarked in
``benchmarks/bench_checkpoint_sweep.py``, gated ≥3x at 8 points).

Geometry-changing overrides are rejected up front with
:class:`~repro.sim.checkpoint.ForkOverrideError` — a warmed cache
cannot be reinterpreted under a different shape.

CLI::

    # warm once and write the snapshot
    python -m repro.harness --write-snapshot warm.ckpt \\
        --snapshot-dsa widx --profile quick --warm-frac 0.85

    # fork it into a grid (one line per point, deterministic order)
    python -m repro.harness --sweep-from-snapshot warm.ckpt \\
        --sweep-grid num_exe=2,4,8 --sweep-grid dram.t_cl=8,11
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "SWEEP_DSAS",
    "SweepPoint",
    "build_model",
    "straight_run",
    "write_warm_snapshot",
    "sweep_points",
    "run_snapshot_sweep",
    "render_sweep",
    "parse_grid_entries",
]

#: DSAs a snapshot sweep can drive (the paper's five Table-3 designs)
SWEEP_DSAS = ("widx", "dasx", "sparch", "gamma", "graphpulse")


def build_model(dsa: str, profile: str = "ci",
                config_overrides: Optional[Mapping[str, Any]] = None):
    """A fresh, un-started X-Cache model of ``dsa`` at ``profile``.

    ``config_overrides`` replaces :class:`~repro.core.config
    .XCacheConfig` fields (``dram.*`` keys go to the DRAM config) —
    the straight-run comparator for a forked sweep point. Message uids
    are reset first so two builds issue identical traffic.
    """
    from ..core.messages import reset_ids
    from ..mem.dram import DRAMConfig
    from .profiles import get_profile

    if dsa not in SWEEP_DSAS:
        raise KeyError(f"unknown sweep dsa {dsa!r}; have {SWEEP_DSAS}")
    prof = get_profile(profile)
    xc: Dict[str, Any] = {}
    dr: Dict[str, Any] = {}
    for key, value in (config_overrides or {}).items():
        if key.startswith("dram."):
            dr[key[len("dram."):]] = value
        else:
            xc[key] = value
    config = replace(prof.xcache_config(dsa), **xc)
    dram_config = replace(DRAMConfig(), **dr)
    reset_ids()
    if dsa == "widx":
        from ..dsa.widx import WidxXCacheModel

        return WidxXCacheModel(prof.widx_workload("TPC-H-19"),
                               config=config, dram_config=dram_config)
    if dsa == "dasx":
        from ..dsa.dasx import DasxXCacheModel

        return DasxXCacheModel(prof.dasx_workload(), config=config,
                               dram_config=dram_config)
    if dsa in ("sparch", "gamma"):
        from ..dsa import GammaXCacheModel, SpArchXCacheModel
        from ..workloads.matrices import dense_spgemm_input

        a, b = dense_spgemm_input(n=prof.spgemm_n,
                                  nnz_per_row=prof.spgemm_nnz_per_row,
                                  seed=prof.seed)
        cls = SpArchXCacheModel if dsa == "sparch" else GammaXCacheModel
        return cls(a, b, config=config, dram_config=dram_config)
    from ..dsa.graphpulse import GraphPulseXCacheModel
    from ..workloads.graphgen import p2p_gnutella08

    graph = p2p_gnutella08(scale=prof.graph_scale, seed=prof.seed)
    return GraphPulseXCacheModel(graph, num_pes=prof.graph_pes,
                                 config=config, dram_config=dram_config)


def straight_run(dsa: str, profile: str = "ci",
                 config_overrides: Optional[Mapping[str, Any]] = None):
    """One full straight run; returns its RunResult (the comparator)."""
    return build_model(dsa, profile, config_overrides).run()


def write_warm_snapshot(path: str, dsa: str, profile: str = "ci",
                        warm_cycles: Optional[int] = None,
                        warm_frac: float = 0.85) -> Dict[str, Any]:
    """Warm one model and snapshot it to ``path``; returns the header.

    With ``warm_cycles`` the model warms to that exact cycle. Without
    it, a straight probe run measures the total first and the snapshot
    lands at ``warm_frac`` of it (the probe costs one run — pass
    ``warm_cycles`` when the total is already known).
    """
    from ..sim import checkpoint as ck

    if warm_cycles is None:
        if not 0.0 < warm_frac < 1.0:
            raise ValueError("warm_frac must be in (0, 1)")
        probe = straight_run(dsa, profile)
        warm_cycles = max(1, int(probe.cycles * warm_frac))
    model = build_model(dsa, profile)
    ck.warm_model(model, warm_cycles)
    return ck.save_model(path, model)


def parse_grid_entries(entries: Sequence[str]) -> Dict[str, List[Any]]:
    """``field=v1,v2`` strings → {field: [typed values]} (JSON-typed)."""
    grid: Dict[str, List[Any]] = {}
    for entry in entries:
        field, _, values = entry.partition("=")
        if not values:
            raise ValueError(f"bad grid entry {entry!r} "
                             f"(want field=v1,v2,...)")
        typed: List[Any] = []
        for raw in values.split(","):
            try:
                typed.append(json.loads(raw))
            except json.JSONDecodeError:
                typed.append(raw)
        grid[field] = typed
    return grid


def sweep_points(grid: Mapping[str, Sequence[Any]]
                 ) -> List[Dict[str, Any]]:
    """Cartesian product of a fork-override grid, validated up front.

    Every field must be fork-safe; a geometry-changing field raises
    :class:`~repro.sim.checkpoint.ForkOverrideError` *before* any
    simulation runs.
    """
    from ..sim.checkpoint import (
        FORK_SAFE_DRAM_FIELDS,
        FORK_SAFE_FIELDS,
        ForkOverrideError,
    )

    for field in grid:
        name = field[len("dram."):] if field.startswith("dram.") else None
        if name is not None:
            if name not in FORK_SAFE_DRAM_FIELDS:
                raise ForkOverrideError(
                    f"dram.{name} is not fork-safe; fork-safe DRAM "
                    f"fields: {sorted(FORK_SAFE_DRAM_FIELDS)}")
        elif field not in FORK_SAFE_FIELDS:
            raise ForkOverrideError(
                f"{field!r} is not fork-safe (geometry-changing sweeps "
                f"need one warmup per point — use the straight harness); "
                f"fork-safe fields: {sorted(FORK_SAFE_FIELDS)}")
    points: List[Dict[str, Any]] = [{}]
    for field in sorted(grid):
        values = list(grid[field])
        if not values:
            raise ValueError(f"empty value list for grid field {field!r}")
        points = [{**p, field: v} for p in points for v in values]
    return points


@dataclass
class SweepPoint:
    """One forked run: its overrides and what it measured."""

    overrides: Dict[str, Any]
    result: Any                 # RunResult
    restore_s: float            # wall time of load + fork + rebind
    tail_s: float               # wall time of the post-warmup simulation

    @property
    def label(self) -> str:
        if not self.overrides:
            return "(base)"
        return ",".join(f"{k}={v}"
                        for k, v in sorted(self.overrides.items()))


def run_snapshot_sweep(snapshot_path: str,
                       points: Sequence[Mapping[str, Any]]
                       ) -> List[SweepPoint]:
    """Fork ``snapshot_path`` into every override point, in order."""
    from ..sim import checkpoint as ck

    out: List[SweepPoint] = []
    for overrides in points:
        t0 = time.perf_counter()
        model, _header = ck.load_model(snapshot_path,
                                       overrides=dict(overrides) or None)
        t1 = time.perf_counter()
        result = ck.finish_model(model)
        out.append(SweepPoint(dict(overrides), result,
                              restore_s=t1 - t0,
                              tail_s=time.perf_counter() - t1))
    return out


def render_sweep(snapshot_path: str, header: Mapping[str, Any],
                 points: Sequence[SweepPoint]) -> str:
    """Deterministic sweep report (wall times excluded on purpose)."""
    lines = [f"== snapshot-fork sweep: {header['model_class']} "
             f"@cycle {header['cycle']} "
             f"(snapshot {header['payload_sha256'][:12]}) =="]
    for point in points:
        r = point.result
        lines.append(
            f"  {point.label}: cycles={r.cycles} hits={r.hits} "
            f"misses={r.misses} dram={r.dram_accesses} "
            f"checks={'ok' if r.checks_passed else 'FAIL'}")
    return "\n".join(lines)
