"""Table 2 — X-Cache features benefiting each DSA.

Cross-checked against the live models: the tag column must match the
``tag_fields`` each DSA's Table-3 configuration actually uses, and the
walker program named must compile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..core.config import table3_config
from ..dsa.walkers import build_event_walker, build_hash_walker, \
    build_row_walker
from .report import ExperimentReport

__all__ = ["run", "DSA_FEATURES"]


@dataclass(frozen=True)
class DSAFeatures:
    dsa: str
    tag: str
    tag_field: str            # config's tag field name
    preload: bool
    coupling: str             # coupled / decoupled
    data: str
    structure: str
    walker_family: str


DSA_FEATURES: Tuple[DSAFeatures, ...] = (
    DSAFeatures("Widx [18]", "Key", "key", False, "Coupled", "Rid",
                "Hash Table", "hash"),
    DSAFeatures("DASX [22]", "Key", "key", True, "Decoupled", "Rid",
                "Hash Table", "hash"),
    DSAFeatures("GraphPulse [30]", "Node Idx", "vertex", False,
                "Decoupled", "Event", "Graph", "event"),
    DSAFeatures("SpArch [37]", "Col Idx", "row", True, "Decoupled",
                "B.Row", "CSR", "row"),
    DSAFeatures("Gamma [36]", "Col Idx", "row", True, "Decoupled",
                "B.Row", "CSR", "row"),
)

_CONFIG_KEY = {
    "Widx [18]": "widx",
    "DASX [22]": "dasx",
    "GraphPulse [30]": "graphpulse",
    "SpArch [37]": "sparch",
    "Gamma [36]": "gamma",
}

_WALKER_BUILDERS = {
    "hash": lambda: build_hash_walker(1024, 10),
    "row": build_row_walker,
    "event": build_event_walker,
}


def run(profile: str = "full") -> ExperimentReport:
    report = ExperimentReport(
        exp_id="tab02",
        title="X-Cache features benefiting DSAs",
        headers=["DSA", "Tag", "Preload", "Coupling", "Data", "DS",
                 "walker family"],
    )
    tags_match = True
    walkers_compile = True
    for feat in DSA_FEATURES:
        report.rows.append([
            feat.dsa, feat.tag, "Yes" if feat.preload else "No",
            feat.coupling, feat.data, feat.structure, feat.walker_family,
        ])
        config = table3_config(_CONFIG_KEY[feat.dsa])
        if config.tag_fields != (feat.tag_field,):
            tags_match = False
        try:
            _WALKER_BUILDERS[feat.walker_family]()
        except Exception:
            walkers_compile = False

    report.expect(
        "tag columns match live configurations",
        "meta-tag = key / vertex id / row id per family",
        1.0 if tags_match else 0.0, tags_match,
    )
    report.expect(
        "all three walker families compile",
        "five DSAs served by three programs",
        1.0 if walkers_compile else 0.0, walkers_compile,
    )
    report.expect(
        "SpArch and Gamma share a walker",
        "same microarchitecture, reprogrammed controller",
        1.0,
        DSA_FEATURES[3].walker_family == DSA_FEATURES[4].walker_family,
    )
    return report
