"""Plain-text experiment reports.

Every figure/table driver returns an :class:`ExperimentReport`: the
regenerated rows/series plus a list of :class:`Expectation` checks that
compare the paper's claim with the measured value. ``render()`` prints
the same information a figure would carry, as an ASCII table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

__all__ = ["Expectation", "ExperimentReport", "format_table",
           "cycles_breakdown_table", "why_slow_table", "why_miss_table"]


@dataclass
class Expectation:
    """One paper-claim vs. measured-value comparison."""

    claim: str                 # e.g. "X-Cache vs addr cache speedup"
    paper: str                 # e.g. "1.7x average"
    measured: float
    ok: bool
    detail: str = ""

    def render(self) -> str:
        mark = "PASS" if self.ok else "MISS"
        extra = f" ({self.detail})" if self.detail else ""
        return (f"  [{mark}] {self.claim}: paper={self.paper}, "
                f"measured={self.measured:.3g}{extra}")


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width ASCII table."""
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def cycles_breakdown_table(breakdown) -> str:
    """Render the profiler's per-DSA "where do the cycles go" table.

    ``breakdown`` is ``{dsa: {kind: cycles}}`` (see
    ``ProfileProcessor.component_breakdown``). Each row shows the DSA's
    total attributed cycles and the percentage in each X-Action
    category / wait kind; returns "" when there is nothing to show.
    """
    from repro.obs.prof import ALL_KINDS

    if not breakdown:
        return ""
    rows = []
    for dsa in sorted(breakdown):
        kinds = breakdown[dsa]
        total = sum(kinds.values())
        row: List[object] = [dsa, total]
        for kind in ALL_KINDS:
            share = kinds.get(kind, 0) / total if total else 0.0
            row.append(f"{100.0 * share:.1f}%")
        rows.append(row)
    headers = ["dsa", "cycles"] + list(ALL_KINDS)
    return format_table(headers, rows)


def why_slow_table(summary) -> str:
    """Render the critical-path per-DSA request-latency blame table.

    ``summary`` is ``{dsa: {requests, latency_p50, latency_p99, blame}}``
    (see ``CritPathAggregator.summary_dict``). Blame columns show the
    share of total request cycles each bucket is responsible for;
    returns "" when there is nothing to show.
    """
    from repro.obs.critpath import BLAME_BUCKETS

    if not summary:
        return ""
    rows = []
    for dsa in sorted(summary):
        entry = summary[dsa]
        blame = entry.get("blame", {})
        total = sum(blame.values())
        row: List[object] = [dsa, entry.get("requests", 0),
                             entry.get("latency_p50", 0),
                             entry.get("latency_p99", 0)]
        for bucket in BLAME_BUCKETS:
            share = blame.get(bucket, 0) / total if total else 0.0
            row.append(f"{100.0 * share:.1f}%")
        rows.append(row)
    headers = ["dsa", "requests", "p50", "p99"] + list(BLAME_BUCKETS)
    return format_table(headers, rows)


def why_miss_table(summary) -> str:
    """Render the per-cache miss-taxonomy blame table.

    ``summary`` is ``{cache: {hits, misses, compulsory, capacity,
    conflict, would_hit_more_ways, would_hit_more_sets, hit_rate, ...}}``
    (see ``CacheLensProcessor.summary`` /
    ``cachelens.merge_summaries``). Taxonomy columns show each class's
    share of the cache's misses; the would-hit-if columns answer the
    sizing question directly (share of misses that a 2x-ways / 2x-sets
    geometry would have turned into hits); returns "" when there is
    nothing to show.
    """
    from repro.obs.cachelens import MISS_CLASSES

    if not summary:
        return ""
    rows = []
    for cache in sorted(summary):
        entry = summary[cache]
        misses = entry.get("misses", 0)
        row: List[object] = [cache,
                             entry.get("accesses", 0),
                             f"{100.0 * entry.get('hit_rate', 0.0):.1f}%",
                             misses]
        for cls in MISS_CLASSES:
            share = entry.get(cls, 0) / misses if misses else 0.0
            row.append(f"{100.0 * share:.1f}%")
        for key in ("would_hit_more_ways", "would_hit_more_sets"):
            share = entry.get(key, 0) / misses if misses else 0.0
            row.append(f"{100.0 * share:.1f}%")
        rows.append(row)
    headers = (["cache", "accesses", "hit_rate", "misses"]
               + list(MISS_CLASSES) + ["+ways", "+sets"])
    return format_table(headers, rows)


@dataclass
class ExperimentReport:
    """A regenerated table/figure plus its paper-claim checks."""

    exp_id: str                # "fig14", "tab03", ...
    title: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    expectations: List[Expectation] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def expect(self, claim: str, paper: str, measured: float,
               ok: bool, detail: str = "") -> None:
        self.expectations.append(
            Expectation(claim, paper, measured, ok, detail))

    def expect_range(self, claim: str, paper: str, measured: float,
                     lo: float, hi: float, detail: str = "") -> None:
        self.expect(claim, paper, measured, lo <= measured <= hi, detail)

    @property
    def all_ok(self) -> bool:
        return all(e.ok for e in self.expectations)

    def render(self) -> str:
        lines = [f"== {self.exp_id}: {self.title} ==",
                 format_table(self.headers, self.rows)]
        if self.expectations:
            lines.append("paper vs measured:")
            lines.extend(e.render() for e in self.expectations)
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover
        return self.render()
