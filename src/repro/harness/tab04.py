"""Table 4 — energy parameters (pJ, 1 GHz).

Rendered from the live :class:`~repro.core.energy.EnergyParams` so the
constants the whole power study rests on are checked against the paper.
"""

from __future__ import annotations

from ..core.energy import EnergyParams
from .report import ExperimentReport

__all__ = ["run"]

_PAPER_BITS = {
    "Register": 8.9e-03,
    "Add": 2.1e-01,
    "Mul": 12.6,
    "Bitwise Op": 1.8e-02,
    "Shift": 4.1e-01,
}


def run(profile: str = "full") -> ExperimentReport:
    params = EnergyParams()
    report = ExperimentReport(
        exp_id="tab04",
        title="Energy parameters per bit [pJ] (timing: 1 GHz)",
        headers=["event", "paper pJ", "model pJ"],
    )
    live = {
        "Register": params.register_bit,
        "Add": params.add_bit,
        "Mul": params.mul_bit,
        "Bitwise Op": params.bitwise_bit,
        "Shift": params.shift_bit,
    }
    all_match = True
    for name, paper in _PAPER_BITS.items():
        model = live[name]
        if abs(model - paper) > 1e-12 * max(1.0, paper):
            all_match = False
        report.rows.append([name, paper, model])
    report.rows.append(["Tag (per byte)", 2.7, params.tag_byte])
    report.rows.append(["L1 Cache (per 32B)", 44.8, params.l1_per_32b])

    report.expect(
        "per-bit energies match Table 4",
        "exact",
        1.0 if all_match else 0.0, all_match,
    )
    report.expect(
        "memory energies match Table 4",
        "tag 2.7 pJ/B; L1 44.8 pJ/32B",
        params.tag_byte,
        params.tag_byte == 2.7 and params.l1_per_32b == 44.8,
    )
    return report
