"""Parallel experiment execution (``python -m repro.harness --parallel N``).

Every experiment driver is an independent, deterministic function of
``(exp_id, profile)``, so the figure set fans out over a
``multiprocessing`` pool. Two things make the parallel run produce
byte-identical reports to the serial one:

* results come back as *rendered report strings* and are printed in the
  caller's requested order, regardless of completion order;
* the figs. 14/15/16 shared suite is simulated **once in the parent**
  and published to a disk cache (see ``REPRO_SUITE_CACHE`` in
  :mod:`repro.harness.suite`) before the pool starts, so the three
  workers that consume it reload the identical pickled runs instead of
  re-simulating.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import tempfile
from typing import List, Optional, Sequence, Tuple

from ..obs.capture import CaptureSpec, capture_scope
from .suite import SUITE_CACHE_ENV, run_fig14_suite

__all__ = ["run_serial", "run_parallel", "SHARED_SUITE_EXPERIMENTS"]

# experiments that consume the memoized fig-14 suite
SHARED_SUITE_EXPERIMENTS = ("fig14", "fig15", "fig16")


def _run_one(job: Tuple[str, str, Optional[CaptureSpec]]) -> Tuple[str, bool]:
    """Pool worker: run one experiment, return (rendered report, all_ok).

    When a :class:`CaptureSpec` rides along, the experiment runs inside
    a capture scope: every system it builds streams onto the obs bus,
    exports (JSONL, Perfetto, folded profiler stacks, time-series CSV)
    land in per-experiment files (``t.jsonl`` → ``t.<exp_id>.jsonl``),
    and the report text — metrics summary and/or per-DSA cycles
    breakdown, aggregated across the experiment's runs — is appended to
    the rendered report. This works identically in serial and
    ``--parallel`` runs because each worker owns its experiment's
    capture end to end.
    """
    from . import run_experiment

    exp_id, profile, spec = (job if len(job) == 3 else (*job, None))
    if spec is None or not spec.active:
        report = run_experiment(exp_id, profile)
        return report.render(), report.all_ok
    with capture_scope(spec.for_experiment(exp_id)) as cap:
        report = run_experiment(exp_id, profile)
    rendered = report.render()
    summary = cap.finish() if cap is not None else None
    if summary:
        rendered = f"{rendered}\n{summary}"
    return rendered, report.all_ok


def _warm_suite(profile: str) -> None:
    """Pool worker: simulate the shared suite and publish it to disk."""
    run_fig14_suite(profile)


def run_serial(targets: Sequence[str], profile: str,
               capture: Optional[CaptureSpec] = None
               ) -> List[Tuple[str, bool]]:
    """Run experiments in order in this process."""
    return [_run_one((exp_id, profile, capture)) for exp_id in targets]


def run_parallel(targets: Sequence[str], profile: str, jobs: int,
                 cache_dir: Optional[str] = None,
                 capture: Optional[CaptureSpec] = None
                 ) -> List[Tuple[str, bool]]:
    """Fan experiments out over ``jobs`` worker processes.

    Returns ``(rendered_report, all_ok)`` pairs in ``targets`` order —
    the same sequence :func:`run_serial` produces. ``cache_dir`` is the
    shared suite cache directory; a temporary one is created (and
    removed) when not given.
    """
    if jobs <= 1 or len(targets) <= 1:
        return run_serial(targets, profile, capture)

    own_cache = cache_dir is None
    if own_cache:
        cache_dir = tempfile.mkdtemp(prefix="repro-suite-cache-")
    previous = os.environ.get(SUITE_CACHE_ENV)
    os.environ[SUITE_CACHE_ENV] = cache_dir
    suite_targets = [t for t in targets if t in SHARED_SUITE_EXPERIMENTS]
    try:
        with multiprocessing.Pool(processes=min(jobs, len(targets))) as pool:
            # The shared suite simulates once, concurrently with the
            # non-suite experiments; fig14/15/16 dispatch only after it
            # lands on disk, then reload it instead of re-simulating.
            warm = (pool.apply_async(_warm_suite, (profile,))
                    if suite_targets else None)
            pending = {t: pool.apply_async(_run_one, ((t, profile, capture),))
                       for t in targets if t not in SHARED_SUITE_EXPERIMENTS}
            if warm is not None:
                warm.get()
                for t in suite_targets:
                    pending[t] = pool.apply_async(
                        _run_one, ((t, profile, capture),))
            return [pending[t].get() for t in targets]
    finally:
        if previous is None:
            os.environ.pop(SUITE_CACHE_ENV, None)
        else:
            os.environ[SUITE_CACHE_ENV] = previous
        if own_cache:
            shutil.rmtree(cache_dir, ignore_errors=True)
