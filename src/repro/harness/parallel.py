"""Parallel experiment execution (``python -m repro.harness --parallel N``).

Every experiment driver is an independent, deterministic function of
``(exp_id, profile)``, so the figure set fans out over worker processes.
Since the ``repro.svc`` service layer landed, the fan-out rides the
**warm worker pool** (:class:`repro.svc.service.Service`) instead of a
throwaway ``multiprocessing.Pool``: workers are long-lived, so repeated
suite runs in one process reuse the in-memory fig-14 suite memo and the
compiled microcode it carries, instead of paying the compile cost per
batch. Two things make the parallel run produce byte-identical reports
to the serial one:

* results come back as *rendered report strings* and are printed in the
  caller's requested order, regardless of completion order;
* the figs. 14/15/16 shared suite is simulated **once** (a ``suite``
  job submitted ahead of them) and published to a disk cache (see
  ``REPRO_SUITE_CACHE`` in :mod:`repro.harness.suite`) before the
  suite-consuming experiments dispatch, so the three workers that
  consume it reload the identical pickled runs instead of
  re-simulating.

:func:`execute_one` is the single-experiment execution path shared by
the serial runner and the service workers: it runs one driver inside an
optional capture scope and appends the capture summary to the rendered
report.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from typing import Callable, List, Optional, Sequence, Tuple

from ..obs.capture import Capture, CaptureSpec, use_capture
from .suite import SUITE_CACHE_ENV

__all__ = ["run_serial", "run_parallel", "execute_one",
           "SHARED_SUITE_EXPERIMENTS"]

# experiments that consume the memoized fig-14 suite
SHARED_SUITE_EXPERIMENTS = ("fig14", "fig15", "fig16")


def execute_one(exp_id: str, profile: str,
                spec: Optional[CaptureSpec] = None,
                on_attach: Optional[Callable] = None,
                telemetry: Optional[dict] = None) -> Tuple[str, bool]:
    """Run one experiment; return (rendered report, all_ok).

    When a :class:`CaptureSpec` rides along, the experiment runs inside
    a capture scope: every system it builds streams onto the obs bus,
    exports (JSONL, Perfetto, folded profiler stacks, time-series CSV)
    land in per-experiment files (``t.jsonl`` → ``t.<exp_id>.jsonl``),
    and the report text — metrics summary and/or per-DSA cycles
    breakdown, aggregated across the experiment's runs — is appended to
    the rendered report. This works identically in serial and pooled
    runs because each worker owns its experiment's capture end to end.

    ``on_attach`` (see :class:`repro.obs.capture.Capture`) lets the
    service worker add its own processors — progress streaming, the
    health watchdog — to every system the driver builds; passing it
    forces a capture scope even when ``spec`` exports nothing.

    Pass a dict as ``telemetry`` to receive what the capture observed
    beyond its file exports: per-kind watchdog warning counts
    (``"watchdog"``) and the cache-lens why-miss summary
    (``"cachelens"``) — the hook the service worker uses to land
    harness-path pathologies and cache health in its
    :class:`~repro.svc.telemetry.MetricsRegistry`.
    """
    from . import run_experiment

    if (spec is None or not spec.active) and on_attach is None:
        report = run_experiment(exp_id, profile)
        return report.render(), report.all_ok
    scoped = (spec if spec is not None else CaptureSpec())
    capture = Capture(scoped.for_experiment(exp_id), on_attach=on_attach)
    try:
        with use_capture(capture):
            report = run_experiment(exp_id, profile)
    finally:
        summary = capture.finish()
        if telemetry is not None:
            counts: dict = {}
            for warning in capture.watchdog_warnings:
                counts[warning.kind] = counts.get(warning.kind, 0) + 1
            telemetry["watchdog"] = counts
            if capture.spec.wants_misses:
                telemetry["cachelens"] = capture.merged_cachelens()
    rendered = report.render()
    if summary:
        rendered = f"{rendered}\n{summary}"
    return rendered, report.all_ok


def run_serial(targets: Sequence[str], profile: str,
               capture: Optional[CaptureSpec] = None
               ) -> List[Tuple[str, bool]]:
    """Run experiments in order in this process."""
    return [execute_one(exp_id, profile, capture) for exp_id in targets]


def run_parallel(targets: Sequence[str], profile: str, jobs: int,
                 cache_dir: Optional[str] = None,
                 capture: Optional[CaptureSpec] = None,
                 telemetry: Optional[dict] = None
                 ) -> List[Tuple[str, bool]]:
    """Fan experiments out over a warm pool of ``jobs`` workers.

    Returns ``(rendered_report, all_ok)`` pairs in ``targets`` order —
    the same sequence :func:`run_serial` produces. ``cache_dir`` is the
    shared suite cache directory; a temporary one is created (and
    removed) when not given. Pass a dict as ``telemetry`` to receive the
    inner service's observability state: its ``metrics()`` dict and the
    registry ``snapshot`` (mergeable across batches via
    :func:`repro.svc.telemetry.merge_snapshots`).
    """
    if jobs <= 1 or len(targets) <= 1:
        return run_serial(targets, profile, capture)

    from ..svc.jobs import JobSpec
    from ..svc.service import Service

    own_cache = cache_dir is None
    if own_cache:
        cache_dir = tempfile.mkdtemp(prefix="repro-suite-cache-")
    previous = os.environ.get(SUITE_CACHE_ENV)
    # set before Service starts: workers inherit the environment
    os.environ[SUITE_CACHE_ENV] = cache_dir
    suite_targets = [t for t in targets if t in SHARED_SUITE_EXPERIMENTS]
    try:
        with Service(workers=min(jobs, len(targets)), store=None,
                     health=False,
                     max_pending=len(targets) + 1) as svc:
            # The shared suite simulates once, concurrently with the
            # non-suite experiments; fig14/15/16 dispatch only after it
            # lands on disk, then reload it instead of re-simulating.
            warm = (svc.submit(JobSpec(experiment="suite", profile=profile))
                    if suite_targets else None)
            handles = {
                t: svc.submit(JobSpec(experiment=t, profile=profile,
                                      capture=capture))
                for t in targets if t not in SHARED_SUITE_EXPERIMENTS}
            if warm is not None:
                warm.result()
                for t in suite_targets:
                    handles[t] = svc.submit(
                        JobSpec(experiment=t, profile=profile,
                                capture=capture))
            results: List[Tuple[str, bool]] = []
            for t in targets:
                payload = handles[t].result()
                results.append((payload["rendered"], payload["all_ok"]))
            if telemetry is not None:
                telemetry["metrics"] = svc.metrics()
                telemetry["snapshot"] = svc.telemetry_snapshot()
            return results
    finally:
        if previous is None:
            os.environ.pop(SUITE_CACHE_ENV, None)
        else:
            os.environ[SUITE_CACHE_ENV] = previous
        if own_cache:
            shutil.rmtree(cache_dir, ignore_errors=True)
