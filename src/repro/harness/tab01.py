"""Table 1 — X-Cache vs state-of-the-art storage idioms.

A qualitative taxonomy (shaded cells in the paper mark limitations).
Regenerated from structured idiom descriptors so the comparison criteria
are first-class, testable data rather than prose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .report import ExperimentReport

__all__ = ["run", "IDIOMS", "Idiom"]


@dataclass(frozen=True)
class Idiom:
    """One storage idiom's row of the taxonomy."""

    name: str
    examples: str
    granularity: str
    meta_to_addr: str        # must the DSA translate metadata to addresses?
    behavior: str            # static vs dynamic access patterns
    addressing: str          # implicit vs explicit
    coupling: str            # coupled vs decoupled refills
    trigger: str
    walker: str
    control: str
    multi_fill: str
    ld_st_order: str
    preload: str
    limited: Tuple[str, ...]  # criteria where the idiom is limited (shaded)


IDIOMS: Dict[str, Idiom] = {
    "cache": Idiom(
        name="Caches",
        examples="conventional L1/L2 [3,11,23,26,27]",
        granularity="blocks",
        meta_to_addr="always: walk + translate",
        behavior="dynamic",
        addressing="implicit",
        coupling="coupled (load/store)",
        trigger="implicit (load/store)",
        walker="none: DSA walks metadata",
        control="complex (MSHRs)",
        multi_fill="no",
        ld_st_order="arbitrary",
        preload="separate prefetcher",
        limited=("meta_to_addr", "coupling", "walker", "multi_fill"),
    ),
    "scratch_dma": Idiom(
        name="Scratch+DMA",
        examples="Buffets [28]",
        granularity="tiles",
        meta_to_addr="always: walk + translate",
        behavior="static pattern (affine)",
        addressing="explicit",
        coupling="decoupled",
        trigger="explicit (datapath)",
        walker="fixed FSM",
        control="simple (double-buffering)",
        multi_fill="hardwired",
        ld_st_order="limited (on-chip only)",
        preload="limited (credit)",
        limited=("meta_to_addr", "behavior", "walker", "ld_st_order"),
    ),
    "scratch_ae": Idiom(
        name="Scratch+AE",
        examples="CoRAM [6], AE [5], Stash [21]",
        granularity="word",
        meta_to_addr="always: walk + translate",
        behavior="static pattern (affine)",
        addressing="implicit",
        coupling="coupled",
        trigger="explicit (datapath)",
        walker="thread on pipeline",
        control="complex (thread)",
        multi_fill="hardwired",
        ld_st_order="limited",
        preload="limited (credit)",
        limited=("meta_to_addr", "behavior", "coupling", "control"),
    ),
    "fifo": Idiom(
        name="FIFOs",
        examples="Spatial [19,20], Stream [12,25], Pipeline [9,15]",
        granularity="elements",
        meta_to_addr="linear data structures only",
        behavior="stream",
        addressing="implicit",
        coupling="decoupled",
        trigger="implicit (push/pop)",
        walker="only FIFO order",
        control="simple (double-buf)",
        multi_fill="only FIFO",
        ld_st_order="only FIFO",
        preload="limited (credits)",
        limited=("behavior", "walker", "multi_fill", "ld_st_order"),
    ),
    "xcache": Idiom(
        name="X-Cache",
        examples="this work",
        granularity="DSA-specific",
        meta_to_addr="only on misses",
        behavior="dynamic + flexible",
        addressing="implicit",
        coupling="decoupled",
        trigger="DSA-specific",
        walker="programmable (coroutines)",
        control="simple (routines)",
        multi_fill="yes (coroutine)",
        ld_st_order="arbitrary",
        preload="yes (FSM driven)",
        limited=(),
    ),
}

_CRITERIA = [
    ("granularity", "Granularity"),
    ("meta_to_addr", "Meta-to-Addr"),
    ("behavior", "Behavior"),
    ("addressing", "Addressing"),
    ("coupling", "Coupling"),
    ("trigger", "Trigger"),
    ("walker", "Walker"),
    ("control", "Control"),
    ("multi_fill", "Multi.Fill"),
    ("ld_st_order", "LD/ST order"),
    ("preload", "Preload"),
]


def run(profile: str = "full") -> ExperimentReport:
    order = ["cache", "scratch_dma", "scratch_ae", "fifo", "xcache"]
    report = ExperimentReport(
        exp_id="tab01",
        title="X-Cache vs state-of-the-art storage idioms "
              "('*' marks a limitation)",
        headers=["criterion"] + [IDIOMS[k].name for k in order],
    )
    for attr, label in _CRITERIA:
        row = [label]
        for key in order:
            idiom = IDIOMS[key]
            value = getattr(idiom, attr)
            row.append(f"{value}*" if attr in idiom.limited else value)
        report.rows.append(row)

    report.expect(
        "X-Cache has no limited cells",
        "only idiom supporting dynamic decoupled DSA access",
        float(len(IDIOMS["xcache"].limited)),
        len(IDIOMS["xcache"].limited) == 0,
    )
    report.expect(
        "every other idiom is limited somewhere",
        "shaded cells in all non-X-Cache columns",
        float(min(len(IDIOMS[k].limited) for k in order[:-1])),
        all(IDIOMS[k].limited for k in order[:-1]),
    )
    return report
