"""Figure 14 — runtime of X-Cache vs baseline DSAs and address caches.

Paper claims reproduced here:

* X-Cache outperforms equally-sized address-based caches by **1.7×**
  on average (the address design walks even on resident data).
* X-Cache is competitive with hardwired DSA baselines — no loss, and up
  to **1.54×** on Widx (hash elimination; TPC-H 19/20 highest).
* Address tags incur **2–8×** more memory accesses (nested walks).
"""

from __future__ import annotations

from ..sim.stats import geomean
from .report import ExperimentReport
from .suite import SUITE_WORKLOADS, VariantSet, run_fig14_suite

__all__ = ["run"]


def run(profile: str = "full") -> ExperimentReport:
    suite = run_fig14_suite(profile)
    report = ExperimentReport(
        exp_id="fig14",
        title="Runtime: X-Cache vs baseline DSA vs address cache",
        headers=["workload", "xcache cyc", "baseline cyc", "addr cyc",
                 "vs baseline", "vs addr", "mem ratio", "xc hit",
                 "validated"],
    )
    for label in SUITE_WORKLOADS:
        if label not in suite:
            continue
        vs: VariantSet = suite[label]
        report.rows.append([
            label,
            vs.xcache.cycles,
            vs.baseline.cycles,
            vs.addr.cycles,
            round(vs.speedup_vs_baseline, 2),
            round(vs.speedup_vs_addr, 2),
            round(vs.dram_ratio, 2),
            round(vs.xcache.hit_rate, 2),
            vs.all_checked,
        ])

    addr_speedups = [suite[l].speedup_vs_addr for l in suite]
    base_speedups = [suite[l].speedup_vs_baseline for l in suite]
    mem_ratios = [suite[l].dram_ratio for l in suite]
    widx_base = [suite[l].speedup_vs_baseline
                 for l in suite if l.startswith("TPC-H")]

    report.expect_range(
        "geomean speedup vs address caches",
        "1.7x average",
        geomean(addr_speedups), 1.15, 3.0,
    )
    report.expect_range(
        "Widx speedup vs baseline DSA",
        "1.54x (TPC-H 19/20 higher than 22)",
        geomean(widx_base), 1.1, 3.0,
    )
    report.expect(
        "competitive with hardwired baselines",
        "no performance loss (>=0.85x everywhere)",
        min(base_speedups),
        min(base_speedups) >= 0.85,
    )
    hash_ratios = [suite[l].dram_ratio for l in suite
                   if l.startswith("TPC-H") or l == "dasx"]
    report.expect_range(
        "memory accesses: addr vs X-Cache (hash DSAs)",
        "2-8x more for address tags (nested walks)",
        geomean(hash_ratios) if hash_ratios else 0.0, 1.02, 10.0,
    )
    report.expect_range(
        "memory accesses: addr vs X-Cache (all DSAs)",
        "2-8x in the paper's 100GB/SNAP regime; compressed at our scale",
        geomean(mem_ratios), 0.8, 10.0,
    )
    report.expect(
        "all variants functionally validated",
        "(model self-check)",
        1.0 if all(suite[l].all_checked for l in suite) else 0.0,
        all(suite[l].all_checked for l in suite),
    )
    report.notes.append(
        "cycle counts are model cycles; compare ratios, not absolutes"
    )
    return report
