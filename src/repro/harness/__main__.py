"""CLI: ``python -m repro.harness [exp ...] [--profile ci|quick|full]``.

Runs the requested experiments (default: all) and prints each report.
``--parallel N`` fans independent experiments over N worker processes;
output is printed in request order either way, so serial and parallel
runs produce byte-identical reports. Exits non-zero if any paper
expectation missed.
"""

from __future__ import annotations

import argparse
import sys

from . import EXPERIMENTS
from .parallel import run_parallel, run_serial


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.harness",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*",
                        help=f"ids to run (default: all of "
                             f"{', '.join(sorted(EXPERIMENTS))})")
    parser.add_argument("--profile", default="full",
                        choices=("ci", "quick", "full"))
    parser.add_argument("--parallel", type=int, default=1, metavar="N",
                        help="fan experiments over N worker processes "
                             "(default: 1, serial)")
    args = parser.parse_args(argv)
    if args.parallel < 1:
        parser.error("--parallel must be >= 1")

    targets = args.experiments or sorted(EXPERIMENTS)
    unknown = [t for t in targets if t not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment ids: {', '.join(unknown)}")

    if args.parallel > 1:
        results = run_parallel(targets, args.profile, args.parallel)
    else:
        results = run_serial(targets, args.profile)

    all_ok = True
    for rendered, ok in results:
        print(rendered)
        print()
        all_ok = all_ok and ok
    return 0 if all_ok else 1


if __name__ == "__main__":
    sys.exit(main())
