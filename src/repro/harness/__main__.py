"""CLI: ``python -m repro.harness [exp ...] [--profile ci|quick|full]``.

Runs the requested experiments (default: all) and prints each report.
``--parallel N`` fans independent experiments over N worker processes;
output is printed in request order either way, so serial and parallel
runs produce byte-identical reports. Exits non-zero if any paper
expectation missed.

Observability (the ``repro.obs`` plane; all flags compose with
``--parallel`` — each experiment's capture lives in its worker):

* ``--events t.jsonl`` streams every typed event as JSON lines, one
  file per experiment (``t.fig04.jsonl``, ...);
* ``--perfetto t.json`` writes a Chrome-trace file per experiment
  (walker contexts as tracks, DRAM transactions as async slices) for
  https://ui.perfetto.dev;
* ``--metrics-summary`` appends a hit-rate / load-to-use /
  miss-latency percentile summary to each report;
* ``--prof cycles.folded`` runs the cycle-attribution profiler:
  folded stacks per experiment (feed to flamegraph.pl) plus a per-DSA
  cycles-breakdown table appended to the report;
* ``--timeseries ts.csv`` samples hit-rate / occupancy / outstanding
  DRAM / bandwidth over ``--timeseries-window`` cycle windows;
* ``--spans s.json`` assembles per-request span trees and writes the
  SLO-gate summary (per experiment: ``s.fig14.json``; feed to
  ``python -m repro.obs.regress --slo``) plus the why-slow blame table
  in the report;
* ``--explain-top K`` drills down the K slowest requests in each
  report (implies span assembly);
* ``--watchdog`` appends livelock / MSHR-saturation / starvation
  warnings to each report;
* ``--misses`` classifies every cache miss (compulsory / capacity /
  conflict, with would-have-hit-if shadow counters) and appends the
  why-miss table plus reuse-distance histograms to each report;
* ``--heatmap h.csv`` writes per-set occupancy/eviction-pressure rows
  over ``--heatmap-window`` cycle windows (implies ``--misses``);
* ``--reuse-sample N`` computes the Mattson reuse-distance scan on
  every Nth access (1 = exact; larger = cheaper).

Experiments that reload the memoized fig-14 suite from a warm cache
export events only for the systems actually simulated in-process.
"""

from __future__ import annotations

import argparse
import sys

from ..obs.capture import CaptureSpec
from . import EXPERIMENTS
from .parallel import run_parallel, run_serial


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.harness",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*",
                        help=f"ids to run (default: all of "
                             f"{', '.join(sorted(EXPERIMENTS))})")
    parser.add_argument("--profile", default="full",
                        choices=("ci", "quick", "full"))
    parser.add_argument("--parallel", type=int, default=1, metavar="N",
                        help="fan experiments over N worker processes "
                             "(default: 1, serial)")
    parser.add_argument("--events", default=None, metavar="PATH.jsonl",
                        help="stream typed obs events as JSON lines "
                             "(per experiment: PATH.<exp_id>.jsonl)")
    parser.add_argument("--perfetto", default=None, metavar="PATH.json",
                        help="write a Chrome-trace/Perfetto file "
                             "(per experiment: PATH.<exp_id>.json)")
    parser.add_argument("--metrics-summary", action="store_true",
                        help="append an obs metrics summary (hit-rate, "
                             "latency percentiles) to each report")
    parser.add_argument("--prof", default=None, metavar="PATH.folded",
                        help="attribute walker cycles to (DSA, routine, "
                             "X-Action category): folded stacks per "
                             "experiment plus a breakdown table")
    parser.add_argument("--timeseries", default=None, metavar="PATH.csv",
                        help="windowed time-series metrics CSV "
                             "(per experiment: PATH.<exp_id>.csv)")
    parser.add_argument("--timeseries-window", type=int, default=1000,
                        metavar="CYCLES",
                        help="time-series window width (default: 1000)")
    parser.add_argument("--spans", default=None, metavar="PATH.json",
                        help="assemble request span trees; write the "
                             "SLO-gate summary (per experiment: "
                             "PATH.<exp_id>.json) and append the "
                             "why-slow blame table to each report")
    parser.add_argument("--explain-top", type=int, default=0, metavar="K",
                        help="drill down the K slowest requests in each "
                             "report (implies span assembly)")
    parser.add_argument("--watchdog", action="store_true",
                        help="append pathology warnings (livelock, MSHR "
                             "saturation, starvation) to each report")
    parser.add_argument("--misses", action="store_true",
                        help="classify misses (compulsory/capacity/"
                             "conflict + would-hit-if shadows) and "
                             "append the why-miss table to each report")
    parser.add_argument("--heatmap", default=None, metavar="PATH.csv",
                        help="write per-set occupancy/eviction heatmap "
                             "rows (per experiment: PATH.<exp_id>.csv; "
                             "implies --misses)")
    parser.add_argument("--heatmap-window", type=int, default=1000,
                        metavar="CYCLES",
                        help="heatmap window width (default: 1000)")
    parser.add_argument("--reuse-sample", type=int, default=8, metavar="N",
                        help="compute the reuse-distance scan on every "
                             "Nth access (default: 8; 1 = exact)")
    args = parser.parse_args(argv)
    if args.parallel < 1:
        parser.error("--parallel must be >= 1")
    if args.timeseries_window < 1:
        parser.error("--timeseries-window must be >= 1")
    if args.explain_top < 0:
        parser.error("--explain-top must be >= 0")
    if args.heatmap_window < 1:
        parser.error("--heatmap-window must be >= 1")
    if args.reuse_sample < 1:
        parser.error("--reuse-sample must be >= 1")

    targets = args.experiments or sorted(EXPERIMENTS)
    unknown = [t for t in targets if t not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment ids: {', '.join(unknown)}")

    capture = CaptureSpec(events_path=args.events,
                          perfetto_path=args.perfetto,
                          metrics=args.metrics_summary,
                          prof_path=args.prof,
                          timeseries_path=args.timeseries,
                          timeseries_window=args.timeseries_window,
                          spans_path=args.spans,
                          explain_top=args.explain_top,
                          watchdog=args.watchdog,
                          misses=args.misses,
                          heatmap_path=args.heatmap,
                          heatmap_window=args.heatmap_window,
                          reuse_sample=args.reuse_sample)
    if not capture.active:
        capture = None

    if args.parallel > 1:
        results = run_parallel(targets, args.profile, args.parallel,
                               capture=capture)
    else:
        results = run_serial(targets, args.profile, capture)

    all_ok = True
    for rendered, ok in results:
        print(rendered)
        print()
        all_ok = all_ok and ok
    return 0 if all_ok else 1


if __name__ == "__main__":
    sys.exit(main())
