"""CLI: ``python -m repro.harness [exp ...] [--profile quick|full]``.

Runs the requested experiments (default: all) and prints each report.
Exits non-zero if any paper expectation missed.
"""

from __future__ import annotations

import argparse
import sys

from . import EXPERIMENTS, run_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.harness",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*",
                        help=f"ids to run (default: all of "
                             f"{', '.join(sorted(EXPERIMENTS))})")
    parser.add_argument("--profile", default="full",
                        choices=("quick", "full"))
    args = parser.parse_args(argv)

    targets = args.experiments or sorted(EXPERIMENTS)
    all_ok = True
    for exp_id in targets:
        report = run_experiment(exp_id, args.profile)
        print(report.render())
        print()
        all_ok = all_ok and report.all_ok
    return 0 if all_ok else 1


if __name__ == "__main__":
    sys.exit(main())
