"""CLI: ``python -m repro.harness [exp ...] [--profile ci|quick|full]``.

Runs the requested experiments (default: all) and prints each report.
``--parallel N`` fans independent experiments over N worker processes;
output is printed in request order either way, so serial and parallel
runs produce byte-identical reports. Exits non-zero if any paper
expectation missed.

Observability (the ``repro.obs`` plane; all flags compose with
``--parallel`` — each experiment's capture lives in its worker):

* ``--events t.jsonl`` streams every typed event as JSON lines, one
  file per experiment (``t.fig04.jsonl``, ...);
* ``--perfetto t.json`` writes a Chrome-trace file per experiment
  (walker contexts as tracks, DRAM transactions as async slices) for
  https://ui.perfetto.dev;
* ``--metrics-summary`` appends a hit-rate / load-to-use /
  miss-latency percentile summary to each report;
* ``--prof cycles.folded`` runs the cycle-attribution profiler:
  folded stacks per experiment (feed to flamegraph.pl) plus a per-DSA
  cycles-breakdown table appended to the report;
* ``--timeseries ts.csv`` samples hit-rate / occupancy / outstanding
  DRAM / bandwidth over ``--timeseries-window`` cycle windows;
* ``--spans s.json`` assembles per-request span trees and writes the
  SLO-gate summary (per experiment: ``s.fig14.json``; feed to
  ``python -m repro.obs.regress --slo``) plus the why-slow blame table
  in the report;
* ``--explain-top K`` drills down the K slowest requests in each
  report (implies span assembly);
* ``--watchdog`` appends livelock / MSHR-saturation / starvation
  warnings to each report;
* ``--misses`` classifies every cache miss (compulsory / capacity /
  conflict, with would-have-hit-if shadow counters) and appends the
  why-miss table plus reuse-distance histograms to each report;
* ``--heatmap h.csv`` writes per-set occupancy/eviction-pressure rows
  over ``--heatmap-window`` cycle windows (implies ``--misses``);
* ``--reuse-sample N`` computes the Mattson reuse-distance scan on
  every Nth access (1 = exact; larger = cheaper).

Experiments that reload the memoized fig-14 suite from a warm cache
export events only for the systems actually simulated in-process.
"""

from __future__ import annotations

import argparse
import sys

from ..obs.capture import CaptureSpec
from . import EXPERIMENTS
from .parallel import run_parallel, run_serial


def _snapshot_mode(parser, args) -> int:
    """``--write-snapshot`` / ``--sweep-from-snapshot`` entry points."""
    from ..sim.checkpoint import SnapshotError
    from .sweep import (
        parse_grid_entries,
        render_sweep,
        run_snapshot_sweep,
        sweep_points,
        write_warm_snapshot,
    )

    if args.write_snapshot and args.sweep_from_snapshot:
        parser.error("--write-snapshot and --sweep-from-snapshot are "
                     "separate modes (write first, then sweep)")
    try:
        if args.write_snapshot:
            header = write_warm_snapshot(
                args.write_snapshot, args.snapshot_dsa, args.profile,
                warm_cycles=args.warm_cycles, warm_frac=args.warm_frac)
            print(f"snapshot: {args.write_snapshot} "
                  f"model={header['model_class']} cycle={header['cycle']} "
                  f"digest={header['payload_sha256'][:12]}")
            return 0
        grid = parse_grid_entries(args.sweep_grid)
        points = sweep_points(grid) if grid else [{}]
        from ..sim.checkpoint import read_header

        header = read_header(args.sweep_from_snapshot)
        results = run_snapshot_sweep(args.sweep_from_snapshot, points)
        print(render_sweep(args.sweep_from_snapshot, header, results))
        return 0 if all(p.result.checks_passed for p in results) else 1
    except (SnapshotError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.harness",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*",
                        help=f"ids to run (default: all of "
                             f"{', '.join(sorted(EXPERIMENTS))})")
    parser.add_argument("--profile", default="full",
                        choices=("ci", "quick", "full"))
    parser.add_argument("--parallel", type=int, default=1, metavar="N",
                        help="fan experiments over N worker processes "
                             "(default: 1, serial)")
    parser.add_argument("--events", default=None, metavar="PATH.jsonl",
                        help="stream typed obs events as JSON lines "
                             "(per experiment: PATH.<exp_id>.jsonl)")
    parser.add_argument("--perfetto", default=None, metavar="PATH.json",
                        help="write a Chrome-trace/Perfetto file "
                             "(per experiment: PATH.<exp_id>.json)")
    parser.add_argument("--metrics-summary", action="store_true",
                        help="append an obs metrics summary (hit-rate, "
                             "latency percentiles) to each report")
    parser.add_argument("--prof", default=None, metavar="PATH.folded",
                        help="attribute walker cycles to (DSA, routine, "
                             "X-Action category): folded stacks per "
                             "experiment plus a breakdown table")
    parser.add_argument("--timeseries", default=None, metavar="PATH.csv",
                        help="windowed time-series metrics CSV "
                             "(per experiment: PATH.<exp_id>.csv)")
    parser.add_argument("--timeseries-window", type=int, default=1000,
                        metavar="CYCLES",
                        help="time-series window width (default: 1000)")
    parser.add_argument("--spans", default=None, metavar="PATH.json",
                        help="assemble request span trees; write the "
                             "SLO-gate summary (per experiment: "
                             "PATH.<exp_id>.json) and append the "
                             "why-slow blame table to each report")
    parser.add_argument("--explain-top", type=int, default=0, metavar="K",
                        help="drill down the K slowest requests in each "
                             "report (implies span assembly)")
    parser.add_argument("--watchdog", action="store_true",
                        help="append pathology warnings (livelock, MSHR "
                             "saturation, starvation) to each report")
    parser.add_argument("--misses", action="store_true",
                        help="classify misses (compulsory/capacity/"
                             "conflict + would-hit-if shadows) and "
                             "append the why-miss table to each report")
    parser.add_argument("--heatmap", default=None, metavar="PATH.csv",
                        help="write per-set occupancy/eviction heatmap "
                             "rows (per experiment: PATH.<exp_id>.csv; "
                             "implies --misses)")
    parser.add_argument("--heatmap-window", type=int, default=1000,
                        metavar="CYCLES",
                        help="heatmap window width (default: 1000)")
    parser.add_argument("--reuse-sample", type=int, default=8, metavar="N",
                        help="compute the reuse-distance scan on every "
                             "Nth access (default: 8; 1 = exact)")
    snap = parser.add_argument_group(
        "snapshot-fork sweeps",
        "warm one model once, then fork the snapshot into a grid of "
        "fork-safe config points (see repro.harness.sweep)")
    snap.add_argument("--write-snapshot", default=None, metavar="PATH.ckpt",
                      help="warm a model and write a snapshot, then exit")
    snap.add_argument("--snapshot-dsa", default="widx",
                      choices=("widx", "dasx", "sparch", "gamma",
                               "graphpulse"),
                      help="which DSA to warm for --write-snapshot")
    snap.add_argument("--warm-cycles", type=int, default=None,
                      metavar="CYCLES",
                      help="snapshot at this cycle (default: probe a "
                           "straight run and use --warm-frac of it)")
    snap.add_argument("--warm-frac", type=float, default=0.85,
                      help="snapshot point as a fraction of the straight "
                           "run (default: 0.85)")
    snap.add_argument("--sweep-from-snapshot", default=None,
                      metavar="PATH.ckpt",
                      help="fork this snapshot into every --sweep-grid "
                           "point and print one result line per point")
    snap.add_argument("--sweep-grid", action="append", default=[],
                      metavar="FIELD=V1,V2",
                      help="fork-safe override values (repeatable; "
                           "dram.* targets DRAM timing)")
    args = parser.parse_args(argv)
    if args.write_snapshot or args.sweep_from_snapshot:
        return _snapshot_mode(parser, args)
    if args.parallel < 1:
        parser.error("--parallel must be >= 1")
    if args.timeseries_window < 1:
        parser.error("--timeseries-window must be >= 1")
    if args.explain_top < 0:
        parser.error("--explain-top must be >= 0")
    if args.heatmap_window < 1:
        parser.error("--heatmap-window must be >= 1")
    if args.reuse_sample < 1:
        parser.error("--reuse-sample must be >= 1")

    targets = args.experiments or sorted(EXPERIMENTS)
    unknown = [t for t in targets if t not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment ids: {', '.join(unknown)}")

    capture = CaptureSpec(events_path=args.events,
                          perfetto_path=args.perfetto,
                          metrics=args.metrics_summary,
                          prof_path=args.prof,
                          timeseries_path=args.timeseries,
                          timeseries_window=args.timeseries_window,
                          spans_path=args.spans,
                          explain_top=args.explain_top,
                          watchdog=args.watchdog,
                          misses=args.misses,
                          heatmap_path=args.heatmap,
                          heatmap_window=args.heatmap_window,
                          reuse_sample=args.reuse_sample)
    if not capture.active:
        capture = None

    if args.parallel > 1:
        results = run_parallel(targets, args.profile, args.parallel,
                               capture=capture)
    else:
        results = run_serial(targets, args.profile, capture)

    all_ok = True
    for rendered, ok in results:
        print(rendered)
        print()
        all_ok = all_ok and ok
    return 0 if all_ok else 1


if __name__ == "__main__":
    sys.exit(main())
