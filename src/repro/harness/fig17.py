"""Figure 17 — X-Cache runtime vs Widx for varying on-chip fraction.

The paper sweeps the percentage of TPC-H-22's index that fits on-chip
(runtime normalized to the all-in-DRAM point) and shows the meta-tag
advantage *grows* with hit rate: a higher hit rate removes DRAM latency
from the critical path, and each remaining access costs 3 cycles in
X-Cache but index-compute + walk in Widx.

We sweep the on-chip capacity — X-Cache meta entries and the
equally-sized Widx address cache — as a fraction of the index.
"""

from __future__ import annotations

from dataclasses import replace

from ..dsa.widx import (
    WidxBaselineModel,
    WidxXCacheModel,
    matched_cache_config,
)
from .profiles import get_profile
from .report import ExperimentReport

__all__ = ["run"]

_FRACTIONS = (0.05, 0.15, 0.35, 0.7, 1.0)


def run(profile: str = "full") -> ExperimentReport:
    prof = get_profile(profile)
    # A long trace (6 probes per key) with mild skew, so capacity — the
    # swept variable — is what sets the hit rate at every point, rather
    # than a few hot keys fitting even the smallest cache.
    from ..workloads.tpch import make_widx_workload
    num_keys = prof.widx_keys // 2
    workload = make_widx_workload(
        num_keys=num_keys, num_probes=6 * num_keys,
        num_buckets=num_keys, skew=0.8,
        hash_cycles=4, miss_fraction=0.01, seed=prof.seed,
        name="TPC-H-22",
    )
    base_cfg = prof.xcache_config("widx")

    report = ExperimentReport(
        exp_id="fig17",
        title="Runtime vs Widx while sweeping the on-chip data fraction "
              "(TPC-H-22)",
        headers=["on-chip %", "xcache cyc", "widx cyc", "widx/xcache",
                 "xc hit rate", "widx hit rate"],
    )
    advantages = []
    for fraction in _FRACTIONS:
        sets = 1
        while sets * base_cfg.ways < fraction * num_keys:
            sets *= 2
        cfg = replace(base_cfg, sets=sets,
                      data_sectors=max(sets * base_cfg.ways, 64))
        xres = WidxXCacheModel(workload, config=cfg).run()
        bres = WidxBaselineModel(
            workload, num_walkers=8,
            cache_config=matched_cache_config(cfg)).run()
        adv = bres.cycles / max(1, xres.cycles)
        advantages.append(adv)
        report.rows.append([
            int(fraction * 100), xres.cycles, bres.cycles,
            round(adv, 2), round(xres.hit_rate, 2), round(bres.hit_rate, 2),
        ])

    report.expect(
        "advantage grows with on-chip fraction",
        "higher hit rate -> larger meta-tag benefit",
        advantages[-1] / max(advantages[0], 1e-9),
        advantages[-1] > advantages[0],
        detail=(f"{advantages[0]:.2f}x at {int(_FRACTIONS[0] * 100)}% -> "
                f"{advantages[-1]:.2f}x at 100%"),
    )
    report.expect(
        "X-Cache at least competitive at every point",
        "X-Cache wins across the sweep",
        min(advantages),
        min(advantages) >= 0.9,
    )
    return report
