"""Graph substrate for GraphPulse.

GraphPulse is an event-driven asynchronous graph processor: PEs emit
(vertex-id, delta) events; an on-chip event queue *coalesces* events to
the same vertex by adding their payloads. The paper replaces that event
queue with an X-Cache whose meta-tag is the vertex id.

This module provides the graph representation (CSR adjacency over a
memory image) plus reference event-driven PageRank used to validate the
DSA model and to generate realistic event streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..mem.layout import MemoryImage

__all__ = ["Graph", "GraphLayout", "pagerank_reference", "pagerank_event_driven"]


class Graph:
    """A directed graph in CSR (out-adjacency) form."""

    def __init__(self, num_vertices: int, edges: Iterable[Tuple[int, int]]) -> None:
        self.num_vertices = num_vertices
        adj: List[List[int]] = [[] for _ in range(num_vertices)]
        count = 0
        for src, dst in edges:
            if not (0 <= src < num_vertices and 0 <= dst < num_vertices):
                raise ValueError(f"edge ({src},{dst}) outside vertex range")
            adj[src].append(dst)
            count += 1
        self.indptr = [0] * (num_vertices + 1)
        self.indices: List[int] = []
        for v in range(num_vertices):
            adj[v].sort()
            self.indptr[v + 1] = self.indptr[v] + len(adj[v])
            self.indices.extend(adj[v])
        self.num_edges = count

    def out_neighbors(self, v: int) -> List[int]:
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    def out_degree(self, v: int) -> int:
        return self.indptr[v + 1] - self.indptr[v]

    def __repr__(self) -> str:  # pragma: no cover
        return f"Graph(V={self.num_vertices}, E={self.num_edges})"


@dataclass(frozen=True)
class GraphLayout:
    """CSR adjacency laid out in the memory image (u32 entries)."""

    num_vertices: int
    num_edges: int
    indptr_addr: int
    indices_addr: int
    rank_addr: int   # f64 per vertex: the PageRank accumulator array

    @classmethod
    def build(cls, image: MemoryImage, graph: Graph) -> "GraphLayout":
        indptr = image.alloc_u32_array(graph.indptr)
        indices = image.alloc_u32_array(graph.indices)
        rank = image.alloc_f64_array([0.0] * graph.num_vertices)
        return cls(graph.num_vertices, graph.num_edges, indptr, indices, rank)

    def indptr_entry(self, v: int) -> int:
        return self.indptr_addr + 4 * v

    def indices_entry(self, k: int) -> int:
        return self.indices_addr + 4 * k

    def rank_entry(self, v: int) -> int:
        return self.rank_addr + 8 * v


def pagerank_reference(graph: Graph, damping: float = 0.85,
                       iterations: int = 20) -> List[float]:
    """Synchronous power-iteration PageRank (ground truth)."""
    n = graph.num_vertices
    if n == 0:
        return []
    rank = [1.0 / n] * n
    base = (1.0 - damping) / n
    for _ in range(iterations):
        nxt = [base] * n
        for v in range(n):
            deg = graph.out_degree(v)
            if deg == 0:
                # Dangling mass is spread uniformly.
                share = damping * rank[v] / n
                for u in range(n):
                    nxt[u] += share
            else:
                share = damping * rank[v] / deg
                for u in graph.out_neighbors(v):
                    nxt[u] += share
    # note: power iteration recomputes from current ranks each sweep
        rank = nxt
    return rank


def pagerank_event_driven(graph: Graph, damping: float = 0.85,
                          epsilon: float = 1e-6,
                          max_events: int = 10_000_000) -> Tuple[List[float], int]:
    """Delta-based asynchronous PageRank (GraphPulse's algorithm).

    Each vertex holds an accumulated residual; processing a vertex folds
    its residual into its rank and emits ``damping · residual / degree``
    events to its out-neighbors. Returns (ranks, events_processed).
    """
    n = graph.num_vertices
    if n == 0:
        return [], 0
    rank = [0.0] * n
    residual = [(1.0 - damping) / n] * n
    active = list(range(n))
    in_queue = [True] * n
    processed = 0
    head = 0
    while head < len(active):
        v = active[head]
        head += 1
        in_queue[v] = False
        delta = residual[v]
        residual[v] = 0.0
        if delta <= epsilon:
            continue
        rank[v] += delta
        processed += 1
        if processed > max_events:
            raise RuntimeError("event-driven PageRank failed to converge")
        deg = graph.out_degree(v)
        if deg == 0:
            continue
        share = damping * delta / deg
        for u in graph.out_neighbors(v):
            residual[u] += share
            if not in_queue[u] and residual[u] > epsilon:
                in_queue[u] = True
                active.append(u)
        # Compact the worklist occasionally to bound memory.
        if head > 1_000_000:
            active = active[head:]
            head = 0
    return rank, processed
