"""Compressed sparse matrices (CSR/CSC) and reference SpGEMM algorithms.

SpArch streams the multiplier in CSC and caches rows of B stored in CSR;
Gamma (Gustavson) consumes A row-wise and fetches the corresponding rows
of B. Both DSA models in :mod:`repro.dsa` are validated against the
reference algorithms here, and the matrices can be *laid out* into a
:class:`~repro.mem.layout.MemoryImage` so walkers chase real ``row_ptr``
metadata (the paper's META access).

Layout of a CSR matrix in the image (all little-endian)::

    row_ptr : (rows + 1) × u32      -- element offsets
    col_idx : nnz × u32
    values  : nnz × f64
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..mem.layout import MemoryImage

__all__ = [
    "SparseMatrix",
    "CSRLayout",
    "spgemm_inner",
    "spgemm_outer",
    "spgemm_gustavson",
]


class SparseMatrix:
    """An immutable CSR sparse matrix of doubles.

    The same object serves as CSC by transposition: a matrix stored in
    CSC format is represented as the CSR of its transpose plus a flag at
    the use site. (The paper's SpArch streams A in CSC = columns of A =
    rows of Aᵀ.)
    """

    def __init__(self, rows: int, cols: int, indptr: Sequence[int],
                 indices: Sequence[int], values: Sequence[float]) -> None:
        if len(indptr) != rows + 1:
            raise ValueError(f"indptr length {len(indptr)} != rows+1 ({rows + 1})")
        if indptr[0] != 0 or indptr[-1] != len(indices):
            raise ValueError("indptr must start at 0 and end at nnz")
        if len(indices) != len(values):
            raise ValueError("indices/values length mismatch")
        for i in range(rows):
            if indptr[i] > indptr[i + 1]:
                raise ValueError(f"indptr not monotonic at row {i}")
        for j in indices:
            if not 0 <= j < cols:
                raise ValueError(f"column index {j} outside [0, {cols})")
        self.rows = rows
        self.cols = cols
        self.indptr = list(indptr)
        self.indices = list(indices)
        self.values = [float(v) for v in values]

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_triplets(cls, rows: int, cols: int,
                      triplets: Iterable[Tuple[int, int, float]]) -> "SparseMatrix":
        """Build from (row, col, value) triplets; duplicates are summed."""
        cells: Dict[Tuple[int, int], float] = {}
        for r, c, v in triplets:
            if not (0 <= r < rows and 0 <= c < cols):
                raise ValueError(f"triplet ({r},{c}) outside {rows}x{cols}")
            cells[(r, c)] = cells.get((r, c), 0.0) + float(v)
        indptr = [0] * (rows + 1)
        ordered = sorted(cells.items())
        indices = []
        values = []
        for (r, c), v in ordered:
            indptr[r + 1] += 1
            indices.append(c)
            values.append(v)
        for i in range(rows):
            indptr[i + 1] += indptr[i]
        return cls(rows, cols, indptr, indices, values)

    @classmethod
    def from_dense(cls, dense: Sequence[Sequence[float]]) -> "SparseMatrix":
        rows = len(dense)
        cols = len(dense[0]) if rows else 0
        trips = [(r, c, dense[r][c])
                 for r in range(rows) for c in range(cols) if dense[r][c] != 0.0]
        return cls.from_triplets(rows, cols, trips)

    @classmethod
    def identity(cls, n: int) -> "SparseMatrix":
        return cls(n, n, list(range(n + 1)), list(range(n)), [1.0] * n)

    # ------------------------------------------------------------------
    # views and basics
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return len(self.indices)

    def row(self, r: int) -> Tuple[List[int], List[float]]:
        """Column indices and values of row ``r``."""
        lo, hi = self.indptr[r], self.indptr[r + 1]
        return self.indices[lo:hi], self.values[lo:hi]

    def row_nnz(self, r: int) -> int:
        return self.indptr[r + 1] - self.indptr[r]

    def transpose(self) -> "SparseMatrix":
        """CSR of the transpose (equivalently: this matrix in CSC)."""
        counts = [0] * (self.cols + 1)
        for c in self.indices:
            counts[c + 1] += 1
        for i in range(self.cols):
            counts[i + 1] += counts[i]
        indptr = list(counts)
        indices = [0] * self.nnz
        values = [0.0] * self.nnz
        cursor = list(counts)
        for r in range(self.rows):
            for k in range(self.indptr[r], self.indptr[r + 1]):
                c = self.indices[k]
                pos = cursor[c]
                indices[pos] = r
                values[pos] = self.values[k]
                cursor[c] += 1
        return SparseMatrix(self.cols, self.rows, indptr, indices, values)

    def to_dense(self) -> List[List[float]]:
        dense = [[0.0] * self.cols for _ in range(self.rows)]
        for r in range(self.rows):
            for k in range(self.indptr[r], self.indptr[r + 1]):
                dense[r][self.indices[k]] += self.values[k]
        return dense

    def to_dict(self) -> Dict[Tuple[int, int], float]:
        out: Dict[Tuple[int, int], float] = {}
        for r in range(self.rows):
            for k in range(self.indptr[r], self.indptr[r + 1]):
                out[(r, self.indices[k])] = self.values[k]
        return out

    def equals(self, other: "SparseMatrix", tol: float = 1e-9) -> bool:
        if (self.rows, self.cols) != (other.rows, other.cols):
            return False
        a, b = self.to_dict(), other.to_dict()
        keys = set(a) | set(b)
        return all(abs(a.get(k, 0.0) - b.get(k, 0.0)) <= tol for k in keys)

    def __repr__(self) -> str:  # pragma: no cover
        return f"SparseMatrix({self.rows}x{self.cols}, nnz={self.nnz})"


# ----------------------------------------------------------------------
# reference SpGEMM algorithms (functional ground truth for the DSAs)
# ----------------------------------------------------------------------

def spgemm_inner(a: SparseMatrix, b: SparseMatrix) -> SparseMatrix:
    """Inner-product SpGEMM: C[i,j] = Σ_k A[i,k]·B[k,j].

    Walks A in CSR and B in CSC (Figure 2's DSA); every (i, j) pair
    intersects a row of A with a column of B.
    """
    if a.cols != b.rows:
        raise ValueError(f"shape mismatch {a.cols} != {b.rows}")
    bt = b.transpose()  # columns of B as rows
    trips: List[Tuple[int, int, float]] = []
    for i in range(a.rows):
        a_idx, a_val = a.row(i)
        if not a_idx:
            continue
        a_map = dict(zip(a_idx, a_val))
        for j in range(bt.rows):
            b_idx, b_val = bt.row(j)
            acc = 0.0
            hit = False
            for k, bv in zip(b_idx, b_val):
                av = a_map.get(k)
                if av is not None:
                    acc += av * bv
                    hit = True
            if hit and acc != 0.0:
                trips.append((i, j, acc))
    return SparseMatrix.from_triplets(a.rows, b.cols, trips)


def spgemm_outer(a: SparseMatrix, b: SparseMatrix) -> SparseMatrix:
    """Outer-product SpGEMM (SpArch): Σ_k col_k(A) ⊗ row_k(B)."""
    if a.cols != b.rows:
        raise ValueError(f"shape mismatch {a.cols} != {b.rows}")
    at = a.transpose()  # columns of A as rows
    trips: List[Tuple[int, int, float]] = []
    for k in range(at.rows):
        a_rows, a_vals = at.row(k)
        if not a_rows:
            continue
        b_cols, b_vals = b.row(k)
        for i, av in zip(a_rows, a_vals):
            for j, bv in zip(b_cols, b_vals):
                trips.append((i, j, av * bv))
    return SparseMatrix.from_triplets(a.rows, b.cols, trips)


def spgemm_gustavson(a: SparseMatrix, b: SparseMatrix) -> SparseMatrix:
    """Gustavson (row-wise) SpGEMM (Gamma): row_i(C) = Σ_k A[i,k]·row_k(B)."""
    if a.cols != b.rows:
        raise ValueError(f"shape mismatch {a.cols} != {b.rows}")
    trips: List[Tuple[int, int, float]] = []
    for i in range(a.rows):
        acc: Dict[int, float] = {}
        for kk in range(a.indptr[i], a.indptr[i + 1]):
            k = a.indices[kk]
            av = a.values[kk]
            for jj in range(b.indptr[k], b.indptr[k + 1]):
                j = b.indices[jj]
                acc[j] = acc.get(j, 0.0) + av * b.values[jj]
        for j, v in acc.items():
            if v != 0.0:
                trips.append((i, j, v))
    return SparseMatrix.from_triplets(a.rows, b.cols, trips)


# ----------------------------------------------------------------------
# memory-image layout
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CSRLayout:
    """Addresses of a CSR matrix laid out in a memory image.

    ``pairs_addr`` (optional) points to the *packed element array*: one
    16-byte record per nonzero — ``u32 col`` (padded to 8 B) + ``f64
    value`` — which is what the SpArch/Gamma row walker streams in. The
    paper's refill reads 12 B/element (4 B index + 8 B value); the 16 B
    packing keeps records block-friendly with the same traffic shape.
    """

    rows: int
    cols: int
    nnz: int
    row_ptr_addr: int
    col_idx_addr: int
    values_addr: int
    pairs_addr: int = 0

    ROW_PTR_BYTES = 4
    COL_IDX_BYTES = 4
    VALUE_BYTES = 8
    PAIR_BYTES = 16

    @classmethod
    def build(cls, image: MemoryImage, matrix: SparseMatrix,
              packed: bool = False) -> "CSRLayout":
        """Write ``matrix`` into ``image`` and return its addresses."""
        row_ptr = image.alloc_u32_array(matrix.indptr)
        col_idx = image.alloc_u32_array(matrix.indices)
        values = image.alloc_f64_array(matrix.values)
        pairs = 0
        if packed:
            pairs = image.alloc(cls.PAIR_BYTES * matrix.nnz, align=64)
            for k, (col, val) in enumerate(zip(matrix.indices, matrix.values)):
                image.write_u64(pairs + cls.PAIR_BYTES * k, col)
                image.write_f64(pairs + cls.PAIR_BYTES * k + 8, val)
        return cls(matrix.rows, matrix.cols, matrix.nnz, row_ptr, col_idx,
                   values, pairs)

    @staticmethod
    def parse_pairs(data: bytes) -> List[Tuple[int, float]]:
        """Decode a packed-pair byte string (a hit's data return)."""
        import struct as _struct
        out: List[Tuple[int, float]] = []
        for off in range(0, len(data) - 15, CSRLayout.PAIR_BYTES):
            col = int.from_bytes(data[off:off + 4], "little")
            (val,) = _struct.unpack_from("<d", data, off + 8)
            out.append((col, val))
        return out

    # -- address arithmetic the walkers perform ------------------------
    def row_ptr_entry(self, r: int) -> int:
        return self.row_ptr_addr + self.ROW_PTR_BYTES * r

    def col_idx_entry(self, k: int) -> int:
        return self.col_idx_addr + self.COL_IDX_BYTES * k

    def value_entry(self, k: int) -> int:
        return self.values_addr + self.VALUE_BYTES * k

    # -- functional readback (used for validation) ---------------------
    def read_row(self, image: MemoryImage, r: int) -> Tuple[List[int], List[float]]:
        lo = image.read_u32(self.row_ptr_entry(r))
        hi = image.read_u32(self.row_ptr_entry(r + 1))
        idx = [image.read_u32(self.col_idx_entry(k)) for k in range(lo, hi)]
        val = [image.read_f64(self.value_entry(k)) for k in range(lo, hi)]
        return idx, val
