"""Chained-bucket hash index laid out in the memory image.

This is the data structure Widx and DASX walk: a database hash index
mapping keys to RIDs (row ids). Buckets are singly linked lists of
nodes; the bucket-root table is a flat array of node pointers.

Node layout in the image (64 bytes, one per index entry)::

    +0   key      u64
    +8   rid      u64
    +16  next     u64   (address of next node, 0 = end of chain)
    +24  pad      (payload columns)

Nodes are block-sized and block-aligned: in a 100 GB database, index
entries carry payload and do not share DRAM blocks, so a node fill is
exactly one block ("the data fill ... is a single node").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..mem.layout import MemoryImage

__all__ = ["HashIndex", "fnv1a64"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def fnv1a64(key: int) -> int:
    """FNV-1a over the key's 8 little-endian bytes.

    Used as the index hash; the paper models expensive *string* hashing
    (TPC-H 19/20) as a latency parameter on top of this function.
    """
    h = _FNV_OFFSET
    for _ in range(8):
        h ^= key & 0xFF
        h = (h * _FNV_PRIME) & _MASK64
        key >>= 8
    return h


@dataclass(frozen=True)
class _Node:
    addr: int
    key: int
    rid: int
    next_addr: int


class HashIndex:
    """A chained hash index resident in a :class:`MemoryImage`."""

    NODE_BYTES = 64
    KEY_OFF = 0
    RID_OFF = 8
    NEXT_OFF = 16

    def __init__(self, image: MemoryImage, num_buckets: int) -> None:
        if num_buckets <= 0 or num_buckets & (num_buckets - 1):
            raise ValueError("num_buckets must be a positive power of two")
        self.image = image
        self.num_buckets = num_buckets
        self.table_addr = image.alloc(8 * num_buckets, align=64)
        self.num_entries = 0
        self._chain_lengths: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def bucket_of(self, key: int) -> int:
        return fnv1a64(key) & (self.num_buckets - 1)

    def bucket_root_entry(self, bucket: int) -> int:
        """Address of the root-pointer slot for ``bucket`` (the META access)."""
        return self.table_addr + 8 * bucket

    def insert(self, key: int, rid: int) -> int:
        """Insert at the head of the key's bucket; returns the node address."""
        bucket = self.bucket_of(key)
        root_entry = self.bucket_root_entry(bucket)
        old_head = self.image.read_u64(root_entry)
        node = self.image.alloc(self.NODE_BYTES, align=self.NODE_BYTES)
        self.image.write_u64(node + self.KEY_OFF, key)
        self.image.write_u64(node + self.RID_OFF, rid)
        self.image.write_u64(node + self.NEXT_OFF, old_head)
        self.image.write_u64(root_entry, node)
        self.num_entries += 1
        self._chain_lengths[bucket] = self._chain_lengths.get(bucket, 0) + 1
        return node

    @classmethod
    def build(cls, image: MemoryImage, pairs: Iterable[Tuple[int, int]],
              num_buckets: int) -> "HashIndex":
        index = cls(image, num_buckets)
        for key, rid in pairs:
            index.insert(key, rid)
        return index

    # ------------------------------------------------------------------
    # functional probes (ground truth for the DSA models)
    # ------------------------------------------------------------------
    def probe(self, key: int) -> Optional[int]:
        """Walk the chain for ``key``; returns the RID or None."""
        node, _ = self.probe_with_walk(key)
        return node

    def probe_with_walk(self, key: int) -> Tuple[Optional[int], List[int]]:
        """Like :meth:`probe` but also returns the node addresses touched.

        The walk list is what an address-based cache must fetch: the
        bucket-root entry is excluded (it is a table access), each node
        visited appears once.
        """
        bucket = self.bucket_of(key)
        current = self.image.read_u64(self.bucket_root_entry(bucket))
        walked: List[int] = []
        while current != MemoryImage.NULL:
            walked.append(current)
            if self.image.read_u64(current + self.KEY_OFF) == key:
                return self.image.read_u64(current + self.RID_OFF), walked
            current = self.image.read_u64(current + self.NEXT_OFF)
        return None, walked

    def chain_length(self, key: int) -> int:
        """Nodes in the key's bucket (walk length upper bound)."""
        return self._chain_lengths.get(self.bucket_of(key), 0)

    def load_factor(self) -> float:
        return self.num_entries / self.num_buckets

    def max_chain(self) -> int:
        return max(self._chain_lengths.values(), default=0)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"HashIndex(buckets={self.num_buckets}, "
                f"entries={self.num_entries}, max_chain={self.max_chain()})")
