"""Host data structures the DSAs traverse.

Each structure exists in two forms: a functional Python object (ground
truth for validation) and a layout in the flat memory image that the
walkers traverse address-by-address.
"""

from .csr import (
    CSRLayout,
    SparseMatrix,
    spgemm_gustavson,
    spgemm_inner,
    spgemm_outer,
)
from .btree import BTree
from .hashindex import HashIndex, fnv1a64
from .graphs import Graph, GraphLayout, pagerank_event_driven, pagerank_reference

__all__ = [
    "SparseMatrix",
    "CSRLayout",
    "spgemm_inner",
    "spgemm_outer",
    "spgemm_gustavson",
    "BTree",
    "HashIndex",
    "fnv1a64",
    "Graph",
    "GraphLayout",
    "pagerank_reference",
    "pagerank_event_driven",
]
