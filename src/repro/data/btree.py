"""A block-sized B-tree in the memory image (extension substrate).

DASX iterates software data structures beyond hash tables — vectors and
B-trees. The paper's evaluation uses the hash iterator; this module adds
the B-tree so the reproduction can demonstrate a *fourth* walker family
(see :func:`repro.dsa.walkers.build_btree_walker`): multi-way branching
inside one node, dispatching on node type, chasing child pointers.

Node layout — exactly one 64-byte DRAM block, 64-byte aligned:

Inner node::

    +0   flags   u64   (0 = inner)
    +8   key0    u64   \\
    +16  key1    u64    separators: child i holds keys < key_i;
    +24  key2    u64    unused separators are 2^64-1
    +32  child0  u64
    +40  child1  u64
    +48  child2  u64
    +56  child3  u64    (unused children are NULL)

Leaf node::

    +0   flags   u64   (1 = leaf)
    +8   key0    u64
    +16  key1    u64   (unused slots are 2^64-1)
    +24  key2    u64
    +32  val0    u64
    +40  val1    u64
    +48  val2    u64
    +56  pad
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..mem.layout import MemoryImage

__all__ = ["BTree"]

_EMPTY = (1 << 64) - 1   # sentinel for unused key slots


class BTree:
    """An immutable bulk-loaded B-tree (3 keys / 4 children per node)."""

    NODE_BYTES = 64
    FLAGS_OFF = 0
    KEY_OFF = 8            # keys at +8, +16, +24
    VAL_OFF = 32           # leaf values at +32, +40, +48
    CHILD_OFF = 32         # inner children at +32..+56
    LEAF_FLAG = 1
    LEAF_KEYS = 3
    FANOUT = 4

    def __init__(self, image: MemoryImage,
                 items: Iterable[Tuple[int, int]]) -> None:
        self.image = image
        self._items: Dict[int, int] = dict(items)
        for key in self._items:
            if not 0 <= key < _EMPTY:
                raise ValueError(f"key {key} outside storable range")
        self.height = 0
        self.num_nodes = 0
        self.root_addr = self._build()

    # ------------------------------------------------------------------
    # construction (bulk load, bottom-up)
    # ------------------------------------------------------------------
    def _alloc_node(self) -> int:
        self.num_nodes += 1
        return self.image.alloc(self.NODE_BYTES, align=self.NODE_BYTES)

    def _build(self) -> int:
        image = self.image
        ordered = sorted(self._items.items())
        if not ordered:
            addr = self._alloc_node()
            image.write_u64(addr + self.FLAGS_OFF, self.LEAF_FLAG)
            for i in range(self.LEAF_KEYS):
                image.write_u64(addr + self.KEY_OFF + 8 * i, _EMPTY)
            self.height = 1
            return addr

        # leaves
        level: List[Tuple[int, int]] = []   # (min_key, node_addr)
        for start in range(0, len(ordered), self.LEAF_KEYS):
            chunk = ordered[start:start + self.LEAF_KEYS]
            addr = self._alloc_node()
            image.write_u64(addr + self.FLAGS_OFF, self.LEAF_FLAG)
            for i in range(self.LEAF_KEYS):
                if i < len(chunk):
                    key, value = chunk[i]
                    image.write_u64(addr + self.KEY_OFF + 8 * i, key)
                    image.write_u64(addr + self.VAL_OFF + 8 * i, value)
                else:
                    image.write_u64(addr + self.KEY_OFF + 8 * i, _EMPTY)
            level.append((chunk[0][0], addr))
        self.height = 1

        # inner levels
        while len(level) > 1:
            next_level: List[Tuple[int, int]] = []
            for start in range(0, len(level), self.FANOUT):
                group = level[start:start + self.FANOUT]
                addr = self._alloc_node()
                image.write_u64(addr + self.FLAGS_OFF, 0)
                for i in range(self.FANOUT - 1):
                    sep = group[i + 1][0] if i + 1 < len(group) else _EMPTY
                    image.write_u64(addr + self.KEY_OFF + 8 * i, sep)
                for i in range(self.FANOUT):
                    child = group[i][1] if i < len(group) else 0
                    image.write_u64(addr + self.CHILD_OFF + 8 * i, child)
                next_level.append((group[0][0], addr))
            level = next_level
            self.height += 1
        return level[0][1]

    # ------------------------------------------------------------------
    # functional probes (ground truth)
    # ------------------------------------------------------------------
    def probe(self, key: int) -> Optional[int]:
        value, _path = self.probe_with_path(key)
        return value

    def probe_with_path(self, key: int) -> Tuple[Optional[int], List[int]]:
        """Value for ``key`` plus the node addresses visited root→leaf."""
        image = self.image
        addr = self.root_addr
        path: List[int] = []
        for _ in range(self.height + 1):
            path.append(addr)
            if image.read_u64(addr + self.FLAGS_OFF) & self.LEAF_FLAG:
                for i in range(self.LEAF_KEYS):
                    if image.read_u64(addr + self.KEY_OFF + 8 * i) == key:
                        return image.read_u64(addr + self.VAL_OFF + 8 * i), \
                            path
                return None, path
            child_index = self.FANOUT - 1
            for i in range(self.FANOUT - 1):
                if key < image.read_u64(addr + self.KEY_OFF + 8 * i):
                    child_index = i
                    break
            addr = image.read_u64(addr + self.CHILD_OFF + 8 * child_index)
            if addr == MemoryImage.NULL:
                return None, path
        raise RuntimeError("B-tree deeper than its recorded height")

    def keys(self) -> List[int]:
        return sorted(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"BTree(items={len(self._items)}, height={self.height}, "
                f"nodes={self.num_nodes})")
