"""Remote access to a :class:`~repro.svc.service.Service`.

The wire is :mod:`multiprocessing.connection` — a ``Listener`` on the
server, a fresh authenticated ``Client`` connection per request on the
client. That keeps the protocol a function call over pickled dicts (no
sockets-and-framing code, no web framework, nothing to install) while
still crossing machine boundaries on a LAN if asked.

Protocol: the client sends one request dict ``{"op": ..., ...}`` and
reads responses until the server closes. Every response carries
``"ok"``; an error response carries ``"error"`` plus a ``"kind"`` the
client maps back to the service's exception types (``busy`` →
:class:`~repro.svc.jobs.AdmissionBusy` with its ``retry_after``, so
remote backpressure behaves exactly like local backpressure). The
``watch`` op is the one streaming case: progress dicts arrive until a
``{"done": ...}`` terminator.

Security model: loopback by default, HMAC challenge via the connection
``authkey`` (set ``REPRO_SVC_AUTHKEY`` to share a secret). This is a
lab-network tool, not an internet-facing one.
"""

from __future__ import annotations

import os
import threading
from multiprocessing.connection import Client as _Client
from multiprocessing.connection import Listener
from typing import Any, Dict, Iterator, Optional, Tuple

from .jobs import AdmissionBusy, JobCancelled, JobFailed, JobSpec
from .service import Service

__all__ = ["ServiceServer", "ServiceClient", "default_authkey",
           "parse_address"]

AUTHKEY_ENV = "REPRO_SVC_AUTHKEY"


def default_authkey() -> bytes:
    return os.environ.get(AUTHKEY_ENV, "repro-svc").encode()


def parse_address(text: str) -> Tuple[str, int]:
    """``host:port`` → address tuple (host defaults to loopback)."""
    host, _, port = text.rpartition(":")
    return (host or "127.0.0.1", int(port))


class ServiceServer:
    """Expose a service on a listening socket; one thread per client."""

    def __init__(self, service: Service, host: str = "127.0.0.1",
                 port: int = 0, authkey: Optional[bytes] = None) -> None:
        self.service = service
        self._listener = Listener((host, port), authkey=authkey
                                  or default_authkey())
        self._threads: list = []
        self._stop = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._listener.address  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServiceServer":
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-svc-accept", daemon=True)
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(2.0)
            self._accept_thread = None

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn = self._listener.accept()
            except (OSError, EOFError, Exception):
                if self._stop.is_set():
                    return
                continue
            thread = threading.Thread(target=self._serve_one, args=(conn,),
                                      name="repro-svc-conn", daemon=True)
            thread.start()
            self._threads.append(thread)

    def _serve_one(self, conn) -> None:
        try:
            request = conn.recv()
            handler = getattr(self, f"_op_{request.get('op')}", None)
            if handler is None:
                conn.send({"ok": False, "kind": "protocol",
                           "error": f"unknown op {request.get('op')!r}"})
                return
            handler(conn, request)
        except (EOFError, BrokenPipeError, OSError):
            pass  # client went away mid-request
        except Exception as exc:  # pragma: no cover - defensive
            try:
                conn.send({"ok": False, "kind": "internal",
                           "error": f"{type(exc).__name__}: {exc}"})
            except (BrokenPipeError, OSError):
                pass
        finally:
            conn.close()

    # -- ops -----------------------------------------------------------
    def _op_submit(self, conn, request: dict) -> None:
        try:
            job = self.service.submit(request["spec"])
        except AdmissionBusy as busy:
            conn.send({"ok": False, "kind": "busy", "error": str(busy),
                       "retry_after": busy.retry_after,
                       "pending": busy.pending})
            return
        except ValueError as exc:
            conn.send({"ok": False, "kind": "invalid", "error": str(exc)})
            return
        response = {"ok": True, "job": job.status()}
        if request.get("wait"):
            job.wait(request.get("timeout"))
            response = {"ok": True, "job": job.status()}
        conn.send(response)

    def _find(self, conn, request: dict):
        job = self.service.jobs.get(request.get("job"))
        if job is None:
            conn.send({"ok": False, "kind": "unknown-job",
                       "error": f"no job {request.get('job')!r}"})
        return job

    def _op_status(self, conn, request: dict) -> None:
        job = self._find(conn, request)
        if job is not None:
            conn.send({"ok": True, "job": job.status()})

    def _op_result(self, conn, request: dict) -> None:
        job = self._find(conn, request)
        if job is None:
            return
        if not job.wait(request.get("timeout")):
            conn.send({"ok": False, "kind": "timeout",
                       "error": f"job {job.id} still {job.state.value}"})
            return
        try:
            payload = job.result(0)
        except (JobFailed, JobCancelled) as exc:
            kind = ("cancelled" if isinstance(exc, JobCancelled)
                    else "failed")
            conn.send({"ok": False, "kind": kind, "error": str(exc)})
            return
        conn.send({"ok": True, "job": job.status(), "result": payload})

    def _op_cancel(self, conn, request: dict) -> None:
        job = self._find(conn, request)
        if job is not None:
            conn.send({"ok": True, "cancelled": self.service.cancel(job),
                       "job": job.status()})

    def _op_metrics(self, conn, request: dict) -> None:
        response: Dict[str, Any] = {"ok": True,
                                    "metrics": self.service.metrics()}
        if request.get("prom"):
            try:
                response["prom"] = self.service.prometheus()
            except RuntimeError as exc:
                conn.send({"ok": False, "kind": "invalid",
                           "error": str(exc)})
                return
        conn.send(response)

    def _op_history(self, conn, request: dict) -> None:
        if self.service.ledger is None:
            conn.send({"ok": False, "kind": "invalid",
                       "error": "service has no run ledger (start it "
                                "with --ledger or REPRO_SVC_LEDGER)"})
            return
        limit = int(request.get("limit") or 0)
        conn.send({"ok": True, "entries": self.service.history(limit)})

    def _op_watch(self, conn, request: dict) -> None:
        """Stream progress payloads until the job finishes."""
        job = self._find(conn, request)
        if job is None:
            return
        conn.send({"ok": True, "job": job.status()})
        sub = self.service.subscribe(job)
        for payload in sub:
            conn.send({"ok": True, "progress": payload})
        conn.send({"ok": True, "done": job.status(),
                   "dropped": sub.dropped})


class ServiceClient:
    """Talk to a :class:`ServiceServer` (one connection per call)."""

    def __init__(self, address: Tuple[str, int],
                 authkey: Optional[bytes] = None) -> None:
        self.address = address
        self.authkey = authkey or default_authkey()

    def _call(self, request: dict) -> dict:
        conn = _Client(self.address, authkey=self.authkey)
        try:
            conn.send(request)
            response = conn.recv()
        finally:
            conn.close()
        return self._raise_for(response)

    @staticmethod
    def _raise_for(response: dict) -> dict:
        if response.get("ok"):
            return response
        kind = response.get("kind")
        if kind == "busy":
            raise AdmissionBusy(response["retry_after"], response["pending"])
        if kind == "failed":
            raise JobFailed(response["error"])
        if kind == "cancelled":
            raise JobCancelled(response["error"])
        if kind == "timeout":
            raise TimeoutError(response["error"])
        if kind == "invalid":
            raise ValueError(response["error"])
        raise RuntimeError(f"[{kind}] {response.get('error')}")

    # ------------------------------------------------------------------
    # api
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec, wait: bool = False,
               timeout: Optional[float] = None) -> Dict[str, Any]:
        """Submit a spec; returns the job status dict (its ``job`` field
        is the id every other call takes)."""
        return self._call({"op": "submit", "spec": spec, "wait": wait,
                           "timeout": timeout})["job"]

    def status(self, job_id: int) -> Dict[str, Any]:
        return self._call({"op": "status", "job": job_id})["job"]

    def result(self, job_id: int,
               timeout: Optional[float] = None) -> Dict[str, Any]:
        """Block for the result payload; raises like ``Job.result``."""
        return self._call({"op": "result", "job": job_id,
                           "timeout": timeout})["result"]

    def cancel(self, job_id: int) -> bool:
        return self._call({"op": "cancel", "job": job_id})["cancelled"]

    def metrics(self, prom: bool = False) -> Dict[str, Any]:
        """The service metrics dict; with ``prom=True`` the response
        also carries the Prometheus exposition under ``"prom"``."""
        response = self._call({"op": "metrics", "prom": prom})
        if prom:
            return {"metrics": response["metrics"],
                    "prom": response["prom"]}
        return response["metrics"]

    def history(self, limit: int = 0) -> list:
        """The server's run-ledger entries (last ``limit`` if > 0)."""
        return self._call({"op": "history", "limit": limit})["entries"]

    def watch(self, job_id: int) -> Iterator[Dict[str, Any]]:
        """Yield progress dicts as the job runs; the final yield is
        ``{"done": <status>, "dropped": N}``."""
        conn = _Client(self.address, authkey=self.authkey)
        try:
            conn.send({"op": "watch", "job": job_id})
            self._raise_for(conn.recv())
            while True:
                response = self._raise_for(conn.recv())
                if "done" in response:
                    yield {"done": response["done"],
                           "dropped": response.get("dropped", 0)}
                    return
                yield response["progress"]
        finally:
            conn.close()
