"""Host-time observability for the service plane (``repro.svc.telemetry``).

The simulated machine has deep observability (the ``repro.obs`` event
bus, profiler, span trees, critical-path SLO gates) — all measured in
*simulated cycles*. The service that actually runs jobs lives in host
wall-clock time, and this module is its observability plane:

* :class:`MetricsRegistry` — a lock-cheap counter/gauge/summary registry
  covering queue depth, admission rejects, worker restarts, store
  hit/miss/coalesced, and per-experiment job latency percentiles
  (p50/p95/p99 via the same sparse-histogram machinery
  :class:`~repro.sim.stats.StatGroup` uses for simulated latencies).
  Snapshots are JSON-able, merge deterministically (sharded services,
  ``--parallel`` fan-outs), and render as Prometheus text exposition.
* :class:`JobSpan` — the per-job lifecycle span: monotonic host
  timestamps stamped at every transition (submitted → admitted →
  dispatched → running → stored/failed/retried) assembled into an exact
  wall-clock latency split ``{queue_wait, dispatch, sim_exec,
  store_write}`` that tiles ``[admitted, finished)`` by construction —
  the service-plane mirror of :mod:`repro.obs.critpath`, in seconds
  instead of cycles.
* :class:`RunLedger` — an append-only JSONL audit log of every job:
  spec digest, timings, result digest, worker id, and the retry chain.
  Written by the coordinator *outside* the event path (the same
  Checkpointer-vs-EventProcessor discipline the result store follows),
  replayable by ``python -m repro.svc history`` and drillable by
  ``python -m repro.obs.explain --ledger L.jsonl --job N`` straight
  into the job's *simulated* critical path via its recorded capture.
* :class:`MetricsHTTPServer` — the registry over a stdlib
  ``http.server`` endpoint (``GET /metrics``, Prometheus text format),
  armed with ``python -m repro.svc serve --metrics-port``.
* :func:`render_top` — the frame renderer behind ``python -m repro.svc
  top``, a live ANSI terminal view over the remote metrics snapshot.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .store import canonical_json

__all__ = [
    "MetricsRegistry",
    "JobSpan",
    "RunLedger",
    "MetricsHTTPServer",
    "render_prometheus",
    "merge_snapshots",
    "render_top",
    "QUANTILES",
    "LEDGER_ENV",
]

#: environment default for the service run ledger path ("" = off)
LEDGER_ENV = "REPRO_SVC_LEDGER"

#: quantiles exposed for every summary metric
QUANTILES = (0.5, 0.95, 0.99)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _quantize_us(value_us: int) -> int:
    """Round a microsecond value to 2 significant digits.

    Bounds the summary bucket count (≤ ~90 buckets per decade) so a
    service that runs for days cannot grow a histogram without limit,
    while keeping quantiles within 1% of exact.
    """
    if value_us <= 0:
        return 0
    scale = 10 ** max(0, int(math.floor(math.log10(value_us))) - 1)
    return (value_us // scale) * scale


class _Summary:
    """Sparse quantized histogram over microsecond buckets.

    The same sorted-bucket/weighted-count machinery as
    :class:`repro.sim.stats.Histogram` (which backs the simulated-cycle
    percentiles), specialised to wall-clock seconds: observations are
    quantized microseconds, quantiles come back in seconds.
    """

    __slots__ = ("buckets", "count", "sum_us")

    def __init__(self) -> None:
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.sum_us = 0

    def observe(self, seconds: float) -> None:
        us = _quantize_us(int(round(seconds * 1e6)))
        self.buckets[us] = self.buckets.get(us, 0) + 1
        self.count += 1
        self.sum_us += us

    def quantile(self, q: float) -> float:
        if not self.count:
            return 0.0
        need = q * self.count
        seen = 0
        for value in sorted(self.buckets):
            seen += self.buckets[value]
            if seen >= need:
                return value / 1e6
        return max(self.buckets) / 1e6

    def as_jsonable(self) -> dict:
        return {"count": self.count, "sum_us": self.sum_us,
                "buckets": sorted(self.buckets.items())}

    @classmethod
    def from_jsonable(cls, data: Mapping) -> "_Summary":
        out = cls()
        out.count = int(data.get("count", 0))
        out.sum_us = int(data.get("sum_us", 0))
        out.buckets = {int(v): int(w) for v, w in data.get("buckets", ())}
        return out

    def merge(self, other: "_Summary") -> None:
        for value, weight in other.buckets.items():
            self.buckets[value] = self.buckets.get(value, 0) + weight
        self.count += other.count
        self.sum_us += other.sum_us


class MetricsRegistry:
    """Counters, gauges, and latency summaries for the service plane.

    One lock, taken per service-rate operation (job transitions, store
    lookups, scrapes) — never per simulated event, so the registry costs
    nothing on the simulation hot path. Metric families are declared
    with :meth:`counter` / :meth:`gauge` / :meth:`summary` (idempotent;
    declaring pre-registers a zero-valued series so exposition includes
    the metric before its first increment), and bumped with
    :meth:`inc` / :meth:`set` / :meth:`observe`. Label sets are
    canonicalized, so two processes bumping the same series merge
    losslessly via :func:`merge_snapshots`.
    """

    def __init__(self, namespace: str = "repro_svc") -> None:
        self.namespace = namespace
        self._lock = threading.Lock()
        # name -> {"type", "help", "series": {label_items: value|_Summary}}
        self._families: Dict[str, dict] = {}

    # ------------------------------------------------------------------
    # declaration
    # ------------------------------------------------------------------
    def _declare(self, name: str, kind: str, help_text: str) -> dict:
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = {
                "type": kind, "help": help_text, "series": {}}
            if kind in ("counter", "gauge"):
                family["series"][()] = 0
        elif family["type"] != kind:
            raise ValueError(
                f"metric {name!r} already declared as {family['type']}")
        return family

    def counter(self, name: str, help_text: str = "") -> "MetricsRegistry":
        with self._lock:
            self._declare(name, "counter", help_text)
        return self

    def gauge(self, name: str, help_text: str = "") -> "MetricsRegistry":
        with self._lock:
            self._declare(name, "gauge", help_text)
        return self

    def summary(self, name: str, help_text: str = "") -> "MetricsRegistry":
        with self._lock:
            self._declare(name, "summary", help_text)
        return self

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: Union[int, float] = 1,
            **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            family = self._declare(name, "counter", "")
            series = family["series"]
            series[key] = series.get(key, 0) + amount

    def set(self, name: str, value: Union[int, float],
            **labels: Any) -> None:
        """Set a gauge — or pin a counter to an externally maintained
        monotonic total (how store stats sync into the scrape)."""
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = self._declare(name, "gauge", "")
            family["series"][key] = value

    def observe(self, name: str, seconds: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            family = self._declare(name, "summary", "")
            series = family["series"]
            summary = series.get(key)
            if summary is None:
                summary = series[key] = _Summary()
            summary.observe(seconds)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def value(self, name: str, default: Union[int, float] = 0,
              **labels: Any) -> Union[int, float]:
        with self._lock:
            family = self._families.get(name)
            if family is None or family["type"] == "summary":
                return default
            return family["series"].get(_label_key(labels), default)

    def snapshot(self) -> Dict[str, dict]:
        """A JSON-able copy of every family (the wire/merge format)."""
        with self._lock:
            out: Dict[str, dict] = {}
            for name in sorted(self._families):
                family = self._families[name]
                series = []
                for key in sorted(family["series"]):
                    value = family["series"][key]
                    if isinstance(value, _Summary):
                        value = value.as_jsonable()
                    series.append([list(map(list, key)), value])
                out[name] = {"type": family["type"],
                             "help": family["help"], "series": series}
            return out

    def render(self) -> str:
        return render_prometheus(self.snapshot(), namespace=self.namespace)

    def load(self, snapshot: Mapping[str, dict]) -> None:
        """Replace this registry's contents with a snapshot's (used to
        rebuild a registry from a merged snapshot)."""
        with self._lock:
            self._families = _families_from_snapshot(snapshot)


def _families_from_snapshot(snapshot: Mapping[str, dict]) -> Dict[str, dict]:
    families: Dict[str, dict] = {}
    for name, family in snapshot.items():
        series: Dict[LabelItems, Any] = {}
        for key, value in family.get("series", ()):
            items = tuple((str(k), str(v)) for k, v in key)
            if family.get("type") == "summary":
                value = _Summary.from_jsonable(value)
            series[items] = value
        families[name] = {"type": family.get("type", "counter"),
                          "help": family.get("help", ""), "series": series}
    return families


def merge_snapshots(snapshots: Sequence[Mapping[str, dict]]
                    ) -> Dict[str, dict]:
    """Merge registry snapshots deterministically.

    Counters and summaries accumulate; gauges take the maximum (a gauge
    is a point-in-time reading, so "max across shards" is the only
    order-independent choice that never hides saturation). The result
    is independent of snapshot order — the property the ``--parallel``
    merge test pins.
    """
    merged = MetricsRegistry()
    families = merged._families
    for snap in snapshots:
        for name, incoming in _families_from_snapshot(snap).items():
            family = families.get(name)
            if family is None:
                families[name] = incoming
                continue
            kind = family["type"]
            for key, value in incoming["series"].items():
                mine = family["series"].get(key)
                if mine is None:
                    family["series"][key] = value
                elif kind == "summary":
                    mine.merge(value)
                elif kind == "gauge":
                    family["series"][key] = max(mine, value)
                else:
                    family["series"][key] = mine + value
            if incoming["help"] and not family["help"]:
                family["help"] = incoming["help"]
    return merged.snapshot()


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")

def _escape_label(text: str) -> str:
    return (text.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _format_labels(items: Iterable[Sequence[str]]) -> str:
    parts = [f'{k}="{_escape_label(str(v))}"' for k, v in items]
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: Union[int, float]) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def render_prometheus(snapshot: Mapping[str, dict],
                      namespace: str = "repro_svc") -> str:
    """Render a registry snapshot as Prometheus text format (0.0.4).

    Deterministic: families alphabetical, series by sorted label items,
    summaries expose the :data:`QUANTILES` plus ``_sum``/``_count``.
    """
    lines: List[str] = []
    prefix = f"{namespace}_" if namespace else ""
    for name in sorted(snapshot):
        family = snapshot[name]
        full = f"{prefix}{name}"
        if family.get("help"):
            lines.append(f"# HELP {full} {_escape_help(family['help'])}")
        lines.append(f"# TYPE {full} {family.get('type', 'counter')}")
        for key, value in family.get("series", ()):
            if family.get("type") == "summary":
                summary = (value if isinstance(value, _Summary)
                           else _Summary.from_jsonable(value))
                for q in QUANTILES:
                    labels = _format_labels(
                        list(key) + [("quantile", f"{q:g}")])
                    lines.append(
                        f"{full}{labels} "
                        f"{_format_value(summary.quantile(q))}")
                tail = _format_labels(key)
                lines.append(f"{full}_sum{tail} "
                             f"{_format_value(summary.sum_us / 1e6)}")
                lines.append(f"{full}_count{tail} {summary.count}")
            else:
                lines.append(
                    f"{full}{_format_labels(key)} {_format_value(value)}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# per-job lifecycle spans
# ----------------------------------------------------------------------

class JobSpan:
    """Wall-clock lifecycle span of one service job.

    Monotonic timestamps are stamped by the coordinator at each
    transition; the split tiles ``[admitted, finished)`` *exactly*:

    * ``queue_wait``   — admitted → (last) dispatch to a worker;
    * ``sim_exec``     — the worker-measured execution time
      (``duration_s``, a ``perf_counter`` duration on the worker);
    * ``store_write``  — the coordinator's result-store write;
    * ``dispatch``     — everything else crossing the pool boundary:
      the dispatch pipe send, the worker picking the job up, the result
      pipe transfer and coordinator poll latency. Computed as the
      residual, so the four buckets always sum to ``end_to_end``. A
      crash-retried job's lost attempt lands here too (the simulation
      time that produced no result is service overhead, not exec).

    Preemption annotations (``ckpt:`` jobs) ride alongside the split
    without changing it: ``checkpoints`` (resume checkpoints persisted),
    ``resumed_from`` (the simulated cycle the final attempt resumed at;
    0 = started from scratch) and ``preempted_at`` (the last checkpoint
    cycle a dead attempt had persisted, ``None`` if never preempted).
    The tiling invariant is untouched — a preempted job's lost attempt
    still lands in the ``dispatch`` residual.
    """

    __slots__ = ("job_id", "digest", "experiment", "state", "submitted",
                 "admitted", "dispatched", "finished", "sim_exec",
                 "store_write", "from_store", "checkpoints",
                 "resumed_from", "preempted_at")

    def __init__(self, job_id: int, digest: str, experiment: str) -> None:
        self.job_id = job_id
        self.digest = digest
        self.experiment = experiment
        self.state = "pending"
        self.submitted: Optional[float] = None
        self.admitted: Optional[float] = None
        self.dispatched: Optional[float] = None
        self.finished: Optional[float] = None
        self.sim_exec: float = 0.0
        self.store_write: float = 0.0
        self.from_store = False
        self.checkpoints = 0
        self.resumed_from = 0
        self.preempted_at: Optional[int] = None

    @property
    def end_to_end(self) -> float:
        if self.admitted is None or self.finished is None:
            return 0.0
        return self.finished - self.admitted

    @property
    def queue_wait(self) -> float:
        if self.admitted is None or self.dispatched is None:
            return 0.0
        return self.dispatched - self.admitted

    @property
    def dispatch(self) -> float:
        return (self.end_to_end - self.queue_wait - self.sim_exec
                - self.store_write)

    def split(self) -> Dict[str, float]:
        """The exact latency split; sums to :attr:`end_to_end`."""
        return {"queue_wait": self.queue_wait, "dispatch": self.dispatch,
                "sim_exec": self.sim_exec, "store_write": self.store_write}


# ----------------------------------------------------------------------
# run ledger
# ----------------------------------------------------------------------

class RunLedger:
    """Append-only JSONL audit log of finished jobs.

    One canonical-JSON line per terminal job state, flushed per entry so
    a crashed coordinator loses at most the in-flight line. Writing
    happens from the coordinator loop (or a client thread resolving a
    store hit) — never from a worker, never from a simulation event
    handler — per the Checkpointer-vs-EventProcessor discipline.
    """

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._fh = open(self.path, "a", encoding="utf-8")
        self.written = 0

    def record(self, entry: Mapping[str, Any]) -> None:
        line = canonical_json(dict(entry))
        with self._lock:
            self._fh.write(line + "\n")
            self._fh.flush()
            self.written += 1

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    # -- replay --------------------------------------------------------
    @staticmethod
    def read(path: Union[str, os.PathLike]) -> List[Dict[str, Any]]:
        """Parse a ledger file back into entry dicts (bad lines — e.g.
        a torn final write — are skipped, not fatal)."""
        entries: List[Dict[str, Any]] = []
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict):
                    entries.append(record)
        return entries

    @staticmethod
    def find_job(path: Union[str, os.PathLike],
                 job_id: int) -> Optional[Dict[str, Any]]:
        """The last ledger entry for ``job_id`` (last wins: a resubmit
        after service restart may reuse ids)."""
        found = None
        for entry in RunLedger.read(path):
            if entry.get("job") == job_id:
                found = entry
        return found


def format_history(entries: Sequence[Mapping[str, Any]],
                   limit: int = 0) -> str:
    """Render ledger entries as the ``svc history`` table."""
    if limit:
        entries = list(entries)[-limit:]
    lines = [f"{'job':>5} {'state':<9} {'experiment':<12} "
             f"{'e2e_s':>8} {'queue_s':>8} {'exec_s':>8} "
             f"{'attempts':>8} {'workers':<10} digest"]
    for e in entries:
        timings = e.get("timings") or {}
        workers = ",".join(str(w) for w in e.get("worker_history", ()))
        lines.append(
            f"{e.get('job', '?'):>5} {e.get('state', '?'):<9} "
            f"{e.get('experiment', '?'):<12} "
            f"{timings.get('end_to_end', 0):>8.3f} "
            f"{timings.get('queue_wait', 0):>8.3f} "
            f"{timings.get('sim_exec', 0):>8.3f} "
            f"{e.get('attempts', 0):>8} {workers or '-':<10} "
            f"{str(e.get('digest', ''))[:12]}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Prometheus HTTP endpoint
# ----------------------------------------------------------------------

class MetricsHTTPServer:
    """Serve ``GET /metrics`` from a render callable (stdlib only).

    ``provider`` returns the exposition text per scrape (the service
    refreshes its gauges inside it), so the endpoint is always current
    without any background sampling thread.
    """

    def __init__(self, provider: Callable[[], str],
                 host: str = "127.0.0.1", port: int = 0) -> None:
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
                if self.path.split("?", 1)[0] not in ("/metrics", "/"):
                    self.send_error(404)
                    return
                try:
                    body = outer.provider().encode("utf-8")
                except Exception as exc:  # pragma: no cover - defensive
                    self.send_error(500, str(exc))
                    return
                self.send_response(200)
                self.send_header(
                    "Content-Type",
                    "text/plain; version=0.0.4; charset=utf-8")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # silence per-scrape logs
                pass

        self.provider = provider
        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.server_address[:2]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    def start(self) -> "MetricsHTTPServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-svc-metrics", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(2.0)
            self._thread = None


# ----------------------------------------------------------------------
# `svc top` frame rendering
# ----------------------------------------------------------------------

_CLEAR = "\x1b[H\x1b[2J"
_BOLD = "\x1b[1m"
_DIM = "\x1b[2m"
_RESET = "\x1b[0m"

_WORKER_GLYPH = {"idle": ".", "busy": "#", "booting": "~", "dead": "x"}


def _snapshot_value(snapshot: Mapping[str, dict], name: str,
                    default: Union[int, float] = 0) -> Union[int, float]:
    family = snapshot.get(name)
    if not family:
        return default
    total: Union[int, float] = 0
    seen = False
    for _key, value in family.get("series", ()):
        if isinstance(value, (int, float)):
            total += value
            seen = True
    return total if seen else default


def _snapshot_summary(snapshot: Mapping[str, dict],
                      name: str) -> _Summary:
    merged = _Summary()
    family = snapshot.get(name) or {}
    for _key, value in family.get("series", ()):
        if isinstance(value, Mapping):
            merged.merge(_Summary.from_jsonable(value))
    return merged


def render_top(metrics: Mapping[str, Any],
               previous: Optional[Mapping[str, Any]] = None,
               dt: float = 0.0, address: str = "",
               color: bool = True, clear: bool = True) -> str:
    """Render one ``svc top`` frame from a ``Service.metrics()`` dict.

    ``previous``/``dt`` (the prior poll and the seconds between) turn
    the monotonic counters into rates: jobs/s completed and events
    streamed since the last frame. Pure function — the CLI loop owns
    polling and timing, tests feed it fabricated snapshots.
    """
    bold, dim, reset = (_BOLD, _DIM, _RESET) if color else ("", "", "")
    snap = metrics.get("telemetry") or {}
    prev_snap = (previous or {}).get("telemetry") or {}

    completed = metrics.get("completed", 0)
    rate = 0.0
    if previous is not None and dt > 0:
        rate = max(0.0, (completed - previous.get("completed", 0)) / dt)

    store = metrics.get("store") or {}
    hits = store.get("hits", 0)
    lookups = hits + store.get("misses", 0)
    hit_rate = (100.0 * hits / lookups) if lookups else 0.0

    latency = _snapshot_summary(snap, "job_latency_seconds")
    queue_wait = _snapshot_summary(snap, "job_queue_wait_seconds")

    workers = metrics.get("workers") or []
    strip = "".join(_WORKER_GLYPH.get(w.get("state"), "?")
                    for w in workers)
    busy = sum(1 for w in workers if w.get("state") == "busy")

    lines = []
    if clear:
        lines.append(_CLEAR.rstrip("\n"))
    title = "repro.svc top"
    if address:
        title += f" — {address}"
    lines.append(f"{bold}{title}{reset}")
    lines.append(
        f"jobs      submitted={metrics.get('submitted', 0)} "
        f"completed={completed} failed={metrics.get('failed', 0)} "
        f"cancelled={metrics.get('cancelled', 0)} "
        f"rejected={metrics.get('rejected', 0)} "
        f"retries={metrics.get('retries', 0)}")
    lines.append(
        f"queue     depth={metrics.get('pending', 0)} "
        f"running={metrics.get('running', 0)} "
        f"throughput={rate:.2f} jobs/s")
    lines.append(
        f"latency   p50={latency.quantile(0.5):.3f}s "
        f"p95={latency.quantile(0.95):.3f}s "
        f"p99={latency.quantile(0.99):.3f}s (n={latency.count}) | "
        f"queue-wait p99={queue_wait.quantile(0.99):.3f}s")
    lines.append(
        f"store     hit-rate={hit_rate:.1f}% hits={hits} "
        f"misses={store.get('misses', 0)} "
        f"coalesced={metrics.get('coalesced', 0)} "
        f"stores={store.get('stores', 0)}")
    restarts = metrics.get("worker_restarts", 0)
    dropped = int(_snapshot_value(snap, "stream_dropped_total"))
    lines.append(
        f"workers   [{strip}] busy={busy}/{len(workers)} "
        f"restarts={restarts} stream-drops={dropped}")
    watchdog = metrics.get("watchdog") or {}
    if watchdog:
        kinds = " ".join(f"{k}={v}" for k, v in sorted(watchdog.items()))
        lines.append(f"watchdog  {kinds}")
    for w in workers:
        lines.append(
            f"{dim}  worker {w.get('worker')}: {w.get('state'):<8} "
            f"pid={w.get('pid')} jobs={w.get('jobs_done', 0)} "
            f"warnings={w.get('warnings', 0)} "
            f"job={w.get('job') if w.get('job') is not None else '-'}"
            f"{reset}")
    del prev_snap  # rates beyond completed/s not needed yet
    return "\n".join(lines) + "\n"
