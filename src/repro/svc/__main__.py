"""CLI: ``python -m repro.svc <serve|submit|status|result|cancel|metrics|sweep|history|top>``.

Quickstart (two terminals)::

    $ python -m repro.svc serve --workers 2 --store /tmp/repro-results
    repro.svc listening on 127.0.0.1:41739 (2 workers)

    $ python -m repro.svc submit fig04 --profile ci \\
          --connect 127.0.0.1:41739 --wait
    $ python -m repro.svc metrics --connect 127.0.0.1:41739

Or all-in-one — ``sweep --local`` spins up a private service, fans a
parameter grid into jobs, and prints per-point results plus the dedup
counters::

    $ python -m repro.svc sweep fig04 --profile ci --local --workers 2 \\
          --grid widx_skew=1.2,1.4 --repeat 2

``--repeat 2`` resubmits every grid point; the metrics line at the end
shows the second copies resolving from coalescing/the result store
instead of simulating again.
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
import time
from typing import List, Optional

from .jobs import AdmissionBusy, JobSpec
from .service import Service, sweep_specs

PROFILES = ("ci", "quick", "full")


def _capture_from_args(args):
    events = getattr(args, "events", None)
    if not events:
        return None
    from ..obs.capture import CaptureSpec

    return CaptureSpec(events_path=events, job_scoped=True)


def _spec_from_args(args, overrides=()) -> JobSpec:
    return JobSpec(experiment=args.experiment, profile=args.profile,
                   profile_overrides=tuple(overrides),
                   capture=_capture_from_args(args),
                   priority=getattr(args, "priority", 0),
                   stream_interval=getattr(args, "stream_interval", 0),
                   tag=getattr(args, "tag", ""))


def _client(args):
    from .client import ServiceClient, parse_address

    return ServiceClient(parse_address(args.connect))


def _parse_grid(pairs: List[str]) -> dict:
    """``field=v1,v2`` strings → {field: [typed values]}."""
    grid = {}
    for pair in pairs:
        field, _, values = pair.partition("=")
        if not values:
            raise SystemExit(f"bad --grid entry {pair!r} "
                             f"(want field=v1,v2,...)")
        typed = []
        for raw in values.split(","):
            try:
                typed.append(json.loads(raw))
            except json.JSONDecodeError:
                typed.append(raw)  # bare string value, e.g. compile_mode=off
        grid[field] = typed
    return grid


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------

def _cmd_serve(args) -> int:
    from .client import ServiceServer

    service = Service(workers=args.workers, store=args.store or "memory",
                      max_pending=args.max_pending,
                      ledger=args.ledger or "env").start(wait_ready=True)
    server = ServiceServer(service, host=args.host, port=args.port).start()
    host, port = server.address
    print(f"repro.svc listening on {host}:{port} "
          f"({args.workers} workers)", flush=True)
    metrics_server = None
    if args.metrics_port is not None:
        from .telemetry import MetricsHTTPServer

        metrics_server = MetricsHTTPServer(
            service.prometheus, host=args.host,
            port=args.metrics_port).start()
        print(f"metrics on http://{host}:{metrics_server.port}/metrics",
              flush=True)
    if service.ledger is not None:
        print(f"run ledger at {service.ledger.path}", flush=True)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    finally:
        if metrics_server is not None:
            metrics_server.stop()
        server.stop()
        service.close()
    return 0


def _cmd_submit(args) -> int:
    client = _client(args)
    try:
        status = client.submit(_spec_from_args(args))
    except AdmissionBusy as busy:
        print(f"busy: {busy}", file=sys.stderr)
        return 2
    print(json.dumps(status, indent=1, sort_keys=True))
    if args.wait:
        payload = client.result(status["job"], timeout=args.timeout)
        print(payload["rendered"])
        return 0 if payload["all_ok"] else 1
    return 0


def _cmd_status(args) -> int:
    print(json.dumps(_client(args).status(args.job), indent=1,
                     sort_keys=True))
    return 0


def _cmd_result(args) -> int:
    payload = _client(args).result(args.job, timeout=args.timeout)
    print(payload["rendered"])
    return 0 if payload["all_ok"] else 1


def _cmd_cancel(args) -> int:
    cancelled = _client(args).cancel(args.job)
    print("cancelled" if cancelled else "already finished")
    return 0 if cancelled else 1


def _cmd_metrics(args) -> int:
    if args.prom:
        print(_client(args).metrics(prom=True)["prom"], end="")
    else:
        print(json.dumps(_client(args).metrics(), indent=1,
                         sort_keys=True))
    return 0


def _cmd_history(args) -> int:
    from .telemetry import RunLedger, format_history

    if args.ledger:
        entries = RunLedger.read(args.ledger)
    else:
        entries = _client(args).history(args.limit)
    if args.limit:
        entries = entries[-args.limit:]
    if args.json:
        for entry in entries:
            print(json.dumps(entry, sort_keys=True))
    else:
        print(format_history(entries))
    return 0


def _cmd_top(args) -> int:
    from .telemetry import render_top

    client = _client(args)
    previous, last = None, None
    frames = (range(args.iterations) if args.iterations
              else itertools.count())
    try:
        for index in frames:
            metrics = client.metrics()
            now = time.monotonic()
            dt = (now - last) if last is not None else 0.0
            sys.stdout.write(render_top(
                metrics, previous, dt, address=args.connect,
                color=sys.stdout.isatty(), clear=not args.no_clear))
            sys.stdout.flush()
            previous, last = metrics, now
            if not args.iterations or index < args.iterations - 1:
                time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    return 0


def _ckpt_sweep_specs(args) -> List[JobSpec]:
    """``sweep ckpt:<dsa>`` specs: one snapshot-fork job per grid point.

    The ``--grid`` fields are *fork overrides* (validated against the
    checkpoint fork-safe whitelist up front, so a geometry-changing
    field dies here with a clear message, not as N FAILED jobs). With
    ``--warmup-snapshot`` the warmup runs **once** — locally, before
    any submit — and every job forks the same snapshot, identified in
    its digest by snapshot content + overrides.
    """
    import os

    from ..harness.sweep import (
        SWEEP_DSAS,
        sweep_points,
        write_warm_snapshot,
    )
    from ..sim.checkpoint import SnapshotError, snapshot_digest

    dsa = args.experiment.split(":", 1)[1]
    if dsa not in SWEEP_DSAS:
        raise SystemExit(f"unknown ckpt dsa {dsa!r}; have {SWEEP_DSAS}")
    try:
        grid = _parse_grid(args.grid)
        points = sweep_points(grid) if grid else [{}]
        snapshot, digest = args.warmup_snapshot, None
        if snapshot:
            if not os.path.exists(snapshot):
                header = write_warm_snapshot(
                    snapshot, dsa, args.profile,
                    warm_cycles=args.warm_cycles,
                    warm_frac=args.warm_frac)
                print(f"warmup snapshot: {snapshot} "
                      f"cycle={header['cycle']} "
                      f"digest={header['payload_sha256'][:12]}")
            digest = snapshot_digest(snapshot)
    except (SnapshotError, ValueError) as exc:
        raise SystemExit(f"error: {exc}")
    specs = [JobSpec(experiment=args.experiment, profile=args.profile,
                     fork_overrides=tuple(sorted(point.items())),
                     snapshot=snapshot, snapshot_digest=digest,
                     checkpoint_every=args.checkpoint_every,
                     checkpoint_dir=args.checkpoint_dir,
                     capture=_capture_from_args(args),
                     tag=getattr(args, "tag", ""))
             for point in points]
    return [s for _ in range(max(1, args.repeat)) for s in specs]


def _cmd_sweep(args) -> int:
    if args.experiment.startswith("ckpt:"):
        specs = _ckpt_sweep_specs(args)
    else:
        specs = sweep_specs(args.experiment, args.profile,
                            grid=_parse_grid(args.grid),
                            repeat=args.repeat,
                            capture=_capture_from_args(args))
    print(f"sweep: {len(specs)} submissions "
          f"({len(specs) // max(1, args.repeat)} distinct points)")
    if args.local:
        with Service(workers=args.workers, store=args.store or "memory",
                     max_pending=len(specs) + 1) as svc:
            jobs = [svc.submit(spec) for spec in specs]
            ok = _print_sweep(jobs, svc)
    else:
        client = _client(args)
        submitted = []
        for spec in specs:
            while True:
                try:
                    submitted.append(client.submit(spec))
                    break
                except AdmissionBusy as busy:  # pace to the hint
                    time.sleep(busy.retry_after)
        ok = True
        for status in submitted:
            payload = client.result(status["job"])
            point = status.get("digest", "")[:12]
            print(f"[{point}] {payload['rendered'].splitlines()[0]} "
                  f"all_ok={payload['all_ok']}")
            ok = ok and payload["all_ok"]
        _print_metrics(client.metrics())
    return 0 if ok else 1


def _print_sweep(jobs, svc) -> bool:
    ok = True
    for job in jobs:
        payload = job.result()
        first_line = payload["rendered"].splitlines()[0]
        origin = "store" if job.from_store else "ran"
        if job.followers:
            origin += f", +{job.followers} coalesced"
        meta = payload.get("metadata") or {}
        if meta.get("checkpoints"):
            origin += f", checkpoints={meta['checkpoints']}"
        if meta.get("resumed_from"):
            origin += f", resumed_from={meta['resumed_from']}"
        print(f"[{job.digest[:12]}] {first_line} all_ok={payload['all_ok']} "
              f"({origin})")
        ok = ok and payload["all_ok"]
    _print_metrics(svc.metrics())
    return ok


def _print_metrics(metrics: dict) -> None:
    store = metrics.get("store") or {}
    print(f"submitted={metrics['submitted']} "
          f"completed={metrics['completed']} "
          f"coalesced={metrics['coalesced']} "
          f"store_hits={metrics['store_hits']} "
          f"simulations={store.get('misses', 'n/a')} "
          f"worker_restarts={metrics['worker_restarts']}")


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------

def _add_connect(sub) -> None:
    sub.add_argument("--connect", default="127.0.0.1:7791",
                     metavar="HOST:PORT",
                     help="service address (default: 127.0.0.1:7791)")


def _add_spec_args(sub) -> None:
    sub.add_argument("experiment",
                     help="harness id (fig04, tab01, ...), sleep:<s>, "
                          "suite, or ckpt:<dsa> (checkpointable DSA "
                          "run — snapshot forks + preemption)")
    sub.add_argument("--profile", default="ci", choices=PROFILES)
    sub.add_argument("--priority", type=int, default=0)
    sub.add_argument("--stream-interval", type=int, default=0,
                     dest="stream_interval", metavar="N",
                     help="forward every Nth obs event as progress")
    sub.add_argument("--tag", default="")
    sub.add_argument("--events", default=None, metavar="PATH.jsonl",
                     help="capture the job's obs events to per-job "
                          "JSONL files (worker-local paths; recorded "
                          "in the run ledger for explain --ledger)")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.svc",
        description="Simulation-as-a-service: job queue, warm worker "
                    "pool, content-addressed result store.")
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser("serve", help="run a service")
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument("--store", default=None, metavar="DIR",
                       help="persist results under DIR (default: memory)")
    serve.add_argument("--max-pending", type=int, default=64)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7791,
                       help="0 picks an ephemeral port")
    serve.add_argument("--metrics-port", type=int, default=None,
                       dest="metrics_port", metavar="PORT",
                       help="serve Prometheus text on this port "
                            "(GET /metrics; 0 picks an ephemeral port)")
    serve.add_argument("--ledger", default=None, metavar="PATH.jsonl",
                       help="append-only run ledger (default: the "
                            "REPRO_SVC_LEDGER environment variable)")
    serve.set_defaults(func=_cmd_serve)

    submit = commands.add_parser("submit", help="submit one job")
    _add_spec_args(submit)
    _add_connect(submit)
    submit.add_argument("--wait", action="store_true",
                        help="block and print the rendered report")
    submit.add_argument("--timeout", type=float, default=None)
    submit.set_defaults(func=_cmd_submit)

    for name, func in (("status", _cmd_status), ("result", _cmd_result),
                       ("cancel", _cmd_cancel)):
        sub = commands.add_parser(name, help=f"{name} of one job")
        sub.add_argument("job", type=int)
        _add_connect(sub)
        if name == "result":
            sub.add_argument("--timeout", type=float, default=None)
        sub.set_defaults(func=func)

    metrics = commands.add_parser("metrics", help="service counters")
    _add_connect(metrics)
    metrics.add_argument("--prom", action="store_true",
                         help="print Prometheus text exposition "
                              "instead of JSON")
    metrics.set_defaults(func=_cmd_metrics)

    history = commands.add_parser(
        "history", help="replay the service run ledger")
    _add_connect(history)
    history.add_argument("--ledger", default=None, metavar="PATH.jsonl",
                         help="read this ledger file directly instead "
                              "of asking the service")
    history.add_argument("--limit", type=int, default=0, metavar="N",
                         help="only the last N entries (0 = all)")
    history.add_argument("--json", action="store_true",
                         help="one JSON entry per line instead of the "
                              "table")
    history.set_defaults(func=_cmd_history)

    top = commands.add_parser(
        "top", help="live terminal dashboard over the service")
    _add_connect(top)
    top.add_argument("--interval", type=float, default=1.0,
                     help="seconds between polls (default: 1.0)")
    top.add_argument("--iterations", type=int, default=0, metavar="N",
                     help="render N frames then exit (0 = until ^C)")
    top.add_argument("--no-clear", action="store_true", dest="no_clear",
                     help="append frames instead of redrawing in place")
    top.set_defaults(func=_cmd_top)

    sweep = commands.add_parser(
        "sweep", help="fan a parameter grid into jobs")
    _add_spec_args(sweep)
    _add_connect(sweep)
    sweep.add_argument("--grid", action="append", default=[],
                       metavar="FIELD=V1,V2",
                       help="profile field values to sweep (repeatable)")
    sweep.add_argument("--repeat", type=int, default=1,
                       help="submit the whole grid N times (dedup demo)")
    sweep.add_argument("--local", action="store_true",
                       help="run a private in-process service")
    sweep.add_argument("--workers", type=int, default=2,
                       help="worker count for --local")
    sweep.add_argument("--store", default=None, metavar="DIR",
                       help="result-store directory for --local")
    sweep.add_argument("--warmup-snapshot", default=None,
                       dest="warmup_snapshot", metavar="PATH.ckpt",
                       help="(ckpt:<dsa> only) fork every grid point "
                            "from this snapshot; written first — one "
                            "warmup total — if the file is missing")
    sweep.add_argument("--warm-cycles", type=int, default=None,
                       dest="warm_cycles", metavar="CYCLES",
                       help="snapshot point when writing the warmup "
                            "(default: probe a straight run)")
    sweep.add_argument("--warm-frac", type=float, default=0.85,
                       dest="warm_frac",
                       help="warmup fraction of the probed straight "
                            "run (default: 0.85)")
    sweep.add_argument("--checkpoint-every", type=int, default=0,
                       dest="checkpoint_every", metavar="CYCLES",
                       help="(ckpt:<dsa> only) preemption hint: persist "
                            "a resume checkpoint every N simulated "
                            "cycles (0 = never)")
    sweep.add_argument("--checkpoint-dir", default=None,
                       dest="checkpoint_dir", metavar="DIR",
                       help="where resume checkpoints live (required "
                            "when --checkpoint-every > 0)")
    sweep.set_defaults(func=_cmd_sweep)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
