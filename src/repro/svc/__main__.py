"""CLI: ``python -m repro.svc <serve|submit|status|result|cancel|metrics|sweep>``.

Quickstart (two terminals)::

    $ python -m repro.svc serve --workers 2 --store /tmp/repro-results
    repro.svc listening on 127.0.0.1:41739 (2 workers)

    $ python -m repro.svc submit fig04 --profile ci \\
          --connect 127.0.0.1:41739 --wait
    $ python -m repro.svc metrics --connect 127.0.0.1:41739

Or all-in-one — ``sweep --local`` spins up a private service, fans a
parameter grid into jobs, and prints per-point results plus the dedup
counters::

    $ python -m repro.svc sweep fig04 --profile ci --local --workers 2 \\
          --grid widx_skew=1.2,1.4 --repeat 2

``--repeat 2`` resubmits every grid point; the metrics line at the end
shows the second copies resolving from coalescing/the result store
instead of simulating again.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from .jobs import AdmissionBusy, JobSpec
from .service import Service, sweep_specs

PROFILES = ("ci", "quick", "full")


def _spec_from_args(args, overrides=()) -> JobSpec:
    return JobSpec(experiment=args.experiment, profile=args.profile,
                   profile_overrides=tuple(overrides),
                   priority=getattr(args, "priority", 0),
                   stream_interval=getattr(args, "stream_interval", 0),
                   tag=getattr(args, "tag", ""))


def _client(args):
    from .client import ServiceClient, parse_address

    return ServiceClient(parse_address(args.connect))


def _parse_grid(pairs: List[str]) -> dict:
    """``field=v1,v2`` strings → {field: [typed values]}."""
    grid = {}
    for pair in pairs:
        field, _, values = pair.partition("=")
        if not values:
            raise SystemExit(f"bad --grid entry {pair!r} "
                             f"(want field=v1,v2,...)")
        typed = []
        for raw in values.split(","):
            try:
                typed.append(json.loads(raw))
            except json.JSONDecodeError:
                typed.append(raw)  # bare string value, e.g. compile_mode=off
        grid[field] = typed
    return grid


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------

def _cmd_serve(args) -> int:
    from .client import ServiceServer

    service = Service(workers=args.workers, store=args.store or "memory",
                      max_pending=args.max_pending).start(wait_ready=True)
    server = ServiceServer(service, host=args.host, port=args.port).start()
    host, port = server.address
    print(f"repro.svc listening on {host}:{port} "
          f"({args.workers} workers)", flush=True)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    finally:
        server.stop()
        service.close()
    return 0


def _cmd_submit(args) -> int:
    client = _client(args)
    try:
        status = client.submit(_spec_from_args(args))
    except AdmissionBusy as busy:
        print(f"busy: {busy}", file=sys.stderr)
        return 2
    print(json.dumps(status, indent=1, sort_keys=True))
    if args.wait:
        payload = client.result(status["job"], timeout=args.timeout)
        print(payload["rendered"])
        return 0 if payload["all_ok"] else 1
    return 0


def _cmd_status(args) -> int:
    print(json.dumps(_client(args).status(args.job), indent=1,
                     sort_keys=True))
    return 0


def _cmd_result(args) -> int:
    payload = _client(args).result(args.job, timeout=args.timeout)
    print(payload["rendered"])
    return 0 if payload["all_ok"] else 1


def _cmd_cancel(args) -> int:
    cancelled = _client(args).cancel(args.job)
    print("cancelled" if cancelled else "already finished")
    return 0 if cancelled else 1


def _cmd_metrics(args) -> int:
    print(json.dumps(_client(args).metrics(), indent=1, sort_keys=True))
    return 0


def _cmd_sweep(args) -> int:
    specs = sweep_specs(args.experiment, args.profile,
                        grid=_parse_grid(args.grid), repeat=args.repeat)
    print(f"sweep: {len(specs)} submissions "
          f"({len(specs) // max(1, args.repeat)} distinct points)")
    if args.local:
        with Service(workers=args.workers, store=args.store or "memory",
                     max_pending=len(specs) + 1) as svc:
            jobs = [svc.submit(spec) for spec in specs]
            ok = _print_sweep(jobs, svc)
    else:
        client = _client(args)
        submitted = []
        for spec in specs:
            while True:
                try:
                    submitted.append(client.submit(spec))
                    break
                except AdmissionBusy as busy:  # pace to the hint
                    time.sleep(busy.retry_after)
        ok = True
        for status in submitted:
            payload = client.result(status["job"])
            point = status.get("digest", "")[:12]
            print(f"[{point}] {payload['rendered'].splitlines()[0]} "
                  f"all_ok={payload['all_ok']}")
            ok = ok and payload["all_ok"]
        _print_metrics(client.metrics())
    return 0 if ok else 1


def _print_sweep(jobs, svc) -> bool:
    ok = True
    for job in jobs:
        payload = job.result()
        first_line = payload["rendered"].splitlines()[0]
        origin = "store" if job.from_store else "ran"
        if job.followers:
            origin += f", +{job.followers} coalesced"
        print(f"[{job.digest[:12]}] {first_line} all_ok={payload['all_ok']} "
              f"({origin})")
        ok = ok and payload["all_ok"]
    _print_metrics(svc.metrics())
    return ok


def _print_metrics(metrics: dict) -> None:
    store = metrics.get("store") or {}
    print(f"submitted={metrics['submitted']} "
          f"completed={metrics['completed']} "
          f"coalesced={metrics['coalesced']} "
          f"store_hits={metrics['store_hits']} "
          f"simulations={store.get('misses', 'n/a')} "
          f"worker_restarts={metrics['worker_restarts']}")


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------

def _add_connect(sub) -> None:
    sub.add_argument("--connect", default="127.0.0.1:7791",
                     metavar="HOST:PORT",
                     help="service address (default: 127.0.0.1:7791)")


def _add_spec_args(sub) -> None:
    sub.add_argument("experiment",
                     help="harness id (fig04, tab01, ...), sleep:<s>, "
                          "or suite")
    sub.add_argument("--profile", default="ci", choices=PROFILES)
    sub.add_argument("--priority", type=int, default=0)
    sub.add_argument("--stream-interval", type=int, default=0,
                     dest="stream_interval", metavar="N",
                     help="forward every Nth obs event as progress")
    sub.add_argument("--tag", default="")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.svc",
        description="Simulation-as-a-service: job queue, warm worker "
                    "pool, content-addressed result store.")
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser("serve", help="run a service")
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument("--store", default=None, metavar="DIR",
                       help="persist results under DIR (default: memory)")
    serve.add_argument("--max-pending", type=int, default=64)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7791,
                       help="0 picks an ephemeral port")
    serve.set_defaults(func=_cmd_serve)

    submit = commands.add_parser("submit", help="submit one job")
    _add_spec_args(submit)
    _add_connect(submit)
    submit.add_argument("--wait", action="store_true",
                        help="block and print the rendered report")
    submit.add_argument("--timeout", type=float, default=None)
    submit.set_defaults(func=_cmd_submit)

    for name, func in (("status", _cmd_status), ("result", _cmd_result),
                       ("cancel", _cmd_cancel)):
        sub = commands.add_parser(name, help=f"{name} of one job")
        sub.add_argument("job", type=int)
        _add_connect(sub)
        if name == "result":
            sub.add_argument("--timeout", type=float, default=None)
        sub.set_defaults(func=func)

    metrics = commands.add_parser("metrics", help="service counters")
    _add_connect(metrics)
    metrics.set_defaults(func=_cmd_metrics)

    sweep = commands.add_parser(
        "sweep", help="fan a parameter grid into jobs")
    _add_spec_args(sweep)
    _add_connect(sweep)
    sweep.add_argument("--grid", action="append", default=[],
                       metavar="FIELD=V1,V2",
                       help="profile field values to sweep (repeatable)")
    sweep.add_argument("--repeat", type=int, default=1,
                       help="submit the whole grid N times (dedup demo)")
    sweep.add_argument("--local", action="store_true",
                       help="run a private in-process service")
    sweep.add_argument("--workers", type=int, default=2,
                       help="worker count for --local")
    sweep.add_argument("--store", default=None, metavar="DIR",
                       help="result-store directory for --local")
    sweep.set_defaults(func=_cmd_sweep)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
