"""The simulation service coordinator (``repro.svc.service``).

:class:`Service` glues the three subsystems together around one control
loop:

* the **job queue** (:mod:`repro.svc.jobs`) — priorities, bounded
  admission with a ``retry_after`` hint, cancellation;
* the **warm worker pool** (:mod:`repro.svc.pool`) — long-lived
  processes with crash detection and automatic replacement;
* the **content-addressed result store** (:mod:`repro.svc.store`) —
  a finished result per request digest, written once by this
  coordinator *after* a worker returns a complete payload (never
  partially, never from the event path).

Deduplication is end-to-end: a submit whose digest is already stored
resolves immediately (store hit); one whose digest is currently pending
or running **coalesces** onto the in-flight job — the same
:class:`~repro.svc.jobs.Job` object is returned, every waiter gets the
one result, and the store's ``coalesced`` counter proves no second
simulation ran. N identical submissions, sequential or concurrent,
execute exactly one simulation.

The control loop is a single daemon thread: it drains pool messages
(progress → subscriptions, results → store + waiters, deaths →
retry-on-fresh-worker) and dispatches pending jobs to idle workers.
Client threads only touch the queue/maps under one lock, so ``submit``
is cheap and a store hit never waits on a running simulation.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from .jobs import (
    AdmissionBusy,
    Job,
    JobQueue,
    JobSpec,
    JobState,
)
from .pool import WorkerHandle, WorkerPool
from .store import ResultStore, digest_of
from .stream import Subscription
from .telemetry import LEDGER_ENV, JobSpan, MetricsRegistry, RunLedger

__all__ = ["Service", "sweep_specs"]

#: legacy one-shot counter key -> registry counter family
_COUNTER_FAMILIES = {
    "submitted": "jobs_submitted_total",
    "admitted": "jobs_admitted_total",
    "rejected": "jobs_rejected_total",
    "store_hits": "jobs_from_store_total",
    "coalesced": "jobs_coalesced_total",
    "completed": "jobs_completed_total",
    "failed": "jobs_failed_total",
    "cancelled": "jobs_cancelled_total",
    "retries": "jobs_retried_total",
}


def sweep_specs(experiment: str, profile: str = "ci",
                grid: Optional[Mapping[str, Sequence[Any]]] = None,
                repeat: int = 1, **spec_kwargs) -> List[JobSpec]:
    """Fan a parameter grid into :class:`JobSpec`s.

    ``grid`` maps :class:`~repro.harness.profiles.Profile` field names
    to value lists; the cartesian product becomes one spec per point
    (``profile_overrides``). ``repeat`` duplicates the whole list —
    with deduplication on, repeats cost nothing and are how the CI
    smoke proves the one-simulation property.
    """
    from ..harness.profiles import Profile

    grid = dict(grid or {})
    valid = set(Profile.__dataclass_fields__)
    unknown = sorted(set(grid) - valid)
    if unknown:
        raise ValueError(f"unknown profile field(s) {unknown}; "
                         f"have {sorted(valid)}")
    keys = sorted(grid)
    points: List[tuple] = [()]
    for key in keys:
        values = list(grid[key])
        if not values:
            raise ValueError(f"empty value list for grid field {key!r}")
        points = [(*p, (key, v)) for p in points for v in values]
    specs = [JobSpec(experiment=experiment, profile=profile,
                     profile_overrides=p, **spec_kwargs)
             for p in points]
    return [s for _ in range(max(1, repeat)) for s in specs]


class Service:
    """An in-process simulation service: queue + warm pool + store.

    ::

        with Service(workers=2, store="results/") as svc:
            job = svc.submit(JobSpec(experiment="fig04", profile="ci"))
            print(job.result()["rendered"])

    ``store`` may be a :class:`ResultStore`, a directory path, None
    (deduplication disabled — every job simulates), or the default
    ``"memory"`` (process-local store).
    """

    def __init__(self, workers: int = 2,
                 store: Union[ResultStore, str, os.PathLike, None] = "memory",
                 max_pending: int = 64, max_attempts: int = 2,
                 health: bool = True, start_method: str = "spawn",
                 telemetry: bool = True,
                 ledger: Union[str, os.PathLike, None] = "env",
                 ) -> None:
        if store == "memory":
            self.store: Optional[ResultStore] = ResultStore()
        elif store is None or isinstance(store, ResultStore):
            self.store = store
        else:
            self.store = ResultStore(store)
        self.registry: Optional[MetricsRegistry] = (
            MetricsRegistry() if telemetry else None)
        if ledger == "env":
            ledger = os.environ.get(LEDGER_ENV) or None
        self.ledger: Optional[RunLedger] = (
            RunLedger(ledger) if (telemetry and ledger) else None)
        self.queue = JobQueue(max_pending=max_pending)
        self.pool = WorkerPool(workers=workers, health=health,
                               start_method=start_method,
                               registry=self.registry)
        self.max_attempts = max_attempts
        self.jobs: Dict[int, Job] = {}
        self._inflight: Dict[str, Job] = {}   # digest -> pending/running job
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._counters = {
            "submitted": 0, "admitted": 0, "rejected": 0,
            "store_hits": 0, "coalesced": 0, "completed": 0,
            "failed": 0, "cancelled": 0, "retries": 0,
        }
        if self.registry is not None:
            self._declare_metrics(self.registry)

    @staticmethod
    def _declare_metrics(reg: MetricsRegistry) -> None:
        """Pre-register every family so a scrape sees zeros, not gaps
        (the CI smoke greps ``worker_restarts_total`` before any crash)."""
        reg.counter("jobs_submitted_total", "Submits accepted or resolved.")
        reg.counter("jobs_admitted_total", "Jobs admitted to the queue.")
        reg.counter("jobs_rejected_total",
                    "Submits refused by bounded admission.")
        reg.counter("jobs_from_store_total",
                    "Submits resolved by a result-store hit.")
        reg.counter("jobs_coalesced_total",
                    "Submits coalesced onto an in-flight identical job.")
        reg.counter("jobs_completed_total", "Jobs finished DONE.")
        reg.counter("jobs_failed_total", "Jobs finished FAILED.")
        reg.counter("jobs_cancelled_total", "Jobs cancelled.")
        reg.counter("jobs_retried_total",
                    "Crash retries re-queued on a fresh worker.")
        reg.counter("worker_restarts_total",
                    "Worker slots respawned after a death or kill.")
        reg.counter("watchdog_warnings_total",
                    "In-sim pathology warnings reported by workers.")
        reg.counter("stream_dropped_total",
                    "Progress payloads dropped by slow subscribers.")
        reg.counter("ledger_entries_total", "Run-ledger lines written.")
        reg.counter("store_hits_total", "Result-store lookup hits.")
        reg.counter("store_misses_total", "Result-store lookup misses.")
        reg.counter("store_writes_total", "Result-store records written.")
        reg.counter("store_coalesced_total",
                    "In-flight coalesces recorded by the store.")
        reg.counter("store_invalidated_total",
                    "Stale/foreign on-disk store entries rejected.")
        reg.gauge("queue_depth", "Jobs pending in the admission queue.")
        reg.gauge("jobs_running", "Jobs currently executing on workers.")
        reg.gauge("workers_total", "Worker slots in the pool.")
        reg.gauge("workers_busy", "Workers currently running a job.")
        reg.summary("job_latency_seconds",
                    "End-to-end wall latency of executed jobs.")
        reg.summary("job_queue_wait_seconds",
                    "Admission-to-dispatch wait of executed jobs.")
        reg.summary("job_dispatch_seconds",
                    "Pool-boundary overhead of executed jobs.")
        reg.summary("job_sim_exec_seconds",
                    "Worker-measured execution time of executed jobs.")
        reg.summary("job_store_write_seconds",
                    "Result-store write time of executed jobs.")
        # cache-contents health from lens-armed jobs (--misses captures);
        # labelled per simulated cache by the pool when results land
        reg.gauge("sim_cache_hit_rate",
                  "Hit rate of a simulated cache, from the last "
                  "lens-armed job that observed it.")
        reg.gauge("sim_cache_conflict_share",
                  "Share of that cache's misses classified conflict.")
        reg.counter("sim_cache_misses_total",
                    "Simulated cache misses observed by lens-armed jobs.")

    def _count(self, key: str, amount: int = 1) -> None:
        """Bump a legacy one-shot counter and its registry family
        (caller holds the lock)."""
        self._counters[key] += amount
        if self.registry is not None:
            self.registry.inc(_COUNTER_FAMILIES[key], amount)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, wait_ready: bool = False) -> "Service":
        if self._thread is None:
            self.pool.start()
            self._thread = threading.Thread(
                target=self._loop, name="repro-svc-loop", daemon=True)
            self._thread.start()
        if wait_ready:
            self.pool.wait_ready()
        return self

    def close(self) -> None:
        """Stop the service: pending jobs are cancelled, running workers
        are torn down (wait for results first — see :meth:`drain`)."""
        with self._lock:
            for job in self.jobs.values():
                if not job.state.finished:
                    self._finish(job, JobState.CANCELLED)
                    self._count("cancelled")
        self._stop.set()
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None
        self.pool.stop()
        if self.ledger is not None:
            self.ledger.close()

    def __enter__(self) -> "Service":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # client surface
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> Job:
        """Admit one request; returns its :class:`Job` immediately.

        Order of resolution: coalesce onto an identical in-flight job,
        else resolve from the result store, else admit to the queue
        (raising :class:`AdmissionBusy` past the bound). Checking
        in-flight *before* the store keeps the store's miss counter
        equal to the number of simulations actually executed.
        """
        self._validate(spec)
        digest = spec.digest()
        with self._lock:
            self._count("submitted")
            primary = self._inflight.get(digest)
            if primary is not None and not primary.state.finished:
                primary.followers += 1
                self._count("coalesced")
                if self.store is not None:
                    self.store.note_coalesced()
                return primary
            if self.store is not None:
                record = self.store.get(digest)
                if record is not None:
                    job = Job(spec, digest)
                    job.from_store = True
                    job.result_payload = record
                    job.result_digest = record.get("result_digest")
                    job.stamp("admitted")
                    self.jobs[job.id] = job
                    self._finish(job, JobState.DONE)
                    self._count("store_hits")
                    self._count("completed")
                    return job
            job = Job(spec, digest)
            try:
                self.queue.submit(job, workers=self.pool.size)
            except AdmissionBusy:
                self._count("rejected")
                raise
            self._count("admitted")
            job.stamp("admitted")
            self.jobs[job.id] = job
            self._inflight[digest] = job
            return job

    def cancel(self, job: Job) -> bool:
        """Cancel a pending or running job; True if it was cancelled.

        A running job's worker is terminated and its slot respawned —
        cancellation is immediate, not cooperative. Coalesced followers
        share the Job, so cancelling cancels every waiter.
        """
        with self._lock:
            if job.state.finished:
                return False
            if job.state is JobState.RUNNING and job.worker is not None:
                handle = self.pool.find(job.worker)
                if handle is not None:
                    self.pool.kill(handle)
            elif job.state is JobState.PENDING:
                self.queue.forget_cancelled(job)
            self._finish(job, JobState.CANCELLED)
            self._count("cancelled")
            return True

    def subscribe(self, job: Job, maxsize: int = 256) -> Subscription:
        """A progress stream for ``job`` (ends when the job finishes)."""
        on_drop = None
        if self.registry is not None:
            reg = self.registry
            on_drop = (lambda count:
                       reg.inc("stream_dropped_total", count))
        sub = Subscription(maxsize=maxsize, on_drop=on_drop)
        with self._lock:
            if job.state.finished:
                sub.close()
            else:
                job._subscribers.append(sub)
        return sub

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait for every submitted job to finish; True if all did."""
        deadline = (time.monotonic() + timeout) if timeout else None
        with self._lock:
            snapshot = list(self.jobs.values())
        for job in snapshot:
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
            if not job.wait(remaining):
                return False
        return True

    def metrics(self) -> Dict[str, Any]:
        """Counters + queue depth + store stats + per-worker health."""
        with self._lock:
            running = sum(1 for j in self.jobs.values()
                          if j.state is JobState.RUNNING)
            out: Dict[str, Any] = dict(self._counters)
        out["pending"] = self.queue.pending
        out["running"] = running
        out["worker_restarts"] = self.pool.restarts
        out["store"] = (self.store.stats.as_dict()
                        if self.store is not None else None)
        out["workers"] = self.pool.health()
        out["watchdog"] = dict(self.pool.watchdog_counts)
        out["telemetry"] = self.telemetry_snapshot()
        return out

    def telemetry_snapshot(self) -> Optional[dict]:
        """The registry snapshot with scrape-time state folded in.

        Instantaneous gauges (queue depth, busy workers) and the store's
        own counters are synced here — pinned, not incremented, so a
        snapshot is idempotent and never double-counts.
        """
        reg = self.registry
        if reg is None:
            return None
        with self._lock:
            running = sum(1 for j in self.jobs.values()
                          if j.state is JobState.RUNNING)
        reg.set("queue_depth", self.queue.pending)
        reg.set("jobs_running", running)
        health = self.pool.health()
        reg.set("workers_total", len(health))
        reg.set("workers_busy",
                sum(1 for w in health if w.get("state") == "busy"))
        reg.set("worker_restarts_total", self.pool.restarts)
        if self.store is not None:
            stats = self.store.stats
            reg.set("store_hits_total", stats.hits)
            reg.set("store_misses_total", stats.misses)
            reg.set("store_writes_total", stats.stores)
            reg.set("store_coalesced_total", stats.coalesced)
            reg.set("store_invalidated_total", stats.invalidated)
        return reg.snapshot()

    def prometheus(self) -> str:
        """The current registry state as Prometheus text exposition."""
        from .telemetry import render_prometheus

        snapshot = self.telemetry_snapshot()
        if snapshot is None:
            raise RuntimeError("service started with telemetry=False")
        return render_prometheus(snapshot)

    def history(self, limit: int = 0) -> List[dict]:
        """The run-ledger entries written so far (last ``limit`` if >0)."""
        if self.ledger is None:
            return []
        entries = RunLedger.read(self.ledger.path)
        return entries[-limit:] if limit > 0 else entries

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _validate(self, spec: JobSpec) -> None:
        if spec.is_synthetic:
            if spec.experiment.startswith("sleep:"):
                try:
                    float(spec.experiment.split(":", 1)[1])
                except ValueError:
                    raise ValueError(f"bad sleep spec {spec.experiment!r}")
            elif spec.experiment.startswith("ckpt:"):
                from ..harness.sweep import SWEEP_DSAS
                from ..sim.checkpoint import (
                    FORK_SAFE_DRAM_FIELDS,
                    FORK_SAFE_FIELDS,
                    ForkOverrideError,
                )

                dsa = spec.experiment.split(":", 1)[1]
                if dsa not in SWEEP_DSAS:
                    raise ValueError(f"unknown ckpt dsa {dsa!r}; "
                                     f"have {SWEEP_DSAS}")
                # reject geometry-changing fork overrides at submit time
                # (the worker would too, but a clear error beats a
                # FAILED job with a traceback payload)
                for key, _value in spec.fork_overrides:
                    name = (key[len("dram."):]
                            if key.startswith("dram.") else None)
                    safe = (name in FORK_SAFE_DRAM_FIELDS
                            if name is not None
                            else key in FORK_SAFE_FIELDS)
                    if not safe:
                        raise ForkOverrideError(
                            f"fork override {key!r} is not fork-safe; "
                            f"fork-safe fields: {sorted(FORK_SAFE_FIELDS)} "
                            f"plus dram.{{{','.join(sorted(FORK_SAFE_DRAM_FIELDS))}}}")
                if spec.checkpoint_every > 0 and not spec.checkpoint_dir:
                    raise ValueError(
                        "checkpoint_every > 0 needs a checkpoint_dir "
                        "(where resume files persist across workers)")
            return
        from ..harness import EXPERIMENTS

        if spec.experiment not in EXPERIMENTS:
            raise ValueError(
                f"unknown experiment {spec.experiment!r}; have "
                f"{sorted(EXPERIMENTS)} or sleep:<seconds> / suite / "
                f"ckpt:<dsa>")

    def _loop(self) -> None:
        while not self._stop.is_set():
            for kind, handle, job_id, payload in self.pool.poll(0.05):
                if kind == "progress":
                    self._on_progress(job_id, payload)
                elif kind == "result":
                    self._on_result(job_id, payload)
                elif kind == "died":
                    self._on_death(handle, job_id)
            self._dispatch_pending()

    def _dispatch_pending(self) -> None:
        with self._lock:
            for handle in self.pool.idle_workers():
                job = self.queue.pop()
                if job is None:
                    return
                job.state = JobState.RUNNING
                job.worker = handle.id
                job.worker_history.append(handle.id)
                job.attempts += 1
                job.started = time.time()
                job.stamp("dispatched")
                self.pool.dispatch(handle, job.id, job.spec)

    def _on_progress(self, job_id: Optional[int], payload: dict) -> None:
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None:
                return
            job.last_progress = payload
            subscribers = list(job._subscribers)
        for sub in subscribers:
            sub.feed(payload)

    def _on_result(self, job_id: Optional[int], payload: dict) -> None:
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None or job.state is not JobState.RUNNING:
                return  # cancelled while completing: drop the payload
            duration = payload.get("duration_s")
            if duration is not None:
                self.queue.note_duration(duration)
            job.ts["sim_exec"] = float(payload.get("duration_s") or 0.0)
            if payload.get("ok"):
                record = self._record(job, payload)
                if self.store is not None:
                    write_started = time.monotonic()
                    self.store.put(job.digest, record)
                    job.store_write_s = time.monotonic() - write_started
                job.result_payload = record
                job.result_digest = record["result_digest"]
                self._finish(job, JobState.DONE)
                self._count("completed")
            else:
                job.error = payload.get("error", "worker error")
                self._finish(job, JobState.FAILED)
                self._count("failed")

    @staticmethod
    def _record(job: Job, payload: dict) -> dict:
        """The store record: deterministic result + advisory metadata.

        The result digest covers only the simulation-determined fields
        (rendered report + expectation verdict) so a crash-retried job
        digests identically to an undisturbed run — wall-clock metadata
        stays outside the hash.
        """
        result_digest = digest_of({"rendered": payload["rendered"],
                                   "all_ok": payload["all_ok"]})
        return {
            "spec": job.spec.canonical(),
            "rendered": payload["rendered"],
            "all_ok": payload["all_ok"],
            "result_digest": result_digest,
            "metadata": {
                "duration_s": payload.get("duration_s"),
                "worker_id": payload.get("worker_id"),
                "worker_jobs_before": payload.get("worker_jobs_before"),
                "suite_warm": payload.get("suite_warm"),
                "events_seen": payload.get("events_seen"),
                "watchdog": payload.get("watchdog"),
                "capture_paths": payload.get("capture_paths"),
                "attempts": job.attempts,
                "checkpoints": payload.get("checkpoints", 0),
                "resumed_from": payload.get("resumed_from", 0),
            },
        }

    def _on_death(self, handle: WorkerHandle, job_id: Optional[int]) -> None:
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None or job.state is not JobState.RUNNING:
                return  # idle crash or cancelled job: slot already respawned
            if job.attempts > self.max_attempts:
                job.error = (f"worker died {job.attempts} times "
                             f"(exitcode of last: "
                             f"{handle.process.exitcode})")
                self._finish(job, JobState.FAILED)
                self._count("failed")
                return
            # retry on a fresh worker, ahead of every priority class;
            # nothing was stored, so a retried job cannot leave a
            # partial result behind
            job.state = JobState.PENDING
            job.worker = None
            progress = job.last_progress or {}
            job.retry_log.append({
                "worker": handle.id,
                "exitcode": handle.process.exitcode,
                "lost_s": round(time.monotonic()
                                - job.ts.get("dispatched",
                                             time.monotonic()), 6),
                # for ckpt: jobs — the cycle the dead attempt had last
                # persisted, i.e. where the retry will resume from
                # (None = no checkpoint survived, resume from zero)
                "checkpoint_cycle": (progress.get("cycle")
                                     if progress.get("kind") == "checkpoint"
                                     else None),
            })
            self.queue.requeue_front(job)
            self._count("retries")

    def _finish(self, job: Job, state: JobState) -> None:
        """Transition to a terminal state (caller holds the lock).

        This is where the job's lifecycle span closes: the ``finished``
        stamp lands, the wall-clock split feeds the registry summaries,
        and the ledger line is appended — all coordinator-side work,
        never on the simulation event path.
        """
        job.state = state
        job.finished_at = time.time()
        job.stamp("finished")
        self._inflight.pop(job.digest, None)
        span = self.job_span(job)
        if (self.registry is not None and state is JobState.DONE
                and not job.from_store):
            reg = self.registry
            reg.observe("job_latency_seconds", span.end_to_end,
                        experiment=job.spec.experiment)
            reg.observe("job_queue_wait_seconds", span.queue_wait)
            reg.observe("job_dispatch_seconds", max(0.0, span.dispatch))
            reg.observe("job_sim_exec_seconds", span.sim_exec)
            reg.observe("job_store_write_seconds", span.store_write)
        if self.ledger is not None:
            self.ledger.record(self._ledger_entry(job, span))
            if self.registry is not None:
                self.registry.inc("ledger_entries_total")
        job._done.set()
        for sub in job._subscribers:
            sub.close()
        job._subscribers.clear()

    @staticmethod
    def job_span(job: Job) -> JobSpan:
        """Assemble the wall-clock lifecycle span for ``job``."""
        span = JobSpan(job.id, job.digest, job.spec.experiment)
        span.state = job.state.value
        span.from_store = job.from_store
        span.submitted = job.ts.get("submitted")
        span.admitted = job.ts.get("admitted")
        span.dispatched = job.ts.get("dispatched")
        span.finished = job.ts.get("finished")
        span.sim_exec = float(job.ts.get("sim_exec", 0.0))
        span.store_write = job.store_write_s
        metadata = ((job.result_payload or {}).get("metadata") or {})
        span.checkpoints = int(metadata.get("checkpoints") or 0)
        span.resumed_from = int(metadata.get("resumed_from") or 0)
        cycles = [entry.get("checkpoint_cycle")
                  for entry in job.retry_log
                  if entry.get("checkpoint_cycle") is not None]
        span.preempted_at = cycles[-1] if cycles else None
        return span

    def _ledger_entry(self, job: Job, span: JobSpan) -> dict:
        metadata = ((job.result_payload or {}).get("metadata") or {})
        timings = {k: round(v, 6) for k, v in span.split().items()}
        timings["end_to_end"] = round(span.end_to_end, 6)
        return {
            "kind": "job",
            "job": job.id,
            "digest": job.digest,
            "experiment": job.spec.experiment,
            "profile": job.spec.profile,
            "tag": job.spec.tag,
            "state": job.state.value,
            "ok": job.state is JobState.DONE,
            "result_digest": job.result_digest,
            "worker": job.worker,
            "worker_history": list(job.worker_history),
            "attempts": job.attempts,
            "retries": list(job.retry_log),
            "followers": job.followers,
            "from_store": job.from_store,
            "wall_submitted": round(job.created, 6),
            "timings": timings,
            "capture": metadata.get("capture_paths"),
            "checkpoints": span.checkpoints,
            "resumed_from": span.resumed_from,
            "preempted_at": span.preempted_at,
            "error": job.error,
        }
