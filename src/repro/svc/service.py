"""The simulation service coordinator (``repro.svc.service``).

:class:`Service` glues the three subsystems together around one control
loop:

* the **job queue** (:mod:`repro.svc.jobs`) — priorities, bounded
  admission with a ``retry_after`` hint, cancellation;
* the **warm worker pool** (:mod:`repro.svc.pool`) — long-lived
  processes with crash detection and automatic replacement;
* the **content-addressed result store** (:mod:`repro.svc.store`) —
  a finished result per request digest, written once by this
  coordinator *after* a worker returns a complete payload (never
  partially, never from the event path).

Deduplication is end-to-end: a submit whose digest is already stored
resolves immediately (store hit); one whose digest is currently pending
or running **coalesces** onto the in-flight job — the same
:class:`~repro.svc.jobs.Job` object is returned, every waiter gets the
one result, and the store's ``coalesced`` counter proves no second
simulation ran. N identical submissions, sequential or concurrent,
execute exactly one simulation.

The control loop is a single daemon thread: it drains pool messages
(progress → subscriptions, results → store + waiters, deaths →
retry-on-fresh-worker) and dispatches pending jobs to idle workers.
Client threads only touch the queue/maps under one lock, so ``submit``
is cheap and a store hit never waits on a running simulation.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from .jobs import (
    AdmissionBusy,
    Job,
    JobQueue,
    JobSpec,
    JobState,
)
from .pool import WorkerHandle, WorkerPool
from .store import ResultStore, digest_of
from .stream import Subscription

__all__ = ["Service", "sweep_specs"]


def sweep_specs(experiment: str, profile: str = "ci",
                grid: Optional[Mapping[str, Sequence[Any]]] = None,
                repeat: int = 1, **spec_kwargs) -> List[JobSpec]:
    """Fan a parameter grid into :class:`JobSpec`s.

    ``grid`` maps :class:`~repro.harness.profiles.Profile` field names
    to value lists; the cartesian product becomes one spec per point
    (``profile_overrides``). ``repeat`` duplicates the whole list —
    with deduplication on, repeats cost nothing and are how the CI
    smoke proves the one-simulation property.
    """
    from ..harness.profiles import Profile

    grid = dict(grid or {})
    valid = set(Profile.__dataclass_fields__)
    unknown = sorted(set(grid) - valid)
    if unknown:
        raise ValueError(f"unknown profile field(s) {unknown}; "
                         f"have {sorted(valid)}")
    keys = sorted(grid)
    points: List[tuple] = [()]
    for key in keys:
        values = list(grid[key])
        if not values:
            raise ValueError(f"empty value list for grid field {key!r}")
        points = [(*p, (key, v)) for p in points for v in values]
    specs = [JobSpec(experiment=experiment, profile=profile,
                     profile_overrides=p, **spec_kwargs)
             for p in points]
    return [s for _ in range(max(1, repeat)) for s in specs]


class Service:
    """An in-process simulation service: queue + warm pool + store.

    ::

        with Service(workers=2, store="results/") as svc:
            job = svc.submit(JobSpec(experiment="fig04", profile="ci"))
            print(job.result()["rendered"])

    ``store`` may be a :class:`ResultStore`, a directory path, None
    (deduplication disabled — every job simulates), or the default
    ``"memory"`` (process-local store).
    """

    def __init__(self, workers: int = 2,
                 store: Union[ResultStore, str, os.PathLike, None] = "memory",
                 max_pending: int = 64, max_attempts: int = 2,
                 health: bool = True, start_method: str = "spawn",
                 ) -> None:
        if store == "memory":
            self.store: Optional[ResultStore] = ResultStore()
        elif store is None or isinstance(store, ResultStore):
            self.store = store
        else:
            self.store = ResultStore(store)
        self.queue = JobQueue(max_pending=max_pending)
        self.pool = WorkerPool(workers=workers, health=health,
                               start_method=start_method)
        self.max_attempts = max_attempts
        self.jobs: Dict[int, Job] = {}
        self._inflight: Dict[str, Job] = {}   # digest -> pending/running job
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._counters = {
            "submitted": 0, "admitted": 0, "rejected": 0,
            "store_hits": 0, "coalesced": 0, "completed": 0,
            "failed": 0, "cancelled": 0, "retries": 0,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, wait_ready: bool = False) -> "Service":
        if self._thread is None:
            self.pool.start()
            self._thread = threading.Thread(
                target=self._loop, name="repro-svc-loop", daemon=True)
            self._thread.start()
        if wait_ready:
            self.pool.wait_ready()
        return self

    def close(self) -> None:
        """Stop the service: pending jobs are cancelled, running workers
        are torn down (wait for results first — see :meth:`drain`)."""
        with self._lock:
            for job in self.jobs.values():
                if not job.state.finished:
                    self._finish(job, JobState.CANCELLED)
                    self._counters["cancelled"] += 1
        self._stop.set()
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None
        self.pool.stop()

    def __enter__(self) -> "Service":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # client surface
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> Job:
        """Admit one request; returns its :class:`Job` immediately.

        Order of resolution: coalesce onto an identical in-flight job,
        else resolve from the result store, else admit to the queue
        (raising :class:`AdmissionBusy` past the bound). Checking
        in-flight *before* the store keeps the store's miss counter
        equal to the number of simulations actually executed.
        """
        self._validate(spec)
        digest = spec.digest()
        with self._lock:
            self._counters["submitted"] += 1
            primary = self._inflight.get(digest)
            if primary is not None and not primary.state.finished:
                primary.followers += 1
                self._counters["coalesced"] += 1
                if self.store is not None:
                    self.store.note_coalesced()
                return primary
            if self.store is not None:
                record = self.store.get(digest)
                if record is not None:
                    job = Job(spec, digest)
                    job.from_store = True
                    job.result_payload = record
                    job.result_digest = record.get("result_digest")
                    self.jobs[job.id] = job
                    self._finish(job, JobState.DONE)
                    self._counters["store_hits"] += 1
                    self._counters["completed"] += 1
                    return job
            job = Job(spec, digest)
            try:
                self.queue.submit(job, workers=self.pool.size)
            except AdmissionBusy:
                self._counters["rejected"] += 1
                raise
            self._counters["admitted"] += 1
            self.jobs[job.id] = job
            self._inflight[digest] = job
            return job

    def cancel(self, job: Job) -> bool:
        """Cancel a pending or running job; True if it was cancelled.

        A running job's worker is terminated and its slot respawned —
        cancellation is immediate, not cooperative. Coalesced followers
        share the Job, so cancelling cancels every waiter.
        """
        with self._lock:
            if job.state.finished:
                return False
            if job.state is JobState.RUNNING and job.worker is not None:
                handle = self.pool.find(job.worker)
                if handle is not None:
                    self.pool.kill(handle)
            elif job.state is JobState.PENDING:
                self.queue.forget_cancelled(job)
            self._finish(job, JobState.CANCELLED)
            self._counters["cancelled"] += 1
            return True

    def subscribe(self, job: Job, maxsize: int = 256) -> Subscription:
        """A progress stream for ``job`` (ends when the job finishes)."""
        sub = Subscription(maxsize=maxsize)
        with self._lock:
            if job.state.finished:
                sub.close()
            else:
                job._subscribers.append(sub)
        return sub

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait for every submitted job to finish; True if all did."""
        deadline = (time.monotonic() + timeout) if timeout else None
        with self._lock:
            snapshot = list(self.jobs.values())
        for job in snapshot:
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
            if not job.wait(remaining):
                return False
        return True

    def metrics(self) -> Dict[str, Any]:
        """Counters + queue depth + store stats + per-worker health."""
        with self._lock:
            running = sum(1 for j in self.jobs.values()
                          if j.state is JobState.RUNNING)
            out: Dict[str, Any] = dict(self._counters)
        out["pending"] = self.queue.pending
        out["running"] = running
        out["worker_restarts"] = self.pool.restarts
        out["store"] = (self.store.stats.as_dict()
                        if self.store is not None else None)
        out["workers"] = self.pool.health()
        return out

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _validate(self, spec: JobSpec) -> None:
        if spec.is_synthetic:
            if spec.experiment.startswith("sleep:"):
                try:
                    float(spec.experiment.split(":", 1)[1])
                except ValueError:
                    raise ValueError(f"bad sleep spec {spec.experiment!r}")
            return
        from ..harness import EXPERIMENTS

        if spec.experiment not in EXPERIMENTS:
            raise ValueError(
                f"unknown experiment {spec.experiment!r}; have "
                f"{sorted(EXPERIMENTS)} or sleep:<seconds> / suite")

    def _loop(self) -> None:
        while not self._stop.is_set():
            for kind, handle, job_id, payload in self.pool.poll(0.05):
                if kind == "progress":
                    self._on_progress(job_id, payload)
                elif kind == "result":
                    self._on_result(job_id, payload)
                elif kind == "died":
                    self._on_death(handle, job_id)
            self._dispatch_pending()

    def _dispatch_pending(self) -> None:
        with self._lock:
            for handle in self.pool.idle_workers():
                job = self.queue.pop()
                if job is None:
                    return
                job.state = JobState.RUNNING
                job.worker = handle.id
                job.attempts += 1
                job.started = time.time()
                self.pool.dispatch(handle, job.id, job.spec)

    def _on_progress(self, job_id: Optional[int], payload: dict) -> None:
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None:
                return
            job.last_progress = payload
            subscribers = list(job._subscribers)
        for sub in subscribers:
            sub.feed(payload)

    def _on_result(self, job_id: Optional[int], payload: dict) -> None:
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None or job.state is not JobState.RUNNING:
                return  # cancelled while completing: drop the payload
            duration = payload.get("duration_s")
            if duration is not None:
                self.queue.note_duration(duration)
            if payload.get("ok"):
                record = self._record(job, payload)
                if self.store is not None:
                    self.store.put(job.digest, record)
                job.result_payload = record
                job.result_digest = record["result_digest"]
                self._finish(job, JobState.DONE)
                self._counters["completed"] += 1
            else:
                job.error = payload.get("error", "worker error")
                self._finish(job, JobState.FAILED)
                self._counters["failed"] += 1

    @staticmethod
    def _record(job: Job, payload: dict) -> dict:
        """The store record: deterministic result + advisory metadata.

        The result digest covers only the simulation-determined fields
        (rendered report + expectation verdict) so a crash-retried job
        digests identically to an undisturbed run — wall-clock metadata
        stays outside the hash.
        """
        result_digest = digest_of({"rendered": payload["rendered"],
                                   "all_ok": payload["all_ok"]})
        return {
            "spec": job.spec.canonical(),
            "rendered": payload["rendered"],
            "all_ok": payload["all_ok"],
            "result_digest": result_digest,
            "metadata": {
                "duration_s": payload.get("duration_s"),
                "worker_id": payload.get("worker_id"),
                "worker_jobs_before": payload.get("worker_jobs_before"),
                "suite_warm": payload.get("suite_warm"),
                "events_seen": payload.get("events_seen"),
                "watchdog": payload.get("watchdog"),
                "attempts": job.attempts,
            },
        }

    def _on_death(self, handle: WorkerHandle, job_id: Optional[int]) -> None:
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None or job.state is not JobState.RUNNING:
                return  # idle crash or cancelled job: slot already respawned
            if job.attempts > self.max_attempts:
                job.error = (f"worker died {job.attempts} times "
                             f"(exitcode of last: "
                             f"{handle.process.exitcode})")
                self._finish(job, JobState.FAILED)
                self._counters["failed"] += 1
                return
            # retry on a fresh worker, ahead of every priority class;
            # nothing was stored, so a retried job cannot leave a
            # partial result behind
            job.state = JobState.PENDING
            job.worker = None
            self.queue.requeue_front(job)
            self._counters["retries"] += 1

    def _finish(self, job: Job, state: JobState) -> None:
        """Transition to a terminal state (caller holds the lock)."""
        job.state = state
        job.finished_at = time.time()
        self._inflight.pop(job.digest, None)
        job._done.set()
        for sub in job._subscribers:
            sub.close()
        job._subscribers.clear()
