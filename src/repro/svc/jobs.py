"""Job model for the simulation service (``repro.svc.jobs``).

A :class:`JobSpec` is a declarative, picklable request — which
experiment, which profile (plus optional field overrides), what to
capture, how eagerly to stream progress. Its :meth:`~JobSpec.digest` is
the canonical content address (config + workload + code version, see
:mod:`repro.svc.store`) that drives result-store hits and in-flight
coalescing.

:class:`Job` is the coordinator-side execution record: state machine
(``PENDING → RUNNING → DONE | FAILED | CANCELLED``), attempt counter
(crash retries), result payload, and a ``threading.Event`` so any
number of client threads can wait on one job — including the followers
of a coalesced submit, who share the Job object outright.

:class:`JobQueue` is a priority queue with **bounded admission**: past
``max_pending`` it refuses the submit with :class:`AdmissionBusy`
carrying a ``retry_after`` estimate, instead of queueing unboundedly —
backpressure is the client's problem to pace, not the coordinator's
problem to buffer.
"""

from __future__ import annotations

import heapq
import itertools
import queue
import threading
import time
from dataclasses import asdict, dataclass
from enum import Enum
from typing import Any, Dict, List, Optional, Tuple

from ..obs.capture import CaptureSpec
from .store import code_version, digest_of

__all__ = ["JobState", "JobSpec", "Job", "JobQueue", "AdmissionBusy",
           "JobFailed", "JobCancelled"]


class JobState(str, Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def finished(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


#: synthetic experiments the worker executes besides the harness ids:
#: ``sleep:<seconds>`` (deterministic no-op, for backpressure/cancel
#: tests and pacing probes), ``suite`` (run the memoized fig-14 suite,
#: optionally restricted to ``JobSpec.workloads``) and ``ckpt:<dsa>``
#: (one checkpointable DSA run — optionally forked from
#: ``JobSpec.snapshot`` and preempted every ``checkpoint_every`` cycles)
SYNTHETIC_PREFIXES = ("sleep:", "suite", "ckpt:")


@dataclass(frozen=True)
class JobSpec:
    """One declarative simulation request (picklable, content-addressed).

    Fields that change the *result* (experiment, profile, overrides,
    workloads, capture) are folded into the digest; scheduling hints
    (priority, stream_interval, tag) are not — two submits differing
    only in priority are still the same simulation.
    """

    experiment: str                       # harness id, "sleep:S", "suite"
    profile: str = "ci"
    # (field, value) pairs applied over the named profile via
    # dataclasses.replace — the sweep front-end's parameter grid
    profile_overrides: Tuple[Tuple[str, Any], ...] = ()
    # fig-14 suite subset for experiment="suite" (None = all workloads)
    workloads: Optional[Tuple[str, ...]] = None
    capture: Optional[CaptureSpec] = None
    priority: int = 0                     # higher runs earlier
    stream_interval: int = 0              # forward every Nth bus event
                                          # (0 = milestones only)
    tag: str = ""                         # free-form label, not hashed
    # warm-start provenance (``ckpt:<dsa>`` jobs): the snapshot *path*
    # is a location hint and stays out of the digest; its content
    # digest and the fork overrides determine the result and are
    # folded in — a forked run must never alias a straight run.
    snapshot: Optional[str] = None        # snapshot file path (hint)
    snapshot_digest: Optional[str] = None  # payload sha256 (hashed)
    fork_overrides: Tuple[Tuple[str, Any], ...] = ()  # hashed
    # preemption hints (scheduling policy, not result-affecting): the
    # worker persists a resume checkpoint every N simulated cycles so
    # a crash loses at most one interval
    checkpoint_every: int = 0             # 0 = never preempt
    checkpoint_dir: Optional[str] = None  # where resume files live

    def __post_init__(self) -> None:
        # normalize the common "list of pairs" spelling so equal specs
        # digest equally regardless of caller container choice
        object.__setattr__(self, "profile_overrides",
                           tuple((str(k), v)
                                 for k, v in self.profile_overrides))
        object.__setattr__(self, "fork_overrides",
                           tuple((str(k), v)
                                 for k, v in self.fork_overrides))
        if self.workloads is not None:
            object.__setattr__(self, "workloads", tuple(self.workloads))

    def canonical(self) -> Dict[str, Any]:
        """The digest pre-image: everything that determines the result."""
        return {
            "experiment": self.experiment,
            "profile": self.profile,
            "profile_overrides": sorted(
                [k, v] for k, v in self.profile_overrides),
            "workloads": (list(self.workloads)
                          if self.workloads is not None else None),
            "capture": asdict(self.capture) if self.capture else None,
            # snapshot provenance: a forked run's identity includes the
            # snapshot it warmed from (by content, not path) and the
            # overrides applied at fork time — never alias straight runs
            "snapshot": self.snapshot_digest,
            "fork_overrides": sorted(
                [k, v] for k, v in self.fork_overrides),
            "code": code_version(),
        }

    def digest(self) -> str:
        return digest_of(self.canonical())

    @property
    def is_synthetic(self) -> bool:
        return (self.experiment == "suite"
                or self.experiment.startswith("sleep:")
                or self.experiment.startswith("ckpt:"))


class JobFailed(RuntimeError):
    """Raised by :meth:`Job.result` when the job ended FAILED."""


class JobCancelled(RuntimeError):
    """Raised by :meth:`Job.result` when the job ended CANCELLED."""


class AdmissionBusy(RuntimeError):
    """Queue full: come back in ``retry_after`` seconds.

    Bounded admission — the service sheds load at submit time with a
    pacing hint instead of letting the backlog grow without limit.
    """

    def __init__(self, retry_after: float, pending: int) -> None:
        super().__init__(f"queue full ({pending} pending); "
                         f"retry in {retry_after:.1f}s")
        self.retry_after = retry_after
        self.pending = pending


_job_ids = itertools.count(1)


class Job:
    """Coordinator-side record of one admitted request."""

    def __init__(self, spec: JobSpec, digest: Optional[str] = None) -> None:
        self.id = next(_job_ids)
        self.spec = spec
        self.digest = digest if digest is not None else spec.digest()
        self.state = JobState.PENDING
        self.attempts = 0            # dispatches (crash retries bump it)
        self.followers = 0           # coalesced identical submits
        self.worker: Optional[int] = None
        self.worker_history: List[int] = []   # every worker it ran on
        self.retry_log: List[dict] = []       # one entry per crash retry
        self.result_payload: Optional[dict] = None
        self.result_digest: Optional[str] = None
        self.error: Optional[str] = None
        self.from_store = False      # resolved by a store hit, no dispatch
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.last_progress: Optional[dict] = None
        # monotonic host timestamps stamped at lifecycle transitions
        # (submitted/admitted/dispatched/...), assembled into the
        # telemetry JobSpan's exact wall-clock latency split
        self.ts: Dict[str, float] = {"submitted": time.monotonic()}
        self.store_write_s = 0.0     # coordinator's store.put duration
        self._done = threading.Event()
        self._subscribers: List[queue.Queue] = []

    def stamp(self, transition: str) -> float:
        """Record a monotonic timestamp for one lifecycle transition."""
        now = time.monotonic()
        self.ts[transition] = now
        return now

    # ------------------------------------------------------------------
    # waiting / results
    # ------------------------------------------------------------------
    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job finishes; True if it did."""
        return self._done.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> dict:
        """The result payload; raises on failure/cancellation/timeout."""
        if not self._done.wait(timeout):
            raise TimeoutError(f"job {self.id} still {self.state.value}")
        if self.state is JobState.DONE:
            assert self.result_payload is not None
            return self.result_payload
        if self.state is JobState.CANCELLED:
            raise JobCancelled(f"job {self.id} was cancelled")
        raise JobFailed(f"job {self.id} failed: {self.error}")

    def status(self) -> Dict[str, Any]:
        """A JSON-able snapshot (what the status CLI prints)."""
        return {
            "job": self.id,
            "experiment": self.spec.experiment,
            "profile": self.spec.profile,
            "digest": self.digest,
            "state": self.state.value,
            "attempts": self.attempts,
            "followers": self.followers,
            "from_store": self.from_store,
            "worker": self.worker,
            "worker_history": list(self.worker_history),
            "result_digest": self.result_digest,
            "error": self.error,
            "progress": self.last_progress,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Job(id={self.id}, {self.spec.experiment!r}, "
                f"{self.state.value}, digest={self.digest[:12]})")


class JobQueue:
    """Priority queue with bounded admission and lazy cancellation.

    Higher ``JobSpec.priority`` pops first; ties pop in submission
    order. Cancelled jobs stay in the heap and are skipped on pop
    (removal from a heap's middle is O(n); skipping is O(log n) when it
    matters). ``requeue_front`` re-admits a crash-retried job ahead of
    every priority class so a retry never starves behind fresh work.
    """

    _FRONT = float("inf")

    def __init__(self, max_pending: int = 64) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.max_pending = max_pending
        self._heap: List[Tuple[float, int, Job]] = []
        self._seq = itertools.count()
        self._pending = 0
        self._lock = threading.Lock()
        # EWMA of recent job durations, feeding the retry_after estimate
        self._avg_duration = 1.0

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def submit(self, job: Job, workers: int = 1) -> None:
        """Admit ``job`` or raise :class:`AdmissionBusy`."""
        with self._lock:
            if self._pending >= self.max_pending:
                retry_after = max(
                    0.1, self._pending * self._avg_duration / max(1, workers))
                raise AdmissionBusy(retry_after, self._pending)
            self._push(job, -job.spec.priority)

    def requeue_front(self, job: Job) -> None:
        """Re-admit a crash-retried job ahead of everything (no bound:
        it was already admitted once)."""
        with self._lock:
            self._push(job, -self._FRONT)

    def _push(self, job: Job, key: float) -> None:
        heapq.heappush(self._heap, (key, next(self._seq), job))
        self._pending += 1

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def pop(self) -> Optional[Job]:
        """Highest-priority pending job, skipping cancelled entries."""
        with self._lock:
            while self._heap:
                _, _, job = heapq.heappop(self._heap)
                self._pending -= 1
                if job.state is JobState.PENDING:
                    return job
            return None

    def note_duration(self, seconds: float) -> None:
        """Feed a finished job's duration into the retry_after EWMA."""
        with self._lock:
            self._avg_duration = 0.7 * self._avg_duration + 0.3 * seconds

    def forget_cancelled(self, job: Job) -> None:
        """Account a pending job cancelled in place (heap entry stays,
        pop() will skip it; the admission bound frees immediately)."""
        with self._lock:
            self._pending = max(0, self._pending - 1)

    @property
    def pending(self) -> int:
        with self._lock:
            return self._pending
