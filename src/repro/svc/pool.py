"""Persistent warm worker pool (``repro.svc.pool``).

Workers are **long-lived processes**: each one imports the simulator
stack once, then executes job after job, so per-process costs — the
interpreter boot, ``numpy``/harness imports, and above all the
microcode build + routine/trace compilation that PR 5/6 made the
dominant per-run setup cost — amortize across the pool's lifetime
instead of being paid per job. A worker that has run the fig-14 suite
additionally holds the suite's in-process memo (compiled programs and
results), so repeated suite jobs in one worker are near-free.

The pool owns process lifecycle only; scheduling policy lives in
:class:`repro.svc.service.Service`:

* **spawned, not forked** — workers use the ``spawn`` start method by
  default so a worker is a faithful model of a fresh service process
  (and so forking a multi-threaded coordinator can never deadlock a
  child);
* **crash detection** — each worker's pipe and process sentinel are
  polled together; an EOF or a dead sentinel surfaces exactly one
  ``died`` message and the slot is respawned automatically (the service
  retries the in-flight job on the replacement);
* **health** — workers attach a :class:`repro.obs.watchdog
  .WatchdogProcessor` to every system they simulate and report
  per-job pathology counts, which the pool folds into per-worker
  health (``WorkerPool.health()``).

Fault injection for tests: when ``REPRO_SVC_CRASH_ONCE`` names a path
and that file does not exist yet, the next worker to pick up a job
creates the file and dies with ``os._exit`` *mid-job* — deterministic
crash-retry coverage with no timing races. ``REPRO_SVC_CRASH_AFTER_CKPT``
is the checkpoint-aware variant: the worker dies right after persisting
its first resume checkpoint of a ``ckpt:<dsa>`` job, so the retry path
must resume from that checkpoint rather than from cycle zero.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import threading
import time
import traceback
from contextlib import contextmanager
from multiprocessing import connection as mp_connection
from typing import Dict, List, Optional, Tuple

from .jobs import JobSpec

__all__ = ["WorkerPool", "WorkerHandle", "CRASH_ONCE_ENV",
           "CRASH_AFTER_CKPT_ENV"]

CRASH_ONCE_ENV = "REPRO_SVC_CRASH_ONCE"
CRASH_AFTER_CKPT_ENV = "REPRO_SVC_CRASH_AFTER_CKPT"

#: (kind, worker, job_id, payload) — what :meth:`WorkerPool.poll` yields
PoolMessage = Tuple[str, "WorkerHandle", Optional[int], dict]


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------

def _watchdog_counts(dogs) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for dog in dogs:
        for warning in dog.warnings:
            counts[warning.kind] = counts.get(warning.kind, 0) + 1
    return counts


def _resolve_profile(spec: JobSpec) -> str:
    """The profile name to run under, materializing sweep overrides."""
    if not spec.profile_overrides:
        return spec.profile
    from ..harness.profiles import derive_profile, ensure_profile

    return ensure_profile(derive_profile(spec.profile,
                                         dict(spec.profile_overrides)))


def _render_suite(suite) -> str:
    """Deterministic text for a ``suite`` job's VariantSets."""
    lines = ["== suite: fig14/15/16 shared runs =="]
    for label in sorted(suite):
        vs = suite[label]
        lines.append(
            f"  {label}: xcache={vs.xcache.cycles} "
            f"baseline={vs.baseline.cycles} addr={vs.addr.cycles} "
            f"speedup={vs.speedup_vs_baseline:.3f}")
    return "\n".join(lines)


def _execute_ckpt(spec: JobSpec, send_progress) -> Tuple[str, bool, dict]:
    """Run one ``ckpt:<dsa>`` job, the preemptible DSA-run experiment.

    Three entry paths, in priority order: an existing *resume
    checkpoint* (this job ran before and was preempted or its worker
    crashed — continue from the persisted cycle, overrides already
    baked into the state), the spec's *warm snapshot* (fork it, apply
    the fork overrides), or a fresh build. With ``checkpoint_every > 0``
    and a ``checkpoint_dir``, the simulation is chunked and a resume
    checkpoint persisted between chunks, so a crash loses at most one
    interval. The checkpoints themselves never perturb the simulation:
    a preempted+resumed run renders byte-identically to an undisturbed
    one.
    """
    from ..harness.sweep import SWEEP_DSAS, build_model
    from ..sim import checkpoint as ck

    dsa = spec.experiment.split(":", 1)[1]
    if dsa not in SWEEP_DSAS:
        raise ValueError(f"unknown ckpt dsa {dsa!r}; have {SWEEP_DSAS}")
    overrides = dict(spec.fork_overrides)
    resume_path = None
    if spec.checkpoint_every > 0 and spec.checkpoint_dir:
        resume_path = os.path.join(spec.checkpoint_dir,
                                   f"resume_{spec.digest()}.ckpt")
    resumed_from = 0
    if resume_path and os.path.exists(resume_path):
        model, header = ck.load_model(resume_path)
        resumed_from = header["cycle"]
        send_progress({"kind": "resume", "cycle": resumed_from})
    elif spec.snapshot:
        model, _header = ck.load_model(spec.snapshot,
                                       overrides=overrides or None)
    else:
        model = build_model(dsa, spec.profile,
                            config_overrides=overrides or None)
        model.start()
    sim = model.system.sim
    max_c = getattr(model, "_max_cycles", None)
    every = spec.checkpoint_every
    checkpoints = 0
    while (every > 0 and resume_path is not None and sim.pending
           and (max_c is None or sim.now < max_c)):
        target = sim.now + every
        if max_c is not None:
            target = min(target, max_c)
        sim.run(until=target)
        if not sim.pending or (max_c is not None and sim.now >= max_c):
            break
        ck.save_model(resume_path, model)
        checkpoints += 1
        send_progress({"kind": "checkpoint", "cycle": sim.now,
                       "count": checkpoints})
        marker = os.environ.get(CRASH_AFTER_CKPT_ENV)
        if marker and not os.path.exists(marker):
            with open(marker, "w") as fh:
                fh.write(f"pid {os.getpid()} cycle {sim.now}\n")
            os._exit(13)
    result = ck.finish_model(model)
    if resume_path and os.path.exists(resume_path):
        os.remove(resume_path)
    label = ",".join(f"{k}={v}"
                     for k, v in sorted(overrides.items())) or "(none)"
    rendered = "\n".join([
        f"== ckpt:{dsa} profile={spec.profile} ==",
        f"  overrides: {label}",
        f"  cycles={result.cycles} hits={result.hits} "
        f"misses={result.misses} dram={result.dram_accesses} "
        f"checks={'ok' if result.checks_passed else 'FAIL'}",
    ])
    return rendered, result.checks_passed, {
        "checkpoints": checkpoints,
        "resumed_from": resumed_from,
    }


def _execute_spec(spec: JobSpec, health: bool, send_progress,
                  jobs_before: int, job_id: Optional[int] = None) -> dict:
    """Run one job in this worker; returns the result payload."""
    from ..core.messages import reset_ids

    started = time.perf_counter()
    streams: list = []
    dogs: list = []
    suite_warm = None
    capture_paths: Optional[Dict[str, str]] = None
    capture_telemetry: dict = {}
    ckpt_extras: dict = {}

    if spec.experiment.startswith("sleep:"):
        seconds = float(spec.experiment.split(":", 1)[1])
        send_progress({"kind": "phase", "phase": "sleep",
                       "seconds": seconds})
        time.sleep(seconds)
        rendered, all_ok = f"== sleep: {seconds:g}s ==", True
    elif spec.experiment == "suite":
        from ..harness import suite as suite_mod

        profile = _resolve_profile(spec)
        selected = (spec.workloads if spec.workloads is not None
                    else suite_mod.SUITE_WORKLOADS)
        suite_warm = (suite_mod._memo_key(profile, tuple(selected))
                      in suite_mod._CACHE)
        reset_ids()
        result = suite_mod.run_fig14_suite(profile, tuple(selected))
        rendered = _render_suite(result)
        all_ok = all(vs.all_checked for vs in result.values())
    elif spec.experiment.startswith("ckpt:"):
        reset_ids()
        rendered, all_ok, ckpt_extras = _execute_ckpt(spec, send_progress)
    else:
        from ..harness.parallel import execute_one

        # scope capture outputs per job *then* per experiment, so the
        # final paths are known here and land in the run ledger — how
        # ``explain --ledger --job N`` finds this job's event file.
        # Opt-in via job_scoped: the parallel harness keeps plain
        # per-experiment paths.
        capture = spec.capture
        if (capture is not None and capture.active and capture.job_scoped
                and job_id is not None):
            capture = capture.for_job(job_id).for_experiment(spec.experiment)
        if capture is not None:
            capture_paths = capture.output_paths() or None

        on_attach = None
        if health or spec.stream_interval > 0:
            from ..obs.watchdog import WatchdogProcessor
            from .stream import StreamProcessor

            def on_attach(system, run):
                bus = system.ensure_bus()
                if spec.stream_interval > 0:
                    proc = StreamProcessor(send_progress, run,
                                           spec.stream_interval)
                    streams.append(bus.attach(proc))
                if health:
                    dogs.append(bus.attach(WatchdogProcessor()))

        rendered, all_ok = execute_one(
            spec.experiment, _resolve_profile(spec), capture,
            on_attach=on_attach, telemetry=capture_telemetry)

    # harness-path watchdogs (armed via the capture spec, not worker
    # health) fold into the same per-kind counts the registry scrapes
    watchdog = _watchdog_counts(dogs)
    for kind, count in (capture_telemetry.get("watchdog") or {}).items():
        watchdog[kind] = watchdog.get(kind, 0) + count
    return {
        "ok": True,
        "rendered": rendered,
        "all_ok": all_ok,
        "duration_s": time.perf_counter() - started,
        "worker_jobs_before": jobs_before,
        "suite_warm": suite_warm,
        "events_seen": sum(s.seen for s in streams),
        "watchdog": watchdog,
        "cachelens": capture_telemetry.get("cachelens"),
        "capture_paths": capture_paths,
        "checkpoints": ckpt_extras.get("checkpoints", 0),
        "resumed_from": ckpt_extras.get("resumed_from", 0),
    }


def _worker_main(conn, worker_id: int, health: bool) -> None:
    """Worker process entry: loop jobs off the pipe until told to stop."""
    # the heavy imports happen once here — this is the warmth the pool
    # amortizes (a fresh-process-per-job service pays them every job)
    from .. import harness  # noqa: F401  (pre-warm the experiment stack)

    conn.send(("ready", None, {"pid": os.getpid()}))
    jobs_done = 0
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message[0] == "stop":
            return
        _, job_id, spec = message

        def send_progress(payload: dict, _job_id=job_id) -> None:
            try:
                conn.send(("progress", _job_id, payload))
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass  # coordinator gone; the job result will fail too

        crash_marker = os.environ.get(CRASH_ONCE_ENV)
        if crash_marker and not os.path.exists(crash_marker):
            # deterministic mid-job crash for the retry tests
            with open(crash_marker, "w") as fh:
                fh.write(f"worker {worker_id} pid {os.getpid()}\n")
            send_progress({"kind": "phase", "phase": "crashing"})
            os._exit(13)

        send_progress({"kind": "phase", "phase": "start",
                       "experiment": spec.experiment})
        try:
            payload = _execute_spec(spec, health, send_progress, jobs_done,
                                    job_id=job_id)
        except BaseException:
            payload = {"ok": False, "error": traceback.format_exc()}
        payload["worker_id"] = worker_id
        jobs_done += 1
        try:
            conn.send(("result", job_id, payload))
        except (BrokenPipeError, OSError):  # pragma: no cover
            return


# ----------------------------------------------------------------------
# coordinator side
# ----------------------------------------------------------------------

_spawn_env_lock = threading.Lock()


@contextmanager
def _spawn_env():
    """Make sure spawned children can ``import repro``.

    The spawn start method re-imports the package in the child, which
    only works if the package's parent directory is importable there.
    A relative ``PYTHONPATH=src`` (the tier-1 invocation) survives
    because children inherit the cwd, but an absolute entry keeps
    worktree/tox layouts working too.
    """
    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    with _spawn_env_lock:
        previous = os.environ.get("PYTHONPATH")
        parts = [src] + ([previous] if previous else [])
        os.environ["PYTHONPATH"] = os.pathsep.join(parts)
        try:
            yield
        finally:
            if previous is None:
                os.environ.pop("PYTHONPATH", None)
            else:
                os.environ["PYTHONPATH"] = previous


class WorkerHandle:
    """One pool slot: a live worker process and its pipe."""

    def __init__(self, worker_id: int, process, conn) -> None:
        self.id = worker_id
        self.process = process
        self.conn = conn
        self.ready = False
        self.dead = False
        self.job_id: Optional[int] = None
        self.jobs_done = 0
        self.warnings = 0          # accumulated watchdog pathologies

    @property
    def idle(self) -> bool:
        return self.ready and not self.dead and self.job_id is None

    def health(self) -> dict:
        state = ("dead" if self.dead
                 else "busy" if self.job_id is not None
                 else "idle" if self.ready else "booting")
        return {"worker": self.id, "pid": self.process.pid, "state": state,
                "jobs_done": self.jobs_done, "warnings": self.warnings,
                "job": self.job_id}


class WorkerPool:
    """N long-lived worker processes with crash detection + replacement."""

    def __init__(self, workers: int = 2, health: bool = True,
                 start_method: str = "spawn", registry=None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.size = workers
        self.health_enabled = health
        self._ctx = multiprocessing.get_context(start_method)
        self._slots: List[WorkerHandle] = []
        self._ids = itertools.count(1)
        self.restarts = 0
        #: per-kind totals of worker-reported watchdog pathologies —
        #: health reports feed metrics, they are not merely logged
        self.watchdog_counts: Dict[str, int] = {}
        # telemetry registry (repro.svc.telemetry.MetricsRegistry) the
        # owning Service shares with the pool; None = standalone pool
        self.registry = registry
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._slots = [self._spawn() for _ in range(self.size)]

    def _spawn(self) -> WorkerHandle:
        worker_id = next(self._ids)
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, worker_id, self.health_enabled),
            daemon=True, name=f"repro-svc-worker-{worker_id}")
        with _spawn_env():
            process.start()
        child_conn.close()  # child's end lives in the child now
        return WorkerHandle(worker_id, process, parent_conn)

    def wait_ready(self, timeout: float = 60.0) -> None:
        """Block until every current worker has booted (benchmarks use
        this to measure steady-state throughput, not spawn cost)."""
        deadline = time.monotonic() + timeout
        while any(not h.ready and not h.dead for h in self._slots):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError("worker pool failed to become ready")
            self.poll(min(remaining, 0.1))

    def stop(self) -> None:
        for handle in self._slots:
            try:
                handle.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + 2.0
        for handle in self._slots:
            handle.process.join(max(0.0, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(1.0)
            handle.conn.close()
        self._slots = []
        self._started = False

    # ------------------------------------------------------------------
    # dispatch / messaging
    # ------------------------------------------------------------------
    def idle_workers(self) -> List[WorkerHandle]:
        return [h for h in self._slots if h.idle]

    def dispatch(self, handle: WorkerHandle, job_id: int,
                 spec: JobSpec) -> None:
        assert handle.idle, f"dispatch to non-idle worker {handle.id}"
        handle.job_id = job_id
        handle.conn.send(("job", job_id, spec))

    def poll(self, timeout: float = 0.05) -> List[PoolMessage]:
        """Drain worker messages; detect deaths and respawn those slots.

        Every dead worker yields exactly one ``("died", handle, job_id,
        ...)`` message (job_id = what it was running, if anything); its
        slot is already respawned by the time the caller sees it.
        """
        live = [h for h in self._slots if not h.dead]
        waitables = {h.conn: h for h in live}
        sentinels = {h.process.sentinel: h for h in live}
        ready = mp_connection.wait(
            list(waitables) + list(sentinels), timeout)
        messages: List[PoolMessage] = []
        suspects: List[WorkerHandle] = []
        for obj in ready:
            handle = waitables.get(obj)
            if handle is None:
                suspects.append(sentinels[obj])
                continue
            try:
                while handle.conn.poll():
                    kind, job_id, payload = handle.conn.recv()
                    if kind == "ready":
                        handle.ready = True
                    elif kind == "result":
                        handle.jobs_done += 1
                        watchdog = payload.get("watchdog") or {}
                        handle.warnings += sum(watchdog.values())
                        for warn_kind, count in sorted(watchdog.items()):
                            self.watchdog_counts[warn_kind] = (
                                self.watchdog_counts.get(warn_kind, 0)
                                + count)
                            if self.registry is not None:
                                self.registry.inc(
                                    "watchdog_warnings_total", count,
                                    kind=warn_kind)
                        if self.registry is not None:
                            lens = payload.get("cachelens") or {}
                            for cache, entry in sorted(lens.items()):
                                self.registry.set(
                                    "sim_cache_hit_rate",
                                    entry.get("hit_rate", 0.0),
                                    cache=cache)
                                self.registry.set(
                                    "sim_cache_conflict_share",
                                    entry.get("conflict_share", 0.0),
                                    cache=cache)
                                self.registry.inc(
                                    "sim_cache_misses_total",
                                    entry.get("misses", 0), cache=cache)
                        handle.job_id = None
                    messages.append((kind, handle, job_id, payload))
            except (EOFError, OSError):
                suspects.append(handle)
        for handle in suspects:
            if handle.dead:
                continue
            handle.dead = True
            handle.conn.close()
            handle.process.join(0.1)
            messages.append(("died", handle, handle.job_id,
                             {"exitcode": handle.process.exitcode}))
            self._replace(handle)
        return messages

    def _replace(self, handle: WorkerHandle) -> None:
        self.restarts += 1
        if self.registry is not None:
            self.registry.set("worker_restarts_total", self.restarts)
        self._slots[self._slots.index(handle)] = self._spawn()

    def kill(self, handle: WorkerHandle) -> None:
        """Forcibly terminate a worker (mid-run cancellation) and
        respawn its slot; never surfaces as a ``died`` message."""
        if handle.dead:
            return
        handle.dead = True
        handle.process.terminate()
        handle.process.join(1.0)
        if handle.process.is_alive():  # pragma: no cover - stubborn child
            handle.process.kill()
            handle.process.join(1.0)
        handle.conn.close()
        self._replace(handle)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def find(self, worker_id: int) -> Optional[WorkerHandle]:
        return next((h for h in self._slots if h.id == worker_id), None)

    def health(self) -> List[dict]:
        """Per-worker health snapshot (state, jobs, watchdog warnings)."""
        return [h.health() for h in self._slots]

    def __len__(self) -> int:
        return len(self._slots)
