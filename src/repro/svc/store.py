"""Content-addressed result store (``repro.svc.store``).

The service keys every simulation result by a **canonical digest** of
its request: config + workload + code version, serialized as canonical
JSON (sorted keys, compact separators, no NaN) and hashed with SHA-256.
A million identical requests therefore cost one simulation: the first
misses and simulates, every later one is a store hit (or, while the
first is still running, coalesces onto it — see
:class:`repro.svc.service.Service`).

Durability stays out of the event path (hypergraph's
Checkpointer-vs-EventProcessor split): the store is written exactly once
per job, by the coordinator, *after* a worker hands back a complete
result — never from inside the simulation, and never partially. Disk
writes are atomic (``os.replace``) and every on-disk record is wrapped
with a format version plus its own key, so a stale or foreign file
invalidates (counts as a miss) instead of crashing.

:func:`canonical_json` / :func:`digest_of` are also the keying
primitives for the figure-suite disk cache
(:mod:`repro.harness.suite`), replacing the old
``sha256(repr(key))`` scheme that depended on Python's ``repr``
stability.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import threading
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional

__all__ = ["canonical_json", "digest_of", "code_version",
           "StoreStats", "ResultStore", "STORE_FORMAT"]

#: bump when the stored record layout changes; old entries invalidate
STORE_FORMAT = 1


def canonical_json(value: Any) -> str:
    """Serialize ``value`` as canonical JSON.

    Canonical means: object keys sorted, separators fixed to
    ``(",", ":")``, non-finite floats rejected, and only JSON types
    accepted (tuples pass as arrays). Two equal values always produce
    the same byte string regardless of dict insertion order, Python
    version, or hash randomization — which is what makes the digest a
    stable content address.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      allow_nan=False, default=_canonical_default)


def _canonical_default(value: Any) -> Any:
    if isinstance(value, tuple):
        return list(value)
    raise TypeError(f"not canonically serializable: {value!r} "
                    f"({type(value).__name__})")


def digest_of(value: Any) -> str:
    """SHA-256 hex digest of ``value``'s canonical JSON."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()


_code_version_lock = threading.Lock()
_code_version: Optional[str] = None


def code_version() -> str:
    """A digest of the installed ``repro`` sources (cached per process).

    Results are only interchangeable between identical code, so the
    store key folds in a content hash over every ``.py`` file of the
    package. Hashing ~100 small files costs a few milliseconds, paid
    once per process. Falls back to the package version string when the
    sources are not readable (e.g. a zipimport install).
    """
    global _code_version
    if _code_version is not None:
        return _code_version
    with _code_version_lock:
        if _code_version is None:
            _code_version = _hash_package_sources()
    return _code_version


def _hash_package_sources() -> str:
    import repro

    try:
        root = pathlib.Path(repro.__file__).parent
        hasher = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            hasher.update(str(path.relative_to(root)).encode())
            hasher.update(path.read_bytes())
        return hasher.hexdigest()[:16]
    except OSError:
        return f"v{repro.__version__}"


@dataclass
class StoreStats:
    """Hit/miss/inflight-dedup counters (the dedup proof in tests)."""

    hits: int = 0          # get() found a finished result
    misses: int = 0        # get() found nothing
    stores: int = 0        # put() recorded a fresh result
    invalidated: int = 0   # on-disk entry rejected (format/key mismatch)
    coalesced: int = 0     # submits that joined an in-flight identical job
                           # (counted by the service, reported here so one
                           # snapshot proves end-to-end dedup)

    def as_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "invalidated": self.invalidated,
                "coalesced": self.coalesced}


class ResultStore:
    """Digest-addressed result records, in memory and optionally on disk.

    ``root=None`` keeps everything in process memory (tests, ephemeral
    pools). With a directory, each record lands in ``<digest>.json``
    written atomically, so concurrent services can share one store the
    way parallel harness workers share ``REPRO_SUITE_CACHE``.
    """

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = pathlib.Path(root) if root is not None else None
        self.stats = StoreStats()
        self._memory: Dict[str, dict] = {}
        self._lock = threading.Lock()
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # lookup / record
    # ------------------------------------------------------------------
    def get(self, digest: str) -> Optional[dict]:
        """The record stored under ``digest``, or None (counted)."""
        with self._lock:
            record = self._memory.get(digest)
            if record is None and self.root is not None:
                record = self._disk_load(digest)
                if record is not None:
                    self._memory[digest] = record
            if record is None:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
            return record

    def put(self, digest: str, record: dict) -> None:
        """Record ``record`` under ``digest`` (idempotent, atomic).

        First write wins: a digest collision means the *same* request,
        so a second record is the same result re-simulated — keeping
        the first preserves the byte-identical-retry property.
        """
        with self._lock:
            if digest in self._memory:
                return
            self._memory[digest] = record
            self.stats.stores += 1
            if self.root is not None:
                self._disk_store(digest, record)

    def contains(self, digest: str) -> bool:
        """Presence probe that does not move the hit/miss counters."""
        with self._lock:
            if digest in self._memory:
                return True
            return (self.root is not None
                    and (self.root / f"{digest}.json").exists())

    def note_coalesced(self, count: int = 1) -> None:
        with self._lock:
            self.stats.coalesced += count

    def __len__(self) -> int:
        with self._lock:
            if self.root is None:
                return len(self._memory)
            return sum(1 for _ in self.root.glob("*.json"))

    def digests(self) -> Iterator[str]:
        with self._lock:
            known = set(self._memory)
            if self.root is not None:
                known.update(p.stem for p in self.root.glob("*.json"))
        return iter(sorted(known))

    # ------------------------------------------------------------------
    # disk layer
    # ------------------------------------------------------------------
    def _disk_path(self, digest: str) -> pathlib.Path:
        return self.root / f"{digest}.json"

    def _disk_load(self, digest: str) -> Optional[dict]:
        try:
            wrapped = json.loads(self._disk_path(digest).read_text())
        except (OSError, ValueError):
            return None  # absent or torn write: miss
        if (not isinstance(wrapped, dict)
                or wrapped.get("format") != STORE_FORMAT
                or wrapped.get("key") != digest
                or not isinstance(wrapped.get("record"), dict)):
            self.stats.invalidated += 1
            return None  # stale/foreign entry: invalidate, don't crash
        return wrapped["record"]

    def _disk_store(self, digest: str, record: dict) -> None:
        wrapped = {"format": STORE_FORMAT, "key": digest, "record": record}
        path = self._disk_path(digest)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            tmp.write_text(json.dumps(wrapped, sort_keys=True) + "\n")
            os.replace(tmp, path)  # atomic vs concurrent writers
        except OSError:
            pass  # disk layer is best-effort; memory already holds it
