"""Streaming job progress across the pool boundary (``repro.svc.stream``).

Clients subscribe to a job and receive, while it runs, a sampled view
of its ``repro.obs`` bus: run milestones, every Nth event (the job's
``stream_interval``), pathology warnings, and a final metrics snapshot.

Worker side, :class:`StreamProcessor` attaches to each simulated
system's event bus (via the capture ``on_attach`` hook) and forwards
*wire dicts* — the same JSON shape :mod:`repro.obs.export` writes to
JSONL, so a client can reconstruct typed events with
``repro.obs.events.event_from_json``. Forwarding is sampled, not
per-event: a pipe write per simulated event would drown the
coordinator, and progress needs heartbeats, not a transcript (a full
transcript is what ``CaptureSpec.events_path`` is for, written
worker-locally).

Coordinator side, :class:`Subscription` is a bounded queue the service
feeds from worker messages; iteration yields progress dicts and ends on
job completion. Slow subscribers lose oldest-first rather than stalling
the pool — observability is fire-and-forget, durability is the result
store's job (see the design note in :mod:`repro.svc.store`).
"""

from __future__ import annotations

import queue
import threading
from collections import deque
from typing import Callable, Dict, Iterator, Optional

from ..obs.events import RunEnd, RunStart
from ..obs.export import event_to_dict

__all__ = ["StreamProcessor", "Subscription", "MILESTONES"]

#: event classes always forwarded regardless of the sample interval
MILESTONES = (RunStart, RunEnd)


class StreamProcessor:
    """Worker-side bus processor that forwards sampled events.

    ``send`` is the pool-boundary emitter (a pipe send wrapped by the
    worker); each payload is a small JSON-able dict::

        {"kind": "event", "run": 0, "seq": 12000, "cycle": 48210,
         "event": {"event": "walker_retire", ...wire fields...}}

    Milestone events (run start/end) are always forwarded; everything
    else every ``interval`` events (0 = milestones only). ``seq`` counts
    every event *seen*, so a client can read sampling density off the
    stream.
    """

    def __init__(self, send: Callable[[dict], None], run: int,
                 interval: int = 0) -> None:
        if interval < 0:
            raise ValueError("interval must be >= 0")
        self.send = send
        self.run = run
        self.interval = interval
        self.seen = 0
        self.forwarded = 0

    def handle(self, event) -> None:
        self.seen += 1
        milestone = isinstance(event, MILESTONES)
        if not milestone and (
                self.interval == 0 or self.seen % self.interval):
            return
        self.forwarded += 1
        self.send({
            "kind": "event",
            "run": self.run,
            "seq": self.seen,
            "cycle": event.cycle,
            "event": event_to_dict(event),
        })


class Subscription:
    """Client-side view of one job's progress stream.

    A bounded buffer: when a subscriber falls ``maxsize`` payloads
    behind, the oldest *samplable* payload is dropped — counted in
    ``dropped`` and reported through ``on_drop`` (the service wires it
    to the telemetry registry's ``stream_dropped_total``) — so a stalled
    reader can never backpressure the coordinator loop. Phase milestones
    (``kind == "phase"``) and the end-of-stream sentinel are **never**
    evicted: a slow reader loses density, not the job's shape. Iteration
    ends when the job finishes.
    """

    _DONE = object()

    def __init__(self, maxsize: int = 256,
                 on_drop: Optional[Callable[[int], None]] = None) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self.on_drop = on_drop
        self.dropped = 0
        self._items: deque = deque()
        self._cond = threading.Condition()
        self._closed = False

    @classmethod
    def _droppable(cls, item) -> bool:
        if item is cls._DONE:
            return False
        return not (isinstance(item, dict) and item.get("kind") == "phase")

    # -- coordinator side ----------------------------------------------
    def feed(self, payload: dict) -> None:
        with self._cond:
            if self._closed:
                return
            self._items.append(payload)
            if len(self._items) > self.maxsize:
                self._evict_locked()
            self._cond.notify()

    def _evict_locked(self) -> None:
        """Drop the oldest samplable payload; if the buffer holds only
        milestones it is allowed to exceed the bound (milestones are
        rare by construction — a handful per run, not per event)."""
        for index, item in enumerate(self._items):
            if self._droppable(item):
                del self._items[index]
                self.dropped += 1
                if self.on_drop is not None:
                    self.on_drop(1)
                return

    def close(self) -> None:
        """Signal end-of-stream (job finished)."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._items.append(self._DONE)
            self._cond.notify_all()

    # -- subscriber side -----------------------------------------------
    def get(self, timeout: Optional[float] = None) -> Optional[dict]:
        """Next payload, or None at end-of-stream; raises queue.Empty on
        timeout."""
        with self._cond:
            if not self._cond.wait_for(lambda: bool(self._items), timeout):
                raise queue.Empty
            payload = self._items.popleft()
            if payload is self._DONE:
                # leave the sentinel for any other reader: every get()
                # after close drains real payloads then sees the end
                self._items.append(payload)
                return None
            return payload

    def __iter__(self) -> Iterator[Dict]:
        while True:
            payload = self.get()
            if payload is None:
                return
            yield payload
