"""Streaming job progress across the pool boundary (``repro.svc.stream``).

Clients subscribe to a job and receive, while it runs, a sampled view
of its ``repro.obs`` bus: run milestones, every Nth event (the job's
``stream_interval``), pathology warnings, and a final metrics snapshot.

Worker side, :class:`StreamProcessor` attaches to each simulated
system's event bus (via the capture ``on_attach`` hook) and forwards
*wire dicts* — the same JSON shape :mod:`repro.obs.export` writes to
JSONL, so a client can reconstruct typed events with
``repro.obs.events.event_from_json``. Forwarding is sampled, not
per-event: a pipe write per simulated event would drown the
coordinator, and progress needs heartbeats, not a transcript (a full
transcript is what ``CaptureSpec.events_path`` is for, written
worker-locally).

Coordinator side, :class:`Subscription` is a bounded queue the service
feeds from worker messages; iteration yields progress dicts and ends on
job completion. Slow subscribers lose oldest-first rather than stalling
the pool — observability is fire-and-forget, durability is the result
store's job (see the design note in :mod:`repro.svc.store`).
"""

from __future__ import annotations

import queue
from typing import Callable, Dict, Iterator, Optional

from ..obs.events import RunEnd, RunStart
from ..obs.export import event_to_dict

__all__ = ["StreamProcessor", "Subscription", "MILESTONES"]

#: event classes always forwarded regardless of the sample interval
MILESTONES = (RunStart, RunEnd)


class StreamProcessor:
    """Worker-side bus processor that forwards sampled events.

    ``send`` is the pool-boundary emitter (a pipe send wrapped by the
    worker); each payload is a small JSON-able dict::

        {"kind": "event", "run": 0, "seq": 12000, "cycle": 48210,
         "event": {"event": "walker_retire", ...wire fields...}}

    Milestone events (run start/end) are always forwarded; everything
    else every ``interval`` events (0 = milestones only). ``seq`` counts
    every event *seen*, so a client can read sampling density off the
    stream.
    """

    def __init__(self, send: Callable[[dict], None], run: int,
                 interval: int = 0) -> None:
        if interval < 0:
            raise ValueError("interval must be >= 0")
        self.send = send
        self.run = run
        self.interval = interval
        self.seen = 0
        self.forwarded = 0

    def handle(self, event) -> None:
        self.seen += 1
        milestone = isinstance(event, MILESTONES)
        if not milestone and (
                self.interval == 0 or self.seen % self.interval):
            return
        self.forwarded += 1
        self.send({
            "kind": "event",
            "run": self.run,
            "seq": self.seen,
            "cycle": event.cycle,
            "event": event_to_dict(event),
        })


class Subscription:
    """Client-side view of one job's progress stream.

    A bounded queue: when a subscriber falls ``maxsize`` payloads
    behind, the oldest payload is dropped (counted in ``dropped``) so a
    stalled reader can never backpressure the coordinator loop.
    Iteration ends when the job finishes.
    """

    _DONE = object()

    def __init__(self, maxsize: int = 256) -> None:
        self._queue: queue.Queue = queue.Queue(maxsize=maxsize)
        self.dropped = 0
        self._closed = False

    # -- coordinator side ----------------------------------------------
    def feed(self, payload: dict) -> None:
        if self._closed:
            return
        while True:
            try:
                self._queue.put_nowait(payload)
                return
            except queue.Full:
                try:
                    self._queue.get_nowait()
                    self.dropped += 1
                except queue.Empty:  # pragma: no cover - racing reader
                    pass

    def close(self) -> None:
        """Signal end-of-stream (job finished)."""
        if not self._closed:
            self._closed = True
            self.feed_sentinel()

    def feed_sentinel(self) -> None:
        while True:
            try:
                self._queue.put_nowait(self._DONE)
                return
            except queue.Full:
                try:
                    self._queue.get_nowait()
                    self.dropped += 1
                except queue.Empty:  # pragma: no cover - racing reader
                    pass

    # -- subscriber side -----------------------------------------------
    def get(self, timeout: Optional[float] = None) -> Optional[dict]:
        """Next payload, or None at end-of-stream; raises queue.Empty on
        timeout."""
        payload = self._queue.get(timeout=timeout)
        return None if payload is self._DONE else payload

    def __iter__(self) -> Iterator[Dict]:
        while True:
            payload = self._queue.get()
            if payload is self._DONE:
                return
            yield payload
