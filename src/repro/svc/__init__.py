"""``repro.svc`` — simulation-as-a-service.

The service layer turns the one-shot experiment harness into a
long-running facility: declarative :class:`~repro.svc.jobs.JobSpec`
requests flow through a bounded priority queue into a **warm pool** of
persistent worker processes, results land in a **content-addressed
store** keyed by (config, workload, code version), and identical
concurrent requests **coalesce** onto one simulation. See
``DESIGN.md`` §5 and ``python -m repro.svc --help``.

Attribute access is lazy (PEP 562): ``repro.harness`` imports
``repro.svc`` pieces and vice versa, so the package body must not
import its submodules eagerly.
"""

from typing import Any

__all__ = [
    "AdmissionBusy",
    "Job",
    "JobCancelled",
    "JobFailed",
    "JobQueue",
    "JobSpan",
    "JobSpec",
    "JobState",
    "MetricsRegistry",
    "ResultStore",
    "RunLedger",
    "Service",
    "ServiceClient",
    "StreamProcessor",
    "Subscription",
    "WorkerPool",
    "canonical_json",
    "code_version",
    "digest_of",
    "merge_snapshots",
    "render_prometheus",
    "sweep_specs",
]

_EXPORTS = {
    "AdmissionBusy": "jobs",
    "Job": "jobs",
    "JobCancelled": "jobs",
    "JobFailed": "jobs",
    "JobQueue": "jobs",
    "JobSpan": "telemetry",
    "JobSpec": "jobs",
    "JobState": "jobs",
    "MetricsRegistry": "telemetry",
    "ResultStore": "store",
    "RunLedger": "telemetry",
    "Service": "service",
    "ServiceClient": "client",
    "StreamProcessor": "stream",
    "Subscription": "stream",
    "WorkerPool": "pool",
    "canonical_json": "store",
    "code_version": "store",
    "digest_of": "store",
    "merge_snapshots": "telemetry",
    "render_prometheus": "telemetry",
    "sweep_specs": "service",
}


def __getattr__(name: str) -> Any:
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f".{module}", __name__), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
