"""Miss Status Holding Registers.

The address-based comparator cache merges concurrent misses to the same
block through MSHRs — the paper's Table 1 calls out "Complex (MSHRs)"
multi-fill control for conventional caches. The X-Cache controller gets
the same effect from its active-meta-tag bitmap; this module serves the
address-cache model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

__all__ = ["MSHRFile", "MSHREntry"]


@dataclass
class MSHREntry:
    """An outstanding miss: the block plus every waiter to notify."""

    block: int
    waiters: List[Callable[[], None]] = field(default_factory=list)
    is_write: bool = False


class MSHRFile:
    """A bounded set of outstanding misses keyed by block address."""

    def __init__(self, capacity: int = 16) -> None:
        if capacity <= 0:
            raise ValueError("MSHR capacity must be positive")
        self.capacity = capacity
        self._entries: Dict[int, MSHREntry] = {}
        self.allocations = 0
        self.merges = 0
        self.stalls = 0

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def lookup(self, block: int) -> Optional[MSHREntry]:
        return self._entries.get(block)

    def allocate(self, block: int, waiter: Callable[[], None],
                 is_write: bool = False) -> bool:
        """Register a miss on ``block``.

        Returns True if this call created a new entry (i.e. the caller
        must issue the fill request); False if it merged into an existing
        miss. Raises if the file is full and the block isn't present —
        callers must check :attr:`full` first and stall.
        """
        entry = self._entries.get(block)
        if entry is not None:
            entry.waiters.append(waiter)
            entry.is_write = entry.is_write or is_write
            self.merges += 1
            return False
        if self.full:
            self.stalls += 1
            raise RuntimeError("MSHR file full; caller must back-pressure")
        self._entries[block] = MSHREntry(block, [waiter], is_write)
        self.allocations += 1
        return True

    def complete(self, block: int) -> List[Callable[[], None]]:
        """Retire the miss; returns the waiters to wake (in arrival order)."""
        entry = self._entries.pop(block, None)
        if entry is None:
            return []
        return entry.waiters

    def __len__(self) -> int:
        return len(self._entries)
