"""Set-associative address-tagged cache with MSHRs.

This is the comparator the paper measures X-Cache against (and the lower
level of the MXA hierarchy from §6). It is a conventional write-back,
write-allocate, LRU cache: tags are block addresses, hits complete after
``hit_latency`` cycles, misses allocate an MSHR and fill from the lower
level (DRAM or another cache).

Functional data always lives in the shared :class:`MemoryImage`; the
cache models *timing and traffic* (hits, misses, evictions, DRAM
accesses), which is what the evaluation's figures report.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, List, Optional

from ..obs.events import CacheAccess, CacheEvict, CacheFill, CacheModel
from ..sim import Component, Simulator
from .dram import DRAMModel, MemRequest, MemResponse
from .mshr import MSHRFile

__all__ = ["CacheConfig", "CacheLine", "AddressCache"]


def _drop_writeback(resp: MemResponse) -> None:
    """Completion sink for fire-and-forget write-backs."""


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing for an address-tagged cache."""

    ways: int = 8
    sets: int = 64
    block_bytes: int = 64
    hit_latency: int = 3
    mshr_entries: int = 16
    ports: int = 1             # accesses accepted per cycle

    def __post_init__(self) -> None:
        if self.sets & (self.sets - 1):
            raise ValueError("sets must be a power of two")
        if self.block_bytes & (self.block_bytes - 1):
            raise ValueError("block_bytes must be a power of two")
        if self.ways <= 0:
            raise ValueError("ways must be positive")

    @property
    def capacity_bytes(self) -> int:
        return self.ways * self.sets * self.block_bytes


@dataclass
class CacheLine:
    valid: bool = False
    tag: int = -1
    dirty: bool = False
    last_used: int = 0


class AddressCache(Component):
    """A conventional cache front-ending a DRAM (or another cache)."""

    def __init__(self, sim: Simulator, lower: DRAMModel,
                 config: CacheConfig = CacheConfig(),
                 name: str = "addr-cache") -> None:
        super().__init__(sim, name)
        self.lower = lower
        self.config = config
        self._sets: List[List[CacheLine]] = [
            [CacheLine() for _ in range(config.ways)] for _ in range(config.sets)
        ]
        self._mshrs = MSHRFile(config.mshr_entries)
        self._stalled: List[Callable[[], None]] = []
        self._port_cycle = -1
        self._port_used = 0
        # Logical access counter for LRU: sim-time ties (a fill and a hit
        # in the same cycle) would otherwise make eviction order depend
        # on way position.
        self._lru_tick = 0
        # geometry announce for cache-contents observers: lazily, before
        # this component's first armed cache event (armed path only)
        self._announced = False

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------
    def _block_of(self, addr: int) -> int:
        return addr & ~(self.config.block_bytes - 1)

    def _set_index(self, block: int) -> int:
        return (block // self.config.block_bytes) & (self.config.sets - 1)

    def _find(self, block: int) -> Optional[CacheLine]:
        for line in self._sets[self._set_index(block)]:
            if line.valid and line.tag == block:
                return line
        return None

    def contains(self, addr: int) -> bool:
        """Probe without side effects (testing / warm-up checks)."""
        return self._find(self._block_of(addr)) is not None

    # ------------------------------------------------------------------
    # observability (armed paths only; one `bus is None` check unarmed)
    # ------------------------------------------------------------------
    def _announce(self, bus) -> None:
        if not self._announced and bus.wants(CacheModel):
            self._announced = True
            bus.publish(CacheModel(
                cycle=self.sim.now, component=self.name, kind="addr",
                ways=self.config.ways, sets=self.config.sets,
                block_bytes=self.config.block_bytes, tag_class="addr"))

    def _publish_access(self, bus, block: int, outcome: str,
                        is_write: bool) -> None:
        self._announce(bus)
        if not bus.wants(CacheAccess):
            return
        bus.publish(CacheAccess(cycle=self.sim.now, component=self.name,
                                tag=(block,),
                                set_index=self._set_index(block),
                                outcome=outcome, is_write=is_write))

    # ------------------------------------------------------------------
    # access path
    # ------------------------------------------------------------------
    def _acquire_port(self) -> int:
        """Serialize on the cache's access ports; returns the wait."""
        now = self.sim.now
        if self._port_cycle < now:
            self._port_cycle = now
            self._port_used = 0
        while self._port_used >= self.config.ports:
            self._port_cycle += 1
            self._port_used = 0
        self._port_used += 1
        return self._port_cycle - now

    def access(self, addr: int, is_write: bool,
               callback: Callable[[int], None]) -> None:
        """Timed access to the block containing ``addr``.

        ``callback(latency)`` fires when the access completes. Writes are
        write-allocate: a write miss fills the block first, then dirties
        it. Accesses contend for ``ports`` per cycle.
        """
        start = self.sim.now
        wait = self._acquire_port()
        if wait:
            self.sim.call_after(
                wait, partial(self._access_now, addr, is_write, callback,
                              start)
            )
        else:
            self._access_now(addr, is_write, callback, start)

    def _complete_hit(self, callback: Callable[[int], None],
                      start: int) -> None:
        callback(self.sim.now - start)

    def _fill_waiter(self, block: int, is_write: bool,
                     callback: Callable[[int], None], start: int) -> None:
        """MSHR waiter: touch the freshly installed line, complete."""
        filled = self._find(block)
        if filled is not None:
            self._lru_tick += 1
            filled.last_used = self._lru_tick
            if is_write:
                filled.dirty = True
        callback(self.sim.now - start)

    def _access_now(self, addr: int, is_write: bool,
                    callback: Callable[[int], None], start: int) -> None:
        block = self._block_of(addr)
        line = self._find(block)
        self.stats.inc("accesses")
        self._lru_tick += 1
        if line is not None:
            line.last_used = self._lru_tick
            if is_write:
                line.dirty = True
            self.stats.inc("hits")
            if self.bus is not None:
                self._publish_access(self.bus, block, "hit", is_write)
            self.sim.call_after(self.config.hit_latency,
                                partial(self._complete_hit, callback, start))
            return

        self.stats.inc("misses")

        on_fill = partial(self._fill_waiter, block, is_write, callback, start)
        if self._mshrs.lookup(block) is not None:
            self._mshrs.allocate(block, on_fill, is_write)
            self.stats.inc("mshr_merges")
            if self.bus is not None:
                self._publish_access(self.bus, block, "merge", is_write)
            return
        if self._mshrs.full:
            # Back-pressure: retry once an MSHR frees up.
            self.stats.inc("mshr_stalls")
            if self.bus is not None:
                self._publish_access(self.bus, block, "mshr_stall", is_write)
            self._stalled.append(partial(self.access, addr, is_write,
                                         callback))
            return

        if self.bus is not None:
            self._publish_access(self.bus, block, "miss", is_write)
        self._mshrs.allocate(block, on_fill, is_write)
        self._issue_fill(block)

    def _on_fill_response(self, block: int, resp: MemResponse) -> None:
        self._install(block)
        for waiter in self._mshrs.complete(block):
            waiter()
        self._drain_stalled()

    def _issue_fill(self, block: int) -> None:
        self._evict_for(block)
        self.lower.request(MemRequest(addr=block),
                           partial(self._on_fill_response, block))

    def _evict_for(self, block: int) -> None:
        set_index = self._set_index(block)
        lines = self._sets[set_index]
        for line in lines:
            if not line.valid:
                return
        victim = min(lines, key=lambda l: l.last_used)
        if victim.dirty:
            self.stats.inc("writebacks")
            # Fire-and-forget write-back: functional data is already in
            # the shared image, so only the traffic/timing matters.
            self.lower.request(
                MemRequest(addr=victim.tag, is_write=True), _drop_writeback
            )
        if self.bus is not None:
            self._announce(self.bus)
            if self.bus.wants(CacheEvict):
                self.bus.publish(CacheEvict(
                cycle=self.sim.now, component=self.name, tag=(victim.tag,),
                set_index=set_index, way=lines.index(victim),
                reason="replace"))
        victim.valid = False
        victim.tag = -1
        victim.dirty = False

    def _install(self, block: int) -> None:
        lines = self._sets[self._set_index(block)]
        target = None
        for line in lines:
            if not line.valid:
                target = line
                break
        if target is None:
            self._evict_for(block)
            for line in lines:
                if not line.valid:
                    target = line
                    break
        assert target is not None
        target.valid = True
        target.tag = block
        target.dirty = False
        self._lru_tick += 1
        target.last_used = self._lru_tick
        self.stats.inc("fills")
        if self.bus is not None:
            self._announce(self.bus)
            if self.bus.wants(CacheFill):
                self.bus.publish(CacheFill(
                cycle=self.sim.now, component=self.name, tag=(block,),
                set_index=self._set_index(block),
                way=lines.index(target)))

    def _drain_stalled(self) -> None:
        if self._stalled and not self._mshrs.full:
            retries, self._stalled = self._stalled, []
            for retry in retries:
                retry()

    # ------------------------------------------------------------------
    # warm-up / reporting
    # ------------------------------------------------------------------
    def preload(self, addr: int) -> None:
        """Install a block instantly (zero-cost warm-up for experiments)."""
        block = self._block_of(addr)
        if self._find(block) is None:
            self._install(block)

    def hit_rate(self) -> float:
        acc = self.stats.get("accesses")
        return self.stats.get("hits") / acc if acc else 0.0
