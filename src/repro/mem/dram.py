"""Banked DRAM timing model (the reproduction's DRAMsim2 stand-in).

The model captures the first-order behaviour the paper's results depend
on: row-buffer locality, bank-level parallelism, and a shared data bus
that bounds bandwidth. Requests are block-granular (one cache line). A
request's service time is::

    wait-for-bank  +  (row hit ? tCL : tRP + tRCD + tCL)  +  burst

and the burst additionally serializes on the channel data bus.

Data is *functionally* backed by a :class:`~repro.mem.layout.MemoryImage`
so fills return real bytes for the walkers to parse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..sim import Component, Simulator
from .layout import MemoryImage

__all__ = ["DRAMConfig", "MemRequest", "MemResponse", "DRAMModel"]


@dataclass(frozen=True)
class DRAMConfig:
    """Timing/geometry knobs (defaults ~ DDR3-1600 at a 1 GHz DSA clock)."""

    num_banks: int = 8
    row_bytes: int = 2048
    block_bytes: int = 64
    t_cl: int = 11              # column access (row already open)
    t_rcd: int = 11             # activate
    t_rp: int = 11              # precharge
    burst_cycles: int = 4       # data-bus occupancy per block
    queue_depth: int = 32       # per-bank request queue

    def __post_init__(self) -> None:
        if self.num_banks & (self.num_banks - 1):
            raise ValueError("num_banks must be a power of two")
        if self.block_bytes & (self.block_bytes - 1):
            raise ValueError("block_bytes must be a power of two")
        if self.row_bytes % self.block_bytes:
            raise ValueError("row_bytes must be a multiple of block_bytes")


@dataclass
class MemRequest:
    """A block-granular DRAM request."""

    addr: int
    is_write: bool = False
    data: Optional[bytes] = None          # payload for writes
    tag: object = None                    # opaque requester cookie
    issued_at: int = 0


@dataclass
class MemResponse:
    """Completion for a :class:`MemRequest`."""

    addr: int
    data: bytes
    tag: object = None
    latency: int = 0


@dataclass
class _BankState:
    open_row: int = -1
    free_at: int = 0
    queue_len: int = 0


class DRAMModel(Component):
    """Block-granular banked DRAM with row-buffer timing.

    Requests arrive through :meth:`request` with a completion callback.
    The model computes the completion cycle analytically (no per-cycle
    ticking), which keeps simulation fast while preserving queueing,
    row-buffer, and bus-serialization effects.
    """

    def __init__(self, sim: Simulator, image: MemoryImage,
                 config: DRAMConfig = DRAMConfig(), name: str = "dram") -> None:
        super().__init__(sim, name)
        self.image = image
        self.config = config
        self._banks = [_BankState() for _ in range(config.num_banks)]
        self._bus_free_at = 0

    # ------------------------------------------------------------------
    # address mapping
    # ------------------------------------------------------------------
    def block_of(self, addr: int) -> int:
        return addr & ~(self.config.block_bytes - 1)

    def bank_of(self, addr: int) -> int:
        # Row-interleaved banks: consecutive rows map to different banks.
        return (addr // self.config.row_bytes) & (self.config.num_banks - 1)

    def row_of(self, addr: int) -> int:
        return addr // (self.config.row_bytes * self.config.num_banks)

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def request(self, req: MemRequest,
                callback: Callable[[MemResponse], None]) -> int:
        """Issue a block request; returns the completion cycle.

        ``callback`` fires at the completion cycle with the response
        (fill data for reads; echo for writes).
        """
        cfg = self.config
        block = self.block_of(req.addr)
        bank = self._banks[self.bank_of(block)]
        row = self.row_of(block)
        now = self.sim.now
        req.issued_at = now

        start = max(now, bank.free_at)
        if bank.open_row == row:
            access = cfg.t_cl
            self.stats.inc("row_hits")
        elif bank.open_row < 0:
            access = cfg.t_rcd + cfg.t_cl
            self.stats.inc("row_misses")
        else:
            access = cfg.t_rp + cfg.t_rcd + cfg.t_cl
            self.stats.inc("row_conflicts")
        bank.open_row = row

        data_ready = start + access
        burst_start = max(data_ready, self._bus_free_at)
        done = burst_start + cfg.burst_cycles
        bank.free_at = data_ready          # bank can pipeline next access
        self._bus_free_at = done

        self.stats.inc("writes" if req.is_write else "reads")
        self.stats.inc("bytes", cfg.block_bytes)
        self.stats.histogram("latency").add(done - now)

        if req.is_write:
            if req.data is not None:
                self.image.write_block(block, req.data[:cfg.block_bytes])
            payload = b""
        else:
            payload = self.image.read_block(block, cfg.block_bytes)

        resp = MemResponse(addr=block, data=payload, tag=req.tag,
                           latency=done - now)
        self.sim.call_at(done, lambda: callback(resp))
        return done

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def total_accesses(self) -> int:
        return self.stats.get("reads") + self.stats.get("writes")

    def row_hit_rate(self) -> float:
        hits = self.stats.get("row_hits")
        total = hits + self.stats.get("row_misses") + self.stats.get("row_conflicts")
        return hits / total if total else 0.0
