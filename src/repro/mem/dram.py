"""Banked DRAM timing model (the reproduction's DRAMsim2 stand-in).

The model captures the first-order behaviour the paper's results depend
on: row-buffer locality, bank-level parallelism, and a shared data bus
that bounds bandwidth. Requests are block-granular (one cache line). A
request's service time is::

    wait-for-bank  +  (row hit ? tCL : tRP + tRCD + tCL)  +  burst

and the burst additionally serializes on the channel data bus.

Data is *functionally* backed by a :class:`~repro.mem.layout.MemoryImage`
so fills return real bytes for the walkers to parse.

The response path is allocation-free on the steady state: completed
:class:`MemResponse` objects are recycled through a small pool and are
themselves the scheduled event (no per-request completion closure).
Responses are therefore *transient* — consume the fields inside the
callback and copy anything you need to retain (``data`` is an ordinary
bytes object and is always safe to keep).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from functools import partial

from ..obs.events import DRAMComplete, DRAMIssue
from ..sim import Component, Simulator
from ..sim.stats import STATS_COUNTERS, STATS_FULL
from .layout import MemoryImage

__all__ = ["DRAMConfig", "MemRequest", "MemResponse", "DRAMModel"]

_RESP_POOL_MAX = 128


@dataclass(frozen=True)
class DRAMConfig:
    """Timing/geometry knobs (defaults ~ DDR3-1600 at a 1 GHz DSA clock)."""

    num_banks: int = 8
    row_bytes: int = 2048
    block_bytes: int = 64
    t_cl: int = 11              # column access (row already open)
    t_rcd: int = 11             # activate
    t_rp: int = 11              # precharge
    burst_cycles: int = 4       # data-bus occupancy per block
    queue_depth: int = 32       # per-bank request queue

    def __post_init__(self) -> None:
        if self.num_banks & (self.num_banks - 1):
            raise ValueError("num_banks must be a power of two")
        if self.block_bytes & (self.block_bytes - 1):
            raise ValueError("block_bytes must be a power of two")
        if self.row_bytes % self.block_bytes:
            raise ValueError("row_bytes must be a multiple of block_bytes")


class MemRequest:
    """A block-granular DRAM request."""

    __slots__ = ("addr", "is_write", "data", "tag", "issued_at", "walk_id")

    def __init__(self, addr: int, is_write: bool = False,
                 data: Optional[bytes] = None, tag: object = None,
                 issued_at: int = 0, walk_id: int = -1) -> None:
        self.addr = addr
        self.is_write = is_write
        self.data = data          # payload for writes
        self.tag = tag            # opaque requester cookie
        self.issued_at = issued_at
        self.walk_id = walk_id    # owning walk episode (obs correlation)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "write" if self.is_write else "read"
        return f"MemRequest({kind} @{self.addr:#x}, tag={self.tag!r})"


class MemResponse:
    """Completion for a :class:`MemRequest`.

    Doubles as its own completion event: the DRAM model schedules the
    response object directly and ``__call__`` fires the requester's
    callback, then returns the object to the model's pool. Pool-owned
    responses are only valid for the duration of the callback.
    """

    __slots__ = ("addr", "data", "tag", "latency", "_callback", "_pool")

    def __init__(self, addr: int, data: bytes, tag: object = None,
                 latency: int = 0) -> None:
        self.addr = addr
        self.data = data
        self.tag = tag
        self.latency = latency
        self._callback: Optional[Callable[["MemResponse"], None]] = None
        self._pool: Optional[List["MemResponse"]] = None

    def __call__(self) -> None:
        callback = self._callback
        self._callback = None
        callback(self)
        pool = self._pool
        if pool is not None:
            self._pool = None
            if len(pool) < _RESP_POOL_MAX:
                self.data = b""
                self.tag = None
                pool.append(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MemResponse(@{self.addr:#x}, {len(self.data)}B, "
                f"lat={self.latency})")


@dataclass
class _BankState:
    open_row: int = -1
    free_at: int = 0
    queue_len: int = 0


class DRAMModel(Component):
    """Block-granular banked DRAM with row-buffer timing.

    Requests arrive through :meth:`request` with a completion callback.
    The model computes the completion cycle analytically (no per-cycle
    ticking), which keeps simulation fast while preserving queueing,
    row-buffer, and bus-serialization effects.
    """

    def __init__(self, sim: Simulator, image: MemoryImage,
                 config: DRAMConfig = DRAMConfig(), name: str = "dram") -> None:
        super().__init__(sim, name)
        self.image = image
        self.config = config
        self._banks = [_BankState() for _ in range(config.num_banks)]
        self._bus_free_at = 0
        self._resp_pool: List[MemResponse] = []
        self._count_stats = self.stats_level >= STATS_COUNTERS
        self._hist_stats = self.stats_level >= STATS_FULL
        self._latency_hist = self.stats.histogram("latency")

    # ------------------------------------------------------------------
    # address mapping
    # ------------------------------------------------------------------
    def block_of(self, addr: int) -> int:
        return addr & ~(self.config.block_bytes - 1)

    def bank_of(self, addr: int) -> int:
        # Row-interleaved banks: consecutive rows map to different banks.
        return (addr // self.config.row_bytes) & (self.config.num_banks - 1)

    def row_of(self, addr: int) -> int:
        return addr // (self.config.row_bytes * self.config.num_banks)

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def request(self, req: MemRequest,
                callback: Callable[[MemResponse], None]) -> int:
        """Issue a block request; returns the completion cycle.

        ``callback`` fires at the completion cycle with the response
        (fill data for reads; echo for writes). The response object is
        recycled after the callback returns — copy fields to retain.
        """
        cfg = self.config
        block = self.block_of(req.addr)
        bank_index = self.bank_of(block)
        bank = self._banks[bank_index]
        row = self.row_of(block)
        now = self.sim.now
        req.issued_at = now

        start = max(now, bank.free_at)
        if bank.open_row == row:
            access = cfg.t_cl
            row_stat = "row_hits"
        elif bank.open_row < 0:
            access = cfg.t_rcd + cfg.t_cl
            row_stat = "row_misses"
        else:
            access = cfg.t_rp + cfg.t_rcd + cfg.t_cl
            row_stat = "row_conflicts"
        bank.open_row = row

        data_ready = start + access
        burst_start = max(data_ready, self._bus_free_at)
        done = burst_start + cfg.burst_cycles
        bank.free_at = data_ready          # bank can pipeline next access
        self._bus_free_at = done

        if self._count_stats:
            self.stats.inc(row_stat)
            self.stats.inc("writes" if req.is_write else "reads")
            self.stats.inc("bytes", cfg.block_bytes)
            if self._hist_stats:
                self._latency_hist.add(done - now)

        if req.is_write:
            if req.data is not None:
                self.image.write_block(block, req.data[:cfg.block_bytes])
            payload = b""
        else:
            payload = self.image.read_block(block, cfg.block_bytes)

        pool = self._resp_pool
        if pool:
            resp = pool.pop()
            resp.addr = block
            resp.data = payload
            resp.tag = req.tag
            resp.latency = done - now
        else:
            resp = MemResponse(addr=block, data=payload, tag=req.tag,
                               latency=done - now)
        resp._callback = callback
        resp._pool = pool
        self.sim.call_at(done, resp)
        bus = self.bus
        if bus is not None:
            bus.publish(DRAMIssue(cycle=now, component=self.name,
                                  addr=block, is_write=req.is_write,
                                  bank=bank_index, row_result=row_stat,
                                  complete_at=done,
                                  nbytes=cfg.block_bytes,
                                  walk_id=req.walk_id))
            # the completion event is scheduled (not published eagerly)
            # so stream exporters see a chronological event order
            self.sim.call_at(done, partial(
                bus.publish,
                DRAMComplete(cycle=done, component=self.name, addr=block,
                             latency=done - now, walk_id=req.walk_id)))
        return done

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def total_accesses(self) -> int:
        return self.stats.get("reads") + self.stats.get("writes")

    def row_hit_rate(self) -> float:
        hits = self.stats.get("row_hits")
        total = hits + self.stats.get("row_misses") + self.stats.get("row_conflicts")
        return hits / total if total else 0.0
