"""Banked DRAM timing model (the reproduction's DRAMsim2 stand-in).

The model captures the first-order behaviour the paper's results depend
on: row-buffer locality, bank-level parallelism, and a shared data bus
that bounds bandwidth. Requests are block-granular (one cache line). A
request's service time is::

    wait-for-bank  +  (row hit ? tCL : tRP + tRCD + tCL)  +  burst

and the burst additionally serializes on the channel data bus.

Data is *functionally* backed by a :class:`~repro.mem.layout.MemoryImage`
so fills return real bytes for the walkers to parse.

The response path is allocation-free on the steady state: completed
:class:`MemResponse` objects are recycled through a small pool and are
themselves the scheduled event (no per-request completion closure).
When the observability bus is armed, the response also carries its own
``DRAMComplete`` event and publishes it right after the callback — one
kernel event per completion instead of two. Responses are therefore
*transient* — consume the fields inside the callback and copy anything
you need to retain (``data`` is an ordinary bytes object and is always
safe to keep).

Bank state is struct-of-arrays (``_bank_open_row`` / ``_bank_free_at``
indexed by bank number), and :meth:`DRAMModel.request_batch` issues a
whole burst of same-cycle requests in one call: NumPy decodes every
address at once, counters are bumped in bulk, and completions enter the
kernel through ``call_at_many``. ``REPRO_DRAM_BATCH=0`` falls back to
the per-request loop so the differential tests can pin both paths
byte-identical.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..obs.events import DRAMComplete, DRAMIssue
from ..sim import Component, Simulator
from ..sim.stats import STATS_COUNTERS, STATS_FULL
from .layout import MemoryImage

try:  # vectorized batch address decode; the model works without it
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is part of the toolchain
    _np = None

__all__ = ["DRAMConfig", "MemRequest", "MemResponse", "DRAMModel"]

_RESP_POOL_MAX = 128

DRAM_BATCH_ENV = "REPRO_DRAM_BATCH"
# below this many requests the NumPy round-trip costs more than it saves
_BATCH_NP_MIN = 8


def default_dram_batch() -> bool:
    """Whether :meth:`DRAMModel.request_batch` takes the batched path
    (``REPRO_DRAM_BATCH``, default on; ``0`` disables)."""
    return os.environ.get(DRAM_BATCH_ENV, "1") != "0"


@dataclass(frozen=True)
class DRAMConfig:
    """Timing/geometry knobs (defaults ~ DDR3-1600 at a 1 GHz DSA clock)."""

    num_banks: int = 8
    row_bytes: int = 2048
    block_bytes: int = 64
    t_cl: int = 11              # column access (row already open)
    t_rcd: int = 11             # activate
    t_rp: int = 11              # precharge
    burst_cycles: int = 4       # data-bus occupancy per block
    queue_depth: int = 32       # per-bank request queue

    def __post_init__(self) -> None:
        if self.num_banks & (self.num_banks - 1):
            raise ValueError("num_banks must be a power of two")
        if self.block_bytes & (self.block_bytes - 1):
            raise ValueError("block_bytes must be a power of two")
        if self.row_bytes % self.block_bytes:
            raise ValueError("row_bytes must be a multiple of block_bytes")


class MemRequest:
    """A block-granular DRAM request."""

    __slots__ = ("addr", "is_write", "data", "tag", "issued_at", "walk_id")

    def __init__(self, addr: int, is_write: bool = False,
                 data: Optional[bytes] = None, tag: object = None,
                 issued_at: int = 0, walk_id: int = -1) -> None:
        self.addr = addr
        self.is_write = is_write
        self.data = data          # payload for writes
        self.tag = tag            # opaque requester cookie
        self.issued_at = issued_at
        self.walk_id = walk_id    # owning walk episode (obs correlation)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "write" if self.is_write else "read"
        return f"MemRequest({kind} @{self.addr:#x}, tag={self.tag!r})"


class MemResponse:
    """Completion for a :class:`MemRequest`.

    Doubles as its own completion event: the DRAM model schedules the
    response object directly and ``__call__`` fires the requester's
    callback, publishes the piggybacked ``DRAMComplete`` (when the bus
    is armed), then returns the object to the model's pool. Pool-owned
    responses are only valid for the duration of the callback.
    """

    __slots__ = ("addr", "data", "tag", "latency", "_callback", "_pool",
                 "_bus", "_complete")

    def __init__(self, addr: int, data: bytes, tag: object = None,
                 latency: int = 0) -> None:
        self.addr = addr
        self.data = data
        self.tag = tag
        self.latency = latency
        self._callback: Optional[Callable[["MemResponse"], None]] = None
        self._pool: Optional[List["MemResponse"]] = None
        self._bus = None
        self._complete: Optional[DRAMComplete] = None

    def __call__(self) -> None:
        callback = self._callback
        self._callback = None
        callback(self)
        bus = self._bus
        if bus is not None:
            # published after the callback, matching the order the old
            # separately-scheduled completion event produced
            self._bus = None
            event = self._complete
            self._complete = None
            bus.publish(event)
        pool = self._pool
        if pool is not None:
            self._pool = None
            if len(pool) < _RESP_POOL_MAX:
                self.data = b""
                self.tag = None
                pool.append(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MemResponse(@{self.addr:#x}, {len(self.data)}B, "
                f"lat={self.latency})")


class DRAMModel(Component):
    """Block-granular banked DRAM with row-buffer timing.

    Requests arrive through :meth:`request` (or :meth:`request_batch`
    for a same-cycle burst) with a completion callback. The model
    computes the completion cycle analytically (no per-cycle ticking),
    which keeps simulation fast while preserving queueing, row-buffer,
    and bus-serialization effects. Bank state is struct-of-arrays:
    ``_bank_open_row[b]`` / ``_bank_free_at[b]`` replace the old
    per-bank record objects, so the batch path snapshots and updates
    plain integer lists.
    """

    def __init__(self, sim: Simulator, image: MemoryImage,
                 config: DRAMConfig = DRAMConfig(), name: str = "dram") -> None:
        super().__init__(sim, name)
        self.image = image
        self.config = config
        self._bank_open_row: List[int] = [-1] * config.num_banks
        self._bank_free_at: List[int] = [0] * config.num_banks
        self._bus_free_at = 0
        self._resp_pool: List[MemResponse] = []
        self._batch = default_dram_batch()
        self._count_stats = self.stats_level >= STATS_COUNTERS
        self._hist_stats = self.stats_level >= STATS_FULL
        self._latency_hist = self.stats.histogram("latency")

    # ------------------------------------------------------------------
    # address mapping
    # ------------------------------------------------------------------
    def block_of(self, addr: int) -> int:
        return addr & ~(self.config.block_bytes - 1)

    def bank_of(self, addr: int) -> int:
        # Row-interleaved banks: consecutive rows map to different banks.
        return (addr // self.config.row_bytes) & (self.config.num_banks - 1)

    def row_of(self, addr: int) -> int:
        return addr // (self.config.row_bytes * self.config.num_banks)

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def request(self, req: MemRequest,
                callback: Callable[[MemResponse], None]) -> int:
        """Issue a block request; returns the completion cycle.

        ``callback`` fires at the completion cycle with the response
        (fill data for reads; echo for writes). The response object is
        recycled after the callback returns — copy fields to retain.
        """
        cfg = self.config
        block = self.block_of(req.addr)
        bank_index = self.bank_of(block)
        row = self.row_of(block)
        now = self.sim.now
        req.issued_at = now

        start = max(now, self._bank_free_at[bank_index])
        open_row = self._bank_open_row[bank_index]
        if open_row == row:
            access = cfg.t_cl
            row_stat = "row_hits"
        elif open_row < 0:
            access = cfg.t_rcd + cfg.t_cl
            row_stat = "row_misses"
        else:
            access = cfg.t_rp + cfg.t_rcd + cfg.t_cl
            row_stat = "row_conflicts"
        self._bank_open_row[bank_index] = row

        data_ready = start + access
        burst_start = max(data_ready, self._bus_free_at)
        done = burst_start + cfg.burst_cycles
        # bank can pipeline next access
        self._bank_free_at[bank_index] = data_ready
        self._bus_free_at = done

        if self._count_stats:
            self.stats.inc(row_stat)
            self.stats.inc("writes" if req.is_write else "reads")
            self.stats.inc("bytes", cfg.block_bytes)
            if self._hist_stats:
                self._latency_hist.add(done - now)

        if req.is_write:
            if req.data is not None:
                self.image.write_block(block, req.data[:cfg.block_bytes])
            payload = b""
        else:
            payload = self.image.read_block(block, cfg.block_bytes)

        pool = self._resp_pool
        if pool:
            resp = pool.pop()
            resp.addr = block
            resp.data = payload
            resp.tag = req.tag
            resp.latency = done - now
        else:
            resp = MemResponse(addr=block, data=payload, tag=req.tag,
                               latency=done - now)
        resp._callback = callback
        resp._pool = pool
        bus = self.bus
        if bus is not None:
            if bus.wants(DRAMIssue):
                bus.publish(DRAMIssue(cycle=now, component=self.name,
                                      addr=block, is_write=req.is_write,
                                      bank=bank_index, row_result=row_stat,
                                      complete_at=done,
                                      nbytes=cfg.block_bytes,
                                      walk_id=req.walk_id))
            # the completion event rides on the response (published at
            # ``done``, after the callback) so stream exporters see a
            # chronological event order without a second kernel event
            if bus.wants(DRAMComplete):
                resp._bus = bus
                resp._complete = DRAMComplete(
                    cycle=done, component=self.name, addr=block,
                    latency=done - now, walk_id=req.walk_id)
        self.sim.call_at(done, resp)
        return done

    def request_batch(self, reqs: Sequence[MemRequest],
                      callback: Callable[[MemResponse], None]) -> List[int]:
        """Issue a same-cycle burst of block requests; returns the
        completion cycle of each.

        Semantically identical to calling :meth:`request` once per
        element in order — same timing chain, stats, and event sequence
        — but amortizes per-request overhead: NumPy decodes every
        address at once, bank/bus state lives in locals across the
        burst, counters are bumped in bulk, and completions enter the
        kernel through ``call_at_many``. ``REPRO_DRAM_BATCH=0`` (read
        at construction) forces the per-request fallback.
        """
        n = len(reqs)
        if n == 0:
            return []
        if n == 1 or not self._batch:
            return [self.request(r, callback) for r in reqs]
        cfg = self.config
        now = self.sim.now
        block_mask = ~(cfg.block_bytes - 1)
        row_bytes = cfg.row_bytes
        bank_mask = cfg.num_banks - 1
        row_span = row_bytes * cfg.num_banks
        if _np is not None and n >= _BATCH_NP_MIN:
            addrs = _np.fromiter((r.addr for r in reqs),
                                 dtype=_np.int64, count=n)
            blocks_arr = addrs & block_mask
            blocks = blocks_arr.tolist()
            banks = ((blocks_arr // row_bytes) & bank_mask).tolist()
            rows = (blocks_arr // row_span).tolist()
        else:
            blocks = [r.addr & block_mask for r in reqs]
            banks = [(b // row_bytes) & bank_mask for b in blocks]
            rows = [b // row_span for b in blocks]

        open_rows = self._bank_open_row
        free_ats = self._bank_free_at
        bus_free = self._bus_free_at
        t_hit = cfg.t_cl
        t_miss = cfg.t_rcd + cfg.t_cl
        t_conf = cfg.t_rp + cfg.t_rcd + cfg.t_cl
        burst = cfg.burst_cycles
        block_bytes = cfg.block_bytes
        image = self.image
        bus = self.bus
        wants_issue = bus is not None and bus.wants(DRAMIssue)
        wants_complete = bus is not None and bus.wants(DRAMComplete)
        name = self.name
        pool = self._resp_pool
        hist = self._latency_hist if (self._count_stats
                                      and self._hist_stats) else None
        hits = misses = conflicts = writes = 0
        dones: List[int] = []
        scheduled: List = []
        for i in range(n):
            req = reqs[i]
            block = blocks[i]
            bank_index = banks[i]
            row = rows[i]
            req.issued_at = now
            start = free_ats[bank_index]
            if start < now:
                start = now
            open_row = open_rows[bank_index]
            if open_row == row:
                access = t_hit
                hits += 1
                row_stat = "row_hits"
            elif open_row < 0:
                access = t_miss
                misses += 1
                row_stat = "row_misses"
            else:
                access = t_conf
                conflicts += 1
                row_stat = "row_conflicts"
            open_rows[bank_index] = row
            data_ready = start + access
            burst_start = data_ready if data_ready > bus_free else bus_free
            done = burst_start + burst
            free_ats[bank_index] = data_ready
            bus_free = done
            latency = done - now
            if hist is not None:
                hist.add(latency)
            if req.is_write:
                writes += 1
                if req.data is not None:
                    image.write_block(block, req.data[:block_bytes])
                payload = b""
            else:
                payload = image.read_block(block, block_bytes)
            if pool:
                resp = pool.pop()
                resp.addr = block
                resp.data = payload
                resp.tag = req.tag
                resp.latency = latency
            else:
                resp = MemResponse(addr=block, data=payload, tag=req.tag,
                                   latency=latency)
            resp._callback = callback
            resp._pool = pool
            if bus is not None:
                if wants_issue:
                    bus.publish(DRAMIssue(cycle=now, component=name,
                                          addr=block, is_write=req.is_write,
                                          bank=bank_index,
                                          row_result=row_stat,
                                          complete_at=done,
                                          nbytes=block_bytes,
                                          walk_id=req.walk_id))
                if wants_complete:
                    resp._bus = bus
                    resp._complete = DRAMComplete(cycle=done, component=name,
                                                  addr=block, latency=latency,
                                                  walk_id=req.walk_id)
            scheduled.append((done, resp))
            dones.append(done)
        self._bus_free_at = bus_free
        self.sim.call_at_many(scheduled)
        if self._count_stats:
            stats = self.stats
            if hits:
                stats.inc("row_hits", hits)
            if misses:
                stats.inc("row_misses", misses)
            if conflicts:
                stats.inc("row_conflicts", conflicts)
            if writes:
                stats.inc("writes", writes)
            if writes != n:
                stats.inc("reads", n - writes)
            stats.inc("bytes", n * block_bytes)
        return dones

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def total_accesses(self) -> int:
        return self.stats.get("reads") + self.stats.get("writes")

    def row_hit_rate(self) -> float:
        hits = self.stats.get("row_hits")
        total = hits + self.stats.get("row_misses") + self.stats.get("row_conflicts")
        return hits / total if total else 0.0
