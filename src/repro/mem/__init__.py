"""Memory substrate: flat image, DRAM timing model, address-tagged cache.

These are the pieces the paper takes from its testbed (DRAMsim2, the
CACTI-modelled baseline L1) and the host memory contents the walkers
traverse.
"""

from .layout import MemoryImage, OutOfMemoryError
from .dram import DRAMConfig, DRAMModel, MemRequest, MemResponse
from .mshr import MSHRFile, MSHREntry
from .addrcache import AddressCache, CacheConfig, CacheLine

__all__ = [
    "MemoryImage",
    "OutOfMemoryError",
    "DRAMConfig",
    "DRAMModel",
    "MemRequest",
    "MemResponse",
    "MSHRFile",
    "MSHREntry",
    "AddressCache",
    "CacheConfig",
    "CacheLine",
]
