"""Flat byte-addressable memory image.

The paper's walkers chase *real* pointers: a Widx bucket node holds the
global address of its successor, a CSR row is located through ``row_ptr``
offsets. To keep the reproduction honest, host data structures are laid
out into a flat :class:`MemoryImage` (a bump-allocated bytearray) and the
walkers compute and dereference real addresses inside it — exactly the
accesses an address-based cache would have to make.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

__all__ = ["MemoryImage", "OutOfMemoryError"]

_U_FORMATS = {1: "<B", 2: "<H", 4: "<I", 8: "<Q"}
_S_FORMATS = {1: "<b", 2: "<h", 4: "<i", 8: "<q"}


class OutOfMemoryError(MemoryError):
    """Allocation beyond the configured image size."""


class MemoryImage:
    """A bump allocator over a flat little-endian byte array.

    Address 0 is reserved as the null pointer; allocation starts at
    ``base``. The image grows lazily up to ``size`` bytes.
    """

    NULL = 0

    def __init__(self, size: int = 1 << 26, base: int = 64) -> None:
        if base <= 0:
            raise ValueError("base must leave address 0 as NULL")
        self.size = size
        self._data = bytearray(min(size, 1 << 16))
        self._brk = base
        self.allocations: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def alloc(self, nbytes: int, align: int = 8) -> int:
        """Reserve ``nbytes`` (aligned) and return the base address."""
        if nbytes < 0:
            raise ValueError(f"negative allocation {nbytes}")
        if align & (align - 1):
            raise ValueError(f"alignment {align} is not a power of two")
        addr = (self._brk + align - 1) & ~(align - 1)
        end = addr + nbytes
        if end > self.size:
            raise OutOfMemoryError(
                f"image exhausted: want {nbytes}B at {addr:#x}, size {self.size:#x}"
            )
        self._ensure(end)
        self._brk = end
        self.allocations.append((addr, nbytes))
        return addr

    @property
    def used(self) -> int:
        """Bytes consumed so far (high-water mark)."""
        return self._brk

    def _ensure(self, end: int) -> None:
        if end > len(self._data):
            new_len = len(self._data)
            while new_len < end:
                new_len *= 2
            self._data.extend(b"\x00" * (min(new_len, self.size) - len(self._data)))

    def _check_range(self, addr: int, nbytes: int) -> None:
        if addr < 0 or addr + nbytes > self.size:
            raise IndexError(f"access [{addr:#x}, {addr + nbytes:#x}) outside image")
        self._ensure(addr + nbytes)

    # ------------------------------------------------------------------
    # scalar accessors
    # ------------------------------------------------------------------
    def read_uint(self, addr: int, nbytes: int) -> int:
        self._check_range(addr, nbytes)
        return struct.unpack_from(_U_FORMATS[nbytes], self._data, addr)[0]

    def write_uint(self, addr: int, nbytes: int, value: int) -> None:
        self._check_range(addr, nbytes)
        struct.pack_into(_U_FORMATS[nbytes], self._data, addr, value & ((1 << (8 * nbytes)) - 1))

    def read_int(self, addr: int, nbytes: int) -> int:
        self._check_range(addr, nbytes)
        return struct.unpack_from(_S_FORMATS[nbytes], self._data, addr)[0]

    def write_int(self, addr: int, nbytes: int, value: int) -> None:
        self._check_range(addr, nbytes)
        struct.pack_into(_S_FORMATS[nbytes], self._data, addr, value)

    def read_u32(self, addr: int) -> int:
        return self.read_uint(addr, 4)

    def write_u32(self, addr: int, value: int) -> None:
        self.write_uint(addr, 4, value)

    def read_u64(self, addr: int) -> int:
        return self.read_uint(addr, 8)

    def write_u64(self, addr: int, value: int) -> None:
        self.write_uint(addr, 8, value)

    def read_f64(self, addr: int) -> float:
        self._check_range(addr, 8)
        return struct.unpack_from("<d", self._data, addr)[0]

    def write_f64(self, addr: int, value: float) -> None:
        self._check_range(addr, 8)
        struct.pack_into("<d", self._data, addr, value)

    # ------------------------------------------------------------------
    # block accessors (cache-line transfers)
    # ------------------------------------------------------------------
    def read_block(self, addr: int, nbytes: int) -> bytes:
        self._check_range(addr, nbytes)
        return bytes(self._data[addr:addr + nbytes])

    def write_block(self, addr: int, data: bytes) -> None:
        self._check_range(addr, len(data))
        self._data[addr:addr + len(data)] = data

    # ------------------------------------------------------------------
    # array helpers used by the data-structure builders
    # ------------------------------------------------------------------
    def alloc_u32_array(self, values) -> int:
        addr = self.alloc(4 * len(values), align=8)
        for i, v in enumerate(values):
            self.write_u32(addr + 4 * i, int(v))
        return addr

    def alloc_u64_array(self, values) -> int:
        addr = self.alloc(8 * len(values), align=8)
        for i, v in enumerate(values):
            self.write_u64(addr + 8 * i, int(v))
        return addr

    def alloc_f64_array(self, values) -> int:
        addr = self.alloc(8 * len(values), align=8)
        for i, v in enumerate(values):
            self.write_f64(addr + 8 * i, float(v))
        return addr

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MemoryImage(used={self._brk:#x}, size={self.size:#x})"
