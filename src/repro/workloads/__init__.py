"""Workload generators: probe traces, graphs, sparse matrices.

All deterministic by seed; sizes are scaled-down analogues of the
paper's inputs (see DESIGN.md's substitution table).
"""

from .zipf import ZipfSampler, zipf_trace
from .tpch import TPCH_QUERIES, make_widx_workload, tpch_query_workload
from .graphgen import (
    GRAPH_PRESETS,
    p2p_gnutella08,
    p2p_gnutella31,
    powerlaw_graph,
    web_google,
)
from .matrices import (
    banded_sparse,
    dense_spgemm_input,
    gnutella_spgemm_input,
    graph_adjacency,
    random_sparse,
)

__all__ = [
    "ZipfSampler", "zipf_trace",
    "make_widx_workload", "tpch_query_workload", "TPCH_QUERIES",
    "powerlaw_graph", "p2p_gnutella08", "p2p_gnutella31", "web_google",
    "GRAPH_PRESETS",
    "random_sparse", "banded_sparse", "graph_adjacency",
    "gnutella_spgemm_input", "dense_spgemm_input",
]
