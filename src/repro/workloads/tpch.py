"""Synthetic TPC-H-style hash-join probe workloads (Widx/DASX).

The paper drives Widx and DASX with hash-joins hijacked from MonetDB
running TPC-H queries 19, 20, and 22 on a 100 GB dataset — data we do
not have. The substitution (documented in DESIGN.md) preserves what the
results depend on:

* **Hash cost on the critical path** — queries 19/20 use string keys
  whose hashing costs ~60 cycles; query 22 uses cheap numeric keys.
  Modelled by the workload's ``hash_cycles``.
* **Key reuse** — probe traces are Zipfian over the key population, so
  meta-tags capture reuse exactly as hot join keys repeat.
* **Walk length** — chained buckets at a configurable load factor give
  the same pointer-chase depth distribution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Tuple

from ..dsa.widx import HASH_CYCLES_NUMERIC, HASH_CYCLES_STRING, WidxWorkload
from .zipf import zipf_trace

__all__ = ["make_widx_workload", "tpch_query_workload", "TPCH_QUERIES"]


def make_widx_workload(num_keys: int = 4096,
                       num_probes: int = 8192,
                       num_buckets: int = 2048,
                       skew: float = 0.99,
                       hash_cycles: int = HASH_CYCLES_STRING,
                       miss_fraction: float = 0.05,
                       seed: int = 1,
                       name: str = "widx") -> WidxWorkload:
    """Build a (key, rid) index and a Zipfian probe trace over it.

    ``miss_fraction`` of the probes ask for keys absent from the index
    (non-matching join keys), exercising the not-found walk path.
    """
    if num_buckets & (num_buckets - 1):
        raise ValueError("num_buckets must be a power of two")
    if not 0.0 <= miss_fraction <= 1.0:
        raise ValueError("miss_fraction outside [0, 1]")
    rng = random.Random(seed)
    keys = []
    seen = set()
    while len(keys) < num_keys:
        key = rng.getrandbits(48) | 1  # nonzero keys
        if key not in seen:
            seen.add(key)
            keys.append(key)
    pairs = tuple((key, 1_000_000 + i) for i, key in enumerate(keys))

    trace = zipf_trace(keys, num_probes, s=skew, seed=seed + 17)
    num_misses = int(num_probes * miss_fraction)
    if num_misses:
        missing = []
        while len(missing) < num_misses:
            key = rng.getrandbits(48) | 1
            if key not in seen:
                missing.append(key)
        positions = rng.sample(range(num_probes), num_misses)
        for pos, key in zip(positions, missing):
            trace[pos] = key

    return WidxWorkload(pairs=pairs, probes=tuple(trace),
                        num_buckets=num_buckets, hash_cycles=hash_cycles,
                        name=name)


# Query knobs: (hash_cycles, skew, load_factor) — 19/20 string-keyed and
# moderately skewed, 22 numeric with a flatter distribution.
TPCH_QUERIES: Dict[str, Tuple[int, float, float]] = {
    "TPC-H-19": (HASH_CYCLES_STRING, 1.35, 2.0),
    "TPC-H-20": (HASH_CYCLES_STRING, 1.25, 2.0),
    "TPC-H-22": (HASH_CYCLES_NUMERIC, 1.20, 2.0),
}


def tpch_query_workload(query: str, num_keys: int = 4096,
                        num_probes: int = 8192,
                        seed: int = 7) -> WidxWorkload:
    """One of the paper's three DSS queries, scaled for simulation."""
    if query not in TPCH_QUERIES:
        raise KeyError(f"unknown query {query!r}; have {sorted(TPCH_QUERIES)}")
    hash_cycles, skew, load_factor = TPCH_QUERIES[query]
    buckets = 1
    while buckets < num_keys / load_factor:
        buckets *= 2
    return make_widx_workload(
        num_keys=num_keys,
        num_probes=num_probes,
        num_buckets=buckets,
        skew=skew,
        hash_cycles=hash_cycles,
        seed=seed,
        name=query,
    )
