"""Sparse-matrix workload generation (SpArch / Gamma inputs).

The paper's SpGEMM input is p2p-Gnutella31's adjacency matrix squared
(A×A). We square the synthetic stand-in graph's adjacency, plus provide
uniform-random and banded generators for sweeps and tests.
"""

from __future__ import annotations

import random
from typing import Tuple

from ..data.csr import SparseMatrix
from ..data.graphs import Graph

__all__ = ["random_sparse", "banded_sparse", "graph_adjacency",
           "gnutella_spgemm_input"]


def random_sparse(rows: int, cols: int, nnz: int, seed: int = 0,
                  value_range: Tuple[float, float] = (0.5, 1.5)) -> SparseMatrix:
    """Uniform-random sparse matrix with exactly ``nnz`` nonzeros."""
    if nnz > rows * cols:
        raise ValueError(f"nnz {nnz} exceeds {rows}x{cols}")
    rng = random.Random(seed)
    cells = set()
    while len(cells) < nnz:
        cells.add((rng.randrange(rows), rng.randrange(cols)))
    lo, hi = value_range
    trips = [(r, c, lo + rng.random() * (hi - lo)) for r, c in sorted(cells)]
    return SparseMatrix.from_triplets(rows, cols, trips)


def banded_sparse(n: int, band: int = 2, seed: int = 0) -> SparseMatrix:
    """Banded matrix: dense diagonals within ±band (regular reuse)."""
    rng = random.Random(seed)
    trips = []
    for r in range(n):
        for c in range(max(0, r - band), min(n, r + band + 1)):
            trips.append((r, c, 1.0 + rng.random()))
    return SparseMatrix.from_triplets(n, n, trips)


def graph_adjacency(graph: Graph, seed: int = 0) -> SparseMatrix:
    """Adjacency matrix of a graph with random positive weights."""
    rng = random.Random(seed)
    trips = []
    for v in range(graph.num_vertices):
        for u in graph.out_neighbors(v):
            trips.append((v, u, 0.5 + rng.random()))
    return SparseMatrix.from_triplets(graph.num_vertices,
                                      graph.num_vertices, trips)


def gnutella_spgemm_input(scale: float = 1.0,
                          seed: int = 31) -> Tuple[SparseMatrix, SparseMatrix]:
    """A and B for the paper's SpGEMM runs (A = B = adjacency of the
    p2p-Gnutella31 stand-in)."""
    from .graphgen import p2p_gnutella31

    graph = p2p_gnutella31(scale, seed)
    a = graph_adjacency(graph, seed)
    return a, a


def dense_spgemm_input(n: int = 2048, nnz_per_row: int = 12,
                       skew: float = 0.8,
                       seed: int = 31) -> Tuple[SparseMatrix, SparseMatrix]:
    """A×B input for the Figure-14 SpArch/Gamma runs.

    The tiny scaled-down Gnutella stand-in averages ~2 nonzeros per row
    (rows ≪ one DRAM block), which flips the regime the paper evaluates
    in. This generator preserves that regime at simulation-friendly
    sizes (substitution documented in DESIGN.md):

    * B has ``nnz_per_row`` uniform nonzeros per row (~192 B rows, 3
      DRAM blocks — the variable multi-block tiles SpArch refills);
    * A's *column* indices are Zipf(``skew``) distributed, like real
      matrix column popularity: hot B rows are reused across many rows
      of A (Gamma's dynamic, input-dependent reuse) and hot A columns
      carry long reuse runs (SpArch's per-column reuse).
    """
    import random as _random
    from .zipf import ZipfSampler

    rng = _random.Random(seed)
    sampler = ZipfSampler(n, skew, seed ^ 0xA5)
    perm = list(range(n))
    rng.shuffle(perm)  # hot columns are arbitrary, not 0..k
    cells = set()
    for r in range(n):
        while len(cells) < (r + 1) * nnz_per_row:
            cells.add((r, perm[sampler.sample()]))
    a_trips = [(r, c, 0.5 + rng.random()) for r, c in sorted(cells)]
    a = SparseMatrix.from_triplets(n, n, a_trips)
    b = random_sparse(n, n, nnz_per_row * n, seed=seed + 1)
    return a, b
