"""Deterministic Zipfian sampling.

Database key popularity (hash-join probes) and graph degree skew are
both heavy-tailed; the paper's TPC-H traces inherit this from the data.
Our synthetic traces use a classic Zipf(s) sampler with an explicit
seed so every experiment is reproducible bit-for-bit.
"""

from __future__ import annotations

import bisect
import random
from typing import List, Sequence, TypeVar

__all__ = ["ZipfSampler", "zipf_trace"]

T = TypeVar("T")


class ZipfSampler:
    """Samples ranks 0..n-1 with P(r) ∝ 1/(r+1)^s."""

    def __init__(self, n: int, s: float = 0.99, seed: int = 0) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        if s < 0:
            raise ValueError("exponent must be non-negative")
        self.n = n
        self.s = s
        self._rng = random.Random(seed)
        cdf: List[float] = []
        total = 0.0
        for rank in range(n):
            total += 1.0 / (rank + 1) ** s
            cdf.append(total)
        self._cdf = [c / total for c in cdf]

    def sample(self) -> int:
        u = self._rng.random()
        return bisect.bisect_left(self._cdf, u)

    def trace(self, length: int) -> List[int]:
        return [self.sample() for _ in range(length)]


def zipf_trace(items: Sequence[T], length: int, s: float = 0.99,
               seed: int = 0) -> List[T]:
    """A length-``length`` trace over ``items`` with Zipfian popularity.

    The most popular item is a random member (per seed), not always
    items[0] — mirroring that hot join keys are arbitrary values.
    """
    sampler = ZipfSampler(len(items), s, seed)
    shuffled = list(items)
    random.Random(seed ^ 0x5EED).shuffle(shuffled)
    return [shuffled[rank] for rank in sampler.trace(length)]
