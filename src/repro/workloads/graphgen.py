"""Synthetic power-law graph generation (GraphPulse / SpGEMM inputs).

The paper uses SNAP graphs — p2p-Gnutella08 (N=6.3K, NNZ=21K),
p2p-Gnutella31 (N=67K, NNZ=147K), web-Google (N=916K, NNZ=5.1M). They
are not bundled here, so we generate deterministic preferential-
attachment graphs whose degree skew matches what the reuse behaviour
depends on, with a ``scale`` knob to shrink them for CI runs.
"""

from __future__ import annotations

import random
from typing import List, Set, Tuple

from ..data.graphs import Graph

__all__ = [
    "powerlaw_graph",
    "p2p_gnutella08",
    "p2p_gnutella31",
    "web_google",
    "GRAPH_PRESETS",
]


def powerlaw_graph(num_vertices: int, num_edges: int,
                   seed: int = 0) -> Graph:
    """Directed preferential-attachment graph (no self-loops/duplicates).

    Each new vertex attaches out-edges to targets drawn from a pool
    weighted by in-degree — the classic heavy-tail construction.
    """
    if num_vertices < 2:
        raise ValueError("need at least 2 vertices")
    rng = random.Random(seed)
    avg_out = max(1, num_edges // num_vertices)
    edges: Set[Tuple[int, int]] = set()
    pool: List[int] = [0, 1]
    # Every vertex keeps at least one out-edge so PageRank mass is never
    # swallowed by a dangling hub (validation compares against the
    # drop-dangling event-driven reference).
    edges.add((1, 0))
    edges.add((0, 1))
    pool.append(0)
    for v in range(2, num_vertices):
        fanout = rng.randint(1, 2 * avg_out)
        added = 0
        for _ in range(fanout):
            if rng.random() < 0.15:
                dst = rng.randrange(v)  # uniform escape hatch
            else:
                dst = pool[rng.randrange(len(pool))]
            if dst != v:
                edges.add((v, dst))
                pool.append(dst)
                added += 1
        if added == 0:  # guarantee out-degree >= 1
            edges.add((v, rng.randrange(v)))
        pool.append(v)
    # top up or trim to the target edge count
    edge_list = sorted(edges)
    while len(edge_list) < num_edges:
        src = rng.randrange(num_vertices)
        dst = pool[rng.randrange(len(pool))]
        if src != dst and (src, dst) not in edges:
            edges.add((src, dst))
            edge_list.append((src, dst))
    if len(edge_list) > num_edges:
        # Trim, but never remove a vertex's last out-edge.
        rng.shuffle(edge_list)
        out_deg: dict = {}
        for src, _dst in edge_list:
            out_deg[src] = out_deg.get(src, 0) + 1
        kept = []
        excess = len(edge_list) - num_edges
        for src, dst in edge_list:
            if excess > 0 and out_deg[src] > 1:
                out_deg[src] -= 1
                excess -= 1
            else:
                kept.append((src, dst))
        edge_list = kept
    return Graph(num_vertices, sorted(edge_list))


def p2p_gnutella08(scale: float = 1.0, seed: int = 8) -> Graph:
    """Synthetic stand-in for p2p-Gnutella08 (N=6.3K, NNZ=21K)."""
    return powerlaw_graph(max(16, int(6300 * scale)),
                          max(32, int(21_000 * scale)), seed)


def p2p_gnutella31(scale: float = 1.0, seed: int = 31) -> Graph:
    """Synthetic stand-in for p2p-Gnutella31 (N=67K, NNZ=147K)."""
    return powerlaw_graph(max(16, int(67_000 * scale)),
                          max(32, int(147_000 * scale)), seed)


def web_google(scale: float = 1.0, seed: int = 42) -> Graph:
    """Synthetic stand-in for web-Google (N=916K, NNZ=5.1M)."""
    return powerlaw_graph(max(16, int(916_000 * scale)),
                          max(32, int(5_100_000 * scale)), seed)


GRAPH_PRESETS = {
    "p2p-Gnutella08": p2p_gnutella08,
    "p2p-Gnutella31": p2p_gnutella31,
    "web-Google": web_google,
}
