"""Discrete-event simulation substrate (clock, queues, components, stats).

This is the reproduction's analogue of the paper's Verilator/TSIM
token-driven co-simulation layer: a single global clock, bounded
latency-insensitive message queues between modules, and activity-driven
clocked components.
"""

from .kernel import (
    KERNELS,
    HeapSimulator,
    SimulationError,
    Simulator,
    default_kernel,
    new_simulator,
    set_default_kernel,
    use_kernel,
)
from .queues import MessageQueue, QueueEmptyError, QueueFullError
from .component import Component
from .stats import (
    STATS_COUNTERS,
    STATS_FULL,
    STATS_OFF,
    Counter,
    Histogram,
    StatGroup,
    geomean,
    set_stats_level,
    stats_level,
    stats_scope,
)
from .trace import TraceEvent, Tracer, trace_digest

__all__ = [
    "Simulator",
    "HeapSimulator",
    "SimulationError",
    "KERNELS",
    "new_simulator",
    "default_kernel",
    "set_default_kernel",
    "use_kernel",
    "MessageQueue",
    "QueueFullError",
    "QueueEmptyError",
    "Component",
    "Counter",
    "Histogram",
    "StatGroup",
    "geomean",
    "STATS_OFF",
    "STATS_COUNTERS",
    "STATS_FULL",
    "stats_level",
    "set_stats_level",
    "stats_scope",
    "Tracer",
    "TraceEvent",
    "trace_digest",
]
