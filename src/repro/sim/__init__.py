"""Discrete-event simulation substrate (clock, queues, components, stats).

This is the reproduction's analogue of the paper's Verilator/TSIM
token-driven co-simulation layer: a single global clock, bounded
latency-insensitive message queues between modules, and activity-driven
clocked components.
"""

from .kernel import SimulationError, Simulator
from .queues import MessageQueue, QueueEmptyError, QueueFullError
from .component import Component
from .stats import Counter, Histogram, StatGroup, geomean
from .trace import TraceEvent, Tracer

__all__ = [
    "Simulator",
    "SimulationError",
    "MessageQueue",
    "QueueFullError",
    "QueueEmptyError",
    "Component",
    "Counter",
    "Histogram",
    "StatGroup",
    "geomean",
    "Tracer",
    "TraceEvent",
]
