"""Base class for clocked components.

A :class:`Component` owns a :class:`~repro.sim.stats.StatGroup` and an
activity-driven tick: calling :meth:`wake` arms a ``_tick`` callback for
the next cycle (at most one outstanding), and ``_tick`` re-arms itself by
returning True while the component still has work. This gives tick-like
semantics for busy pipelines without burning events when idle.

The tick callback is a *persistent* bound method created once at
construction — arming a tick costs one flag write and one schedule, with
no per-event closure allocation on the steady state.
"""

from __future__ import annotations

from .kernel import Simulator
from .stats import StatGroup, stats_level

__all__ = ["Component"]


class Component:
    """A named model element attached to a simulator."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.stats = StatGroup(name)
        self.stats_level = stats_level()
        # observability: publish sites test `self.bus is not None` and
        # pay one attribute load when nobody is listening
        self.bus = None
        self._tick_armed = False
        self._tick_cb = self._run_tick  # persistent: no per-arm allocation

    def ensure_bus(self):
        """The component's event bus, created on first use.

        Imported lazily so the sim substrate never depends on
        :mod:`repro.obs` at import time (obs imports sim.stats).
        """
        if self.bus is None:
            from ..obs.bus import EventBus
            self.bus = EventBus()
        return self.bus

    # ------------------------------------------------------------------
    # activity-driven ticking
    # ------------------------------------------------------------------
    def wake(self, delay: int = 0) -> None:
        """Ensure a tick is scheduled within ``delay`` cycles.

        Safe to call repeatedly; only one tick is ever outstanding.
        """
        if self._tick_armed:
            return
        self._tick_armed = True
        self.sim.call_after(delay, self._tick_cb)

    def _run_tick(self) -> None:
        self._tick_armed = False
        if self._tick():
            self.wake(1)

    def _tick(self) -> bool:
        """Do one cycle of work; return True to keep ticking.

        Subclasses with per-cycle behaviour override this. The default is
        a no-op that immediately goes back to sleep.
        """
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"
