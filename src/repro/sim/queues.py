"""Latency-insensitive message queues.

X-Cache interfaces with every neighbour — the DSA datapath (MetaIO), the
DRAM bus, and upstream/downstream caches — through "parameterized message
bundles, i.e. latency-insensitive queues" (paper §7.1). This module is
the Python analogue: a bounded FIFO with ready/valid semantics and an
optional wakeup callback so a consumer can sleep until traffic arrives.

Traffic statistics (peak depth, enqueue/dequeue totals) feed the
occupancy studies and are gathered at the default stats level; at
``STATS_OFF`` the enq/deq fast paths skip all bookkeeping (see
:mod:`repro.sim.stats`). The level is sampled once at construction.
"""

from __future__ import annotations

from collections import deque
from itertools import islice
from typing import Callable, Deque, Generic, Iterable, List, Optional, TypeVar

from .stats import STATS_COUNTERS, stats_level

__all__ = ["MessageQueue", "QueueFullError", "QueueEmptyError"]

T = TypeVar("T")


class QueueFullError(RuntimeError):
    """enq() on a queue with no space (caller should have checked ready)."""


class QueueEmptyError(RuntimeError):
    """deq()/peek() on an empty queue (caller should have checked valid)."""


class MessageQueue(Generic[T]):
    """Bounded FIFO with ready/valid flow control.

    ``capacity <= 0`` means unbounded. ``on_push`` is invoked after each
    enqueue; consumers use it to (re)arm their tick in the simulator.
    Statistics (peak depth, total traffic) feed the occupancy studies.
    """

    __slots__ = ("name", "capacity", "on_push", "_items", "_track_stats",
                 "total_enqueued", "total_dequeued", "peak_depth")

    def __init__(self, name: str = "q", capacity: int = 0,
                 on_push: Optional[Callable[[], None]] = None) -> None:
        self.name = name
        self.capacity = capacity
        self.on_push = on_push
        self._items: Deque[T] = deque()
        self._track_stats = stats_level() >= STATS_COUNTERS
        self.total_enqueued = 0
        self.total_dequeued = 0
        self.peak_depth = 0

    # ------------------------------------------------------------------
    # flow control
    # ------------------------------------------------------------------
    @property
    def ready(self) -> bool:
        """True when the producer may enqueue."""
        return self.capacity <= 0 or len(self._items) < self.capacity

    @property
    def valid(self) -> bool:
        """True when the consumer may dequeue."""
        return bool(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    # ------------------------------------------------------------------
    # data movement
    # ------------------------------------------------------------------
    def enq(self, item: T) -> None:
        items = self._items
        if 0 < self.capacity <= len(items):
            raise QueueFullError(f"queue {self.name!r} full (cap={self.capacity})")
        items.append(item)
        if self._track_stats:
            self.total_enqueued += 1
            depth = len(items)
            if depth > self.peak_depth:
                self.peak_depth = depth
        if self.on_push is not None:
            self.on_push()

    def enq_all(self, items: Iterable[T]) -> None:
        for item in items:
            self.enq(item)

    def deq(self) -> T:
        if not self._items:
            raise QueueEmptyError(f"queue {self.name!r} empty")
        if self._track_stats:
            self.total_dequeued += 1
        return self._items.popleft()

    def peek(self) -> T:
        if not self._items:
            raise QueueEmptyError(f"queue {self.name!r} empty")
        return self._items[0]

    def window(self, n: int) -> List[T]:
        """The first ``n`` queued items, oldest first (scheduler scan)."""
        return list(islice(self._items, n))

    def remove(self, item: T) -> None:
        """Remove a specific item (a scheduler picked it mid-queue)."""
        try:
            self._items.remove(item)
        except ValueError:
            raise QueueEmptyError(
                f"item not present in queue {self.name!r}") from None
        if self._track_stats:
            self.total_dequeued += 1

    def drain(self) -> List[T]:
        """Dequeue everything at once (testing/teardown helper)."""
        out = list(self._items)
        if self._track_stats:
            self.total_dequeued += len(self._items)
        self._items.clear()
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MessageQueue({self.name!r}, depth={len(self._items)}, "
                f"cap={self.capacity})")
