"""Deterministic checkpoint/restore of a whole simulated system.

A *snapshot* serializes the complete simulator state of a DSA model —
the kernel's bucketed event queue (persistent tick callbacks and pooled
completion events included, by identity), walker contexts and X-register
files, meta-tag and address-cache arrays with their LRU/occupancy state,
MSHRs, the DRAM bank struct-of-arrays, every stat counter, the RNG
stream, and the compile/trace-cache cursors — to a versioned,
digest-stamped file. Restoring and running to completion is
**byte-identical** to a straight run: golden-trace digests and all stats
match, for every DSA and compile mode.

What is *state* vs *derivable cache*:

* State (pickled verbatim): queues, walkers, tags, stats, cursors,
  messages, scheduled events. Event callbacks are bound methods and
  ``functools.partial``\\ s of bound methods — pickle's memoization
  preserves callback identity against the owning components.
* Derivable (dropped + rebuilt): fused-block tables and bound episode
  traces hold generated code objects. They are rebuilt on restore by
  :meth:`~repro.core.controller.Controller._rebind_compiled`, a pure
  function of (program, config, recorded trace paths) — so the rebuilt
  closures behave identically, including mid-trace resume cursors.
  Recorded :class:`~repro.core.trace_compile.TracePath`\\ s are plain
  data but the microcode RAM drops them on pickle (they are re-learned
  in ordinary runs); the snapshot carries them explicitly so episode
  traces survive without re-warming.

Wire format (version 1)::

    b"XCKPT1\\n" | u32 header_len | header JSON | pickle payload

The header records the format version, snapshot cycle, kernel name,
model class, payload length + sha256 (the *snapshot digest*), and a
geometry digest. Restores fail loudly with typed errors — torn file,
version mismatch, geometry mismatch, non-fork-safe override — never a
silently wrong simulation.

**Snapshot-fork sweeps**: :func:`apply_fork_overrides` re-points the
restored config at new *fork-safe* values — post-warmup knobs (back-end
width, latencies, scheduling window, compile thresholds, DRAM timing)
whose change cannot invalidate warmed state. Geometry-changing fields
(ways/sets, data RAM, tag layout, walker parallelism, compile mode,
DRAM bank structure) are rejected with :class:`ForkOverrideError`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import os
import pickle
import random
import struct as _struct
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "SNAPSHOT_FORMAT",
    "SnapshotError",
    "TornSnapshotError",
    "SnapshotVersionError",
    "GeometryMismatchError",
    "ForkOverrideError",
    "FORK_SAFE_FIELDS",
    "FORK_SAFE_DRAM_FIELDS",
    "save_model",
    "load_model",
    "read_header",
    "snapshot_digest",
    "geometry_digest",
    "apply_fork_overrides",
    "warm_model",
    "finish_model",
]

SNAPSHOT_FORMAT = 1
_MAGIC = b"XCKPT1\n"


class SnapshotError(RuntimeError):
    """Base class for checkpoint/restore failures."""


class TornSnapshotError(SnapshotError):
    """Truncated, corrupt, or not-a-snapshot file."""


class SnapshotVersionError(SnapshotError):
    """Snapshot written by an incompatible format version."""


class GeometryMismatchError(SnapshotError):
    """Snapshot geometry differs from what the caller expects."""


class ForkOverrideError(SnapshotError):
    """A fork override names a field that is not fork-safe."""


# Post-warmup knobs whose change cannot invalidate warmed state: they
# alter *future* timing/scheduling decisions only. Geometry and
# constructed-at-build-time fields (ways, sets, tag_fields, data RAM,
# wlen, block_bytes, num_active, xregs_per_walker, compile_mode, DRAM
# bank structure) are not fork-safe: warmed arrays would be silently
# reinterpreted under a different shape.
FORK_SAFE_FIELDS = frozenset({
    "num_exe", "hit_latency", "hit_ports", "sched_window",
    "trace_threshold", "min_fuse_len", "max_outstanding_fills",
})
# DRAM timing knobs, addressed as "dram.<field>" in override dicts.
FORK_SAFE_DRAM_FIELDS = frozenset({
    "t_cl", "t_rcd", "t_rp", "burst_cycles", "queue_depth",
})
# Fork-safe fields that nonetheless feed block fusing / trace
# segmentation (bind_routine drops blocks wider than num_exe;
# compiled_routine fuses by min_fuse_len). Changing one re-segments the
# rebuilt traces, so saved mid-trace resume cursors — segment indices
# into the *old* segmentation — are invalidated and those executions
# deopt to the interpreter at their saved pc.
_REBIND_FIELDS = frozenset({"num_exe", "min_fuse_len"})


# ----------------------------------------------------------------------
# model plumbing
# ----------------------------------------------------------------------
def _system_of(model: Any):
    """The :class:`~repro.core.xcache.XCacheSystem` under ``model``."""
    system = getattr(model, "system", None)
    if system is None and hasattr(model, "controller") \
            and hasattr(model, "sim"):
        system = model
    if system is None:
        raise SnapshotError(
            f"{type(model).__name__} has no .system; snapshot roots must "
            "wrap an XCacheSystem")
    return system


def _kernel_name(sim: Any) -> str:
    from .kernel import KERNELS

    for name, cls in KERNELS.items():
        if type(sim) is cls:
            return name
    return type(sim).__name__


def geometry_digest(model: Any) -> str:
    """Digest of everything a fork must NOT change.

    Fork-safe fields are excluded, so a forked config still matches its
    parent snapshot's geometry; anything else differing (cache shape,
    data RAM, walker program, model class, DRAM banking) changes the
    digest and trips :class:`GeometryMismatchError` on a guarded load.
    """
    system = _system_of(model)
    config = system.controller.config
    xcfg = {field.name: getattr(config, field.name)
            for field in dataclasses.fields(config)
            if field.name not in FORK_SAFE_FIELDS}
    xcfg["tag_fields"] = list(config.tag_fields)
    dram_config = system.dram.config
    dcfg = {field.name: getattr(dram_config, field.name)
            for field in dataclasses.fields(dram_config)
            if field.name not in FORK_SAFE_DRAM_FIELDS}
    program = system.controller.program
    blob = json.dumps({
        "model": type(model).__name__,
        "xcache": xcfg,
        "dram": dcfg,
        "program": sorted(r.name for r in program.ram.routines),
    }, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


# ----------------------------------------------------------------------
# save
# ----------------------------------------------------------------------
def save_model(path: str, model: Any) -> Dict[str, Any]:
    """Snapshot ``model`` (a DSA model wrapping an XCacheSystem) to
    ``path``; returns the written header dict.

    The model must be quiescent (between ``sim.run()`` calls). File
    handles don't pickle: detach capture exporters before snapshotting
    (ring-buffer tracers and in-memory observers are fine).
    """
    from ..core import messages
    from .stats import _stats_level

    system = _system_of(model)
    sim = system.sim
    if getattr(sim, "_running", False):
        raise SnapshotError("cannot snapshot while sim.run() is active")
    ram = system.controller.program.ram
    payload_obj = {
        "model": model,
        # the RAM's __getstate__ drops recorded trace paths (re-learned
        # in ordinary runs); carry them so restore re-installs and
        # rebinding finds them (episode traces survive, deopt cursors
        # and all)
        "ram_traces": dict(ram._traces),
        # uid continuity: new messages after restore must not collide
        # with uids keyed in pickled in-flight maps
        "msg_ids": messages._ids,
        "rng": random.getstate(),
    }
    try:
        payload = pickle.dumps(payload_obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise SnapshotError(
            f"simulator state did not serialize ({exc!r}); detach "
            "file-backed observers/exporters before snapshotting") from exc
    header = {
        "format": SNAPSHOT_FORMAT,
        "cycle": sim.now,
        "kernel": _kernel_name(sim),
        "model_class": type(model).__name__,
        "stats_level": _stats_level,
        "geometry": geometry_digest(model),
        "payload_bytes": len(payload),
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
    }
    header_blob = json.dumps(header, sort_keys=True).encode()
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as fh:
        fh.write(_MAGIC)
        fh.write(_struct.pack("<I", len(header_blob)))
        fh.write(header_blob)
        fh.write(payload)
    os.replace(tmp, path)
    return header


# ----------------------------------------------------------------------
# load
# ----------------------------------------------------------------------
def _read_raw(path: str) -> Tuple[Dict[str, Any], bytes]:
    try:
        with open(path, "rb") as fh:
            blob = fh.read()
    except OSError as exc:
        raise TornSnapshotError(f"cannot read snapshot {path}: {exc}") \
            from exc
    if not blob.startswith(_MAGIC):
        if blob[:5] == _MAGIC[:5]:
            # right family, different version byte
            raise SnapshotVersionError(
                f"{path}: snapshot magic {blob[:7]!r} does not match "
                f"supported format {_MAGIC!r}")
        raise TornSnapshotError(f"{path} is not an X-Cache snapshot")
    off = len(_MAGIC)
    if len(blob) < off + 4:
        raise TornSnapshotError(f"{path}: truncated before header length")
    (header_len,) = _struct.unpack_from("<I", blob, off)
    off += 4
    if len(blob) < off + header_len:
        raise TornSnapshotError(f"{path}: truncated inside header")
    try:
        header = json.loads(blob[off:off + header_len])
    except ValueError as exc:
        raise TornSnapshotError(f"{path}: corrupt header JSON") from exc
    if header.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotVersionError(
            f"{path}: format {header.get('format')!r} unsupported "
            f"(this build reads format {SNAPSHOT_FORMAT})")
    payload = blob[off + header_len:]
    if len(payload) != header.get("payload_bytes"):
        raise TornSnapshotError(
            f"{path}: payload is {len(payload)} bytes, header promises "
            f"{header.get('payload_bytes')}")
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header.get("payload_sha256"):
        raise TornSnapshotError(f"{path}: payload digest mismatch")
    return header, payload


def read_header(path: str) -> Dict[str, Any]:
    """Validate and return the snapshot header (payload digest checked)."""
    header, _ = _read_raw(path)
    return header


def snapshot_digest(path: str) -> str:
    """The snapshot's identity digest (sha256 of the state payload)."""
    return read_header(path)["payload_sha256"]


def load_model(path: str, overrides: Optional[Dict[str, Any]] = None,
               expect_geometry: Optional[str] = None
               ) -> Tuple[Any, Dict[str, Any]]:
    """Restore a model from ``path``; returns ``(model, header)``.

    ``overrides`` applies fork-safe config changes (see
    :func:`apply_fork_overrides`) before the compiled caches are
    rebound. ``expect_geometry`` (a :func:`geometry_digest` value)
    guards against restoring a stale or foreign snapshot into a job
    that assumes different geometry.

    Restoring rebinds the module-level message-uid stream and RNG state
    to the snapshot's, so only one restored system should be simulated
    at a time per process (the same rule ordinary experiments follow).
    """
    from ..core import messages

    header, payload = _read_raw(path)
    if expect_geometry is not None and header["geometry"] != expect_geometry:
        raise GeometryMismatchError(
            f"{path}: snapshot geometry {header['geometry'][:12]}… does "
            f"not match expected {expect_geometry[:12]}…; a snapshot "
            "only restores into the exact geometry it was taken from")
    try:
        payload_obj = pickle.loads(payload)
    except Exception as exc:
        raise SnapshotError(
            f"{path}: state payload failed to unpickle ({exc!r}); the "
            "snapshot was likely written by an incompatible build") \
            from exc
    model = payload_obj["model"]
    messages._ids = payload_obj["msg_ids"]
    random.setstate(payload_obj["rng"])
    system = _system_of(model)
    system.controller.program.ram._traces.update(payload_obj["ram_traces"])
    if overrides:
        apply_fork_overrides(model, overrides)
    system.controller._rebind_compiled()
    return model, header


# ----------------------------------------------------------------------
# fork overrides
# ----------------------------------------------------------------------
def apply_fork_overrides(model: Any,
                         overrides: Dict[str, Any]) -> Dict[str, Any]:
    """Apply post-warmup config overrides to a restored model.

    Keys are :class:`~repro.core.config.XCacheConfig` field names, or
    ``dram.<field>`` for DRAM timing. Every key is validated against
    the fork-safe whitelist; a geometry-changing key raises
    :class:`ForkOverrideError`. Returns the normalized override dict.
    """
    xc: Dict[str, Any] = {}
    dr: Dict[str, Any] = {}
    for key, value in sorted(overrides.items()):
        if key.startswith("dram."):
            name = key[len("dram."):]
            if name not in FORK_SAFE_DRAM_FIELDS:
                raise ForkOverrideError(
                    f"dram.{name} is not fork-safe; fork-safe DRAM "
                    f"fields: {sorted(FORK_SAFE_DRAM_FIELDS)}")
            dr[name] = int(value)
        elif key in FORK_SAFE_FIELDS:
            xc[key] = int(value)
        else:
            raise ForkOverrideError(
                f"{key!r} is not fork-safe (geometry-changing overrides "
                f"need a fresh warmup); fork-safe fields: "
                f"{sorted(FORK_SAFE_FIELDS)} plus "
                f"dram.{{{','.join(sorted(FORK_SAFE_DRAM_FIELDS))}}}")
    system = _system_of(model)
    controller = system.controller
    if xc:
        old_config = controller.config
        controller.config = dataclasses.replace(old_config, **xc)
        if isinstance(getattr(model, "config", None),
                      type(controller.config)):
            model.config = controller.config
        # enabling trace compilation on a fork warmed with it disabled
        if (controller._traces is None
                and controller.config.compile_mode != "off"
                and controller.config.trace_threshold > 0):
            controller._traces = {}
        # A changed binding input re-segments the traces that
        # _rebind_compiled is about to rebuild; saved cursors index the
        # old segmentation and must not be re-pointed into the new one.
        # ex.pc always holds the cursor's action pc (emit_save keeps
        # them in lockstep), so dropping to the interpreter there is
        # the architecturally identical fallback.
        if any(getattr(old_config, f) != getattr(controller.config, f)
               for f in _REBIND_FIELDS & xc.keys()):
            for ex in controller._execq:
                if ex.trace is not None and ex.trace_pos:
                    ex.trace = None
                    ex.trace_pos = 0
    if dr:
        system.dram.config = dataclasses.replace(system.dram.config, **dr)
    normalized = {**{k: v for k, v in xc.items()},
                  **{f"dram.{k}": v for k, v in dr.items()}}
    return normalized


# ----------------------------------------------------------------------
# run-phase helpers (shared by harness sweeps, svc preemption, tests)
# ----------------------------------------------------------------------
def warm_model(model: Any, cycle: int) -> None:
    """Run a freshly built model's warmup phase to ``cycle``.

    Calls the model's :meth:`start` (handler attach + request seeding)
    and advances the kernel to ``cycle`` without finalizing — the
    snapshot point. ``finish_model`` (or ``model.system.run()`` +
    ``model.finish()``) completes the run later.
    """
    model.start()
    model.system.sim.run(until=cycle)


def finish_model(model: Any):
    """Run a (restored or warmed) model to completion; returns its
    :class:`~repro.dsa.base.RunResult`."""
    until = getattr(model, "_max_cycles", None)
    model.system.run(until=until)
    return model.finish()
