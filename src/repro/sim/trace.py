"""Event tracing (the reproduction's waveform viewer).

Attach a :class:`Tracer` to a controller (``controller.tracer = Tracer()``)
and every architecturally interesting event — request arrival, hit,
walker dispatch/retire, fill arrival — lands in a bounded ring buffer
with its cycle stamp. ``render()`` prints a readable log;
``filter()``/``count()`` support assertions in tests ("exactly one
dispatch per miss").

Tracing is strictly opt-in: the hot paths test ``tracer is None`` and
pay nothing otherwise.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterable, List, Optional, Tuple

__all__ = ["TraceEvent", "Tracer", "trace_digest"]


def trace_digest(events: Iterable["TraceEvent"]) -> str:
    """Stable hex digest of a per-cycle event trace.

    The golden-trace tests hash the full trace of a run under two
    kernels and assert equality — any reordering, missing, or extra
    event (even within one cycle) changes the digest.
    """
    h = hashlib.sha256()
    for e in events:
        h.update(repr((e.cycle, e.component, e.kind, e.detail)).encode())
    return h.hexdigest()


@dataclass(frozen=True)
class TraceEvent:
    """One traced occurrence."""

    cycle: int
    component: str
    kind: str                 # e.g. "hit", "dispatch", "fill", "retire"
    detail: Tuple[Tuple[str, object], ...] = ()

    def get(self, name: str, default: object = None) -> object:
        for key, value in self.detail:
            if key == name:
                return value
        return default

    def render(self) -> str:
        details = " ".join(f"{k}={v}" for k, v in self.detail)
        return f"[{self.cycle:>8}] {self.component:<12} {self.kind:<10} {details}"


class Tracer:
    """A bounded ring buffer of :class:`TraceEvent`.

    ``capacity`` bounds memory for long runs (oldest events drop).
    ``kinds`` restricts recording to the listed event kinds.
    """

    def __init__(self, capacity: int = 10_000,
                 kinds: Optional[Iterable[str]] = None) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._kinds = frozenset(kinds) if kinds is not None else None
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.total_emitted = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def emit(self, cycle: int, component: str, kind: str, **detail) -> None:
        if self._kinds is not None and kind not in self._kinds:
            return
        self.total_emitted += 1
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(TraceEvent(
            cycle, component, kind, tuple(sorted(detail.items()))))

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def filter(self, kind: Optional[str] = None,
               component: Optional[str] = None,
               predicate: Optional[Callable[[TraceEvent], bool]] = None
               ) -> List[TraceEvent]:
        out = []
        for event in self._events:
            if kind is not None and event.kind != kind:
                continue
            if component is not None and event.component != component:
                continue
            if predicate is not None and not predicate(event):
                continue
            out.append(event)
        return out

    def digest(self) -> str:
        """Hex digest of the held events plus the emit/drop totals.

        Including ``total_emitted`` makes the digest sensitive to events
        that rolled off the ring, so two runs only match when they
        emitted identical traces end to end.
        """
        h = hashlib.sha256(trace_digest(self._events).encode())
        h.update(f"{self.total_emitted}:{self.dropped}".encode())
        return h.hexdigest()

    def count(self, kind: str) -> int:
        return sum(1 for e in self._events if e.kind == kind)

    def kinds(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for event in self._events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def render(self, last: Optional[int] = None) -> str:
        events = list(self._events)
        if last is not None:
            events = events[-last:]
        return "\n".join(e.render() for e in events)

    def clear(self) -> None:
        """Reset to a fresh tracer: events, emit total, and drop count.

        A cleared tracer must be indistinguishable from a new one — the
        digest mixes in ``total_emitted``/``dropped``, so leaving them
        stale would make post-clear digests diverge across otherwise
        identical runs.
        """
        self._events.clear()
        self.total_emitted = 0
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)
