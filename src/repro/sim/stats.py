"""Lightweight statistics containers shared by all models.

Every timed component keeps a :class:`StatGroup` of named counters and
histograms. The experiment harness aggregates these into the rows the
paper's figures report (memory accesses, action counts, occupancy, energy
events).

Statistics bookkeeping on the hot paths (per-event counter increments,
per-request latency histograms, queue peak-depth tracking) can be
compiled out via the global *stats level*:

* ``STATS_OFF`` (0) — hot-path bookkeeping skipped entirely; reports
  built from counters will be empty. Microbenchmark mode.
* ``STATS_COUNTERS`` (1) — counters and queue traffic totals, but no
  histograms. Enough for the figure-14/15/16 aggregate rows.
* ``STATS_FULL`` (2, the default) — everything, including the latency
  and occupancy histograms the figure-4/7 studies read.

Components sample the level once at construction (the branch compiles
down to a cached boolean test), so change it *before* building a model —
:func:`stats_scope` makes that ergonomic.
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Mapping, Tuple

__all__ = [
    "Counter",
    "Histogram",
    "StatGroup",
    "geomean",
    "STATS_OFF",
    "STATS_COUNTERS",
    "STATS_FULL",
    "stats_level",
    "set_stats_level",
    "stats_scope",
]

STATS_OFF = 0
STATS_COUNTERS = 1
STATS_FULL = 2

_stats_level = STATS_FULL


def stats_level() -> int:
    """The global statistics level (see module docstring)."""
    return _stats_level


def set_stats_level(level: int) -> int:
    """Set the global statistics level; returns the previous level."""
    global _stats_level
    if level not in (STATS_OFF, STATS_COUNTERS, STATS_FULL):
        raise ValueError(f"stats level must be 0, 1 or 2, got {level!r}")
    previous = _stats_level
    _stats_level = level
    return previous


@contextmanager
def stats_scope(level: int) -> Iterator[None]:
    """Temporarily set the stats level (build models inside the scope)."""
    previous = set_stats_level(level)
    try:
        yield
    finally:
        set_stats_level(previous)


class Counter:
    """A named monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name}={self.value})"


class Histogram:
    """A sparse histogram over integer-ish keys with basic moments."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.buckets: Dict[int, int] = defaultdict(int)
        self.total = 0
        self.count = 0
        self.min_seen: int = 0
        self.max_seen: int = 0

    def add(self, value: int, weight: int = 1) -> None:
        self.buckets[value] += weight
        self.total += value * weight
        if self.count == 0:
            self.min_seen = self.max_seen = value
        else:
            if value < self.min_seen:
                self.min_seen = value
            if value > self.max_seen:
                self.max_seen = value
        self.count += weight

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> int:
        """Return the smallest value covering fraction ``p`` of samples.

        An empty histogram reports 0 for any valid ``p`` (renderers show
        a placeholder instead of a misleading zero); an out-of-range
        ``p`` raises even when empty.
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"percentile {p} outside [0, 1]")
        if not self.count:
            return 0
        need = p * self.count
        seen = 0
        for value in sorted(self.buckets):
            seen += self.buckets[value]
            if seen >= need:
                return value
        return self.max_seen

    def items(self) -> List[Tuple[int, int]]:
        return sorted(self.buckets.items())

    def __repr__(self) -> str:  # pragma: no cover
        return (f"Histogram({self.name}, n={self.count}, mean={self.mean:.2f}, "
                f"range=[{self.min_seen},{self.max_seen}])")


class StatGroup:
    """A namespaced bag of counters and histograms."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.counters: Dict[str, Counter] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self.histograms:
            self.histograms[name] = Histogram(name)
        return self.histograms[name]

    def inc(self, name: str, amount: int = 1) -> None:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        counter.value += amount

    def get(self, name: str, default: int = 0) -> int:
        counter = self.counters.get(name)
        return counter.value if counter is not None else default

    def as_dict(self) -> Dict[str, int]:
        return {name: c.value for name, c in sorted(self.counters.items())}

    def merge(self, other: "StatGroup") -> None:
        """Accumulate another group's counters into this one."""
        for name, counter in other.counters.items():
            self.counter(name).inc(counter.value)
        for name, hist in other.histograms.items():
            mine = self.histogram(name)
            for value, weight in hist.buckets.items():
                mine.add(value, weight)

    def reset(self) -> None:
        for counter in self.counters.values():
            counter.reset()
        self.histograms.clear()

    def __repr__(self) -> str:  # pragma: no cover
        return f"StatGroup({self.name}, {self.as_dict()})"


def geomean(values: Iterable[float]) -> float:
    """Geometric mean, used for the paper's cross-DSA speedup summaries."""
    vals = [float(v) for v in values]
    if not vals:
        return 0.0
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    log_sum = 0.0
    for v in vals:
        import math
        log_sum += math.log(v)
    import math
    return math.exp(log_sum / len(vals))
