"""Discrete-event simulation kernel.

The kernel drives every timed model in the reproduction: the DRAM model,
the address-based cache, the X-Cache controller pipeline, and the DSA
datapaths. Time is measured in integer *cycles* of a single global clock
(the paper synthesizes at 1 GHz; we keep cycles abstract and only report
ratios).

The kernel is event-driven rather than tick-driven: components schedule
callbacks only when they have work, so large idle stretches (e.g. a DSA
waiting on a DRAM burst) cost nothing. Components that need per-cycle
behaviour while active (the controller pipeline) reschedule themselves
each cycle and stop rescheduling when their queues drain.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

__all__ = ["Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, runaway runs)."""


class Simulator:
    """A single-clock discrete-event simulator.

    Usage::

        sim = Simulator()
        sim.call_at(10, lambda: print(sim.now))
        sim.run()

    Events scheduled for the same cycle run in FIFO order of scheduling,
    which keeps component interactions deterministic.
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: List[Tuple[int, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def call_at(self, cycle: int, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run at absolute ``cycle``."""
        if cycle < self.now:
            raise SimulationError(
                f"cannot schedule at cycle {cycle}; now is {self.now}"
            )
        heapq.heappush(self._queue, (cycle, next(self._seq), fn))

    def call_after(self, delay: int, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.call_at(self.now + delay, fn)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run all events of the next pending cycle.

        Returns False when no events remain.
        """
        if not self._queue:
            return False
        cycle = self._queue[0][0]
        self.now = cycle
        while self._queue and self._queue[0][0] == cycle:
            _, _, fn = heapq.heappop(self._queue)
            fn()
        return True

    def run(self, until: Optional[int] = None, max_events: int = 500_000_000) -> int:
        """Run until the event queue drains (or ``until`` cycles elapse).

        Returns the final cycle. ``max_events`` guards against livelock in
        a buggy model; hitting it raises :class:`SimulationError`.
        """
        if self._running:
            raise SimulationError("re-entrant run()")
        self._running = True
        self._stopped = False
        events = 0
        try:
            while self._queue and not self._stopped:
                cycle = self._queue[0][0]
                if until is not None and cycle > until:
                    self.now = until
                    break
                self.now = cycle
                _, _, fn = heapq.heappop(self._queue)
                fn()
                events += 1
                if events > max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events at cycle {self.now}; "
                        "likely a livelocked model"
                    )
        finally:
            self._running = False
        return self.now

    def stop(self) -> None:
        """Stop a run() in progress after the current event."""
        self._stopped = True

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now}, pending={self.pending})"
