"""Discrete-event simulation kernel.

The kernel drives every timed model in the reproduction: the DRAM model,
the address-based cache, the X-Cache controller pipeline, and the DSA
datapaths. Time is measured in integer *cycles* of a single global clock
(the paper synthesizes at 1 GHz; we keep cycles abstract and only report
ratios).

The kernel is event-driven rather than tick-driven: components schedule
callbacks only when they have work, so large idle stretches (e.g. a DSA
waiting on a DRAM burst) cost nothing. Components that need per-cycle
behaviour while active (the controller pipeline) reschedule themselves
each cycle and stop rescheduling when their queues drain.

Two schedulers share one API:

* :class:`Simulator` (the default) is a hybrid calendar queue: a ring of
  per-cycle buckets covers the near future (one list per cycle, drained
  in a single pass), and a heap holds far-future overflow. Near-future
  scheduling is a bare ``list.append`` — no tuple, no sequence number,
  no heap rebalancing — and all same-cycle events run in one bucket
  drain instead of N heap pops. When the ring is idle, ``now`` jumps
  straight to the next populated cycle.
* :class:`HeapSimulator` is the original pure-``heapq`` scheduler, kept
  as the reference implementation: the golden-trace tests assert both
  kernels produce cycle-identical event orderings, and the kernel
  microbenchmark reports the speedup of one over the other.

Both preserve the same ordering contract: events scheduled for the same
cycle run in FIFO order of scheduling.
"""

from __future__ import annotations

from contextlib import contextmanager
from heapq import heappop, heappush
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Type, Union

__all__ = [
    "Simulator",
    "HeapSimulator",
    "SimulationError",
    "KERNELS",
    "new_simulator",
    "set_default_kernel",
    "default_kernel",
    "use_kernel",
]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, runaway runs)."""


class Simulator:
    """A single-clock discrete-event simulator (calendar-queue hybrid).

    Usage::

        sim = Simulator()
        sim.call_at(10, lambda: print(sim.now))
        sim.run()

    Events scheduled for the same cycle run in FIFO order of scheduling,
    which keeps component interactions deterministic.

    Internals: a ring of ``horizon`` per-cycle buckets covers cycles in
    ``[now, now + horizon)``; anything further lands in a heap keyed by
    ``(cycle, seq)``. The window only moves forward, so for any cycle
    every heap-resident event was scheduled strictly before every
    ring-resident event — executing heap entries first, then the bucket
    in append order, reproduces global FIFO-within-cycle order exactly.
    """

    __slots__ = ("now", "events_executed", "bus", "_horizon", "_mask",
                 "_ring", "_ring_count", "_far", "_far_seq", "_running",
                 "_stopped")

    def __init__(self, horizon: int = 128) -> None:
        if horizon <= 0:
            raise SimulationError(f"horizon must be positive, got {horizon}")
        # round up to a power of two so slot lookup is a bitmask
        while horizon & (horizon - 1):
            horizon += 1
        self.now: int = 0
        self.events_executed: int = 0
        # observability bus (repro.obs); None = no run_start/run_end events
        self.bus = None
        self._horizon = horizon
        self._mask = horizon - 1
        self._ring: List[List[Callable[[], None]]] = [
            [] for _ in range(horizon)
        ]
        self._ring_count = 0
        self._far: List[Tuple[int, int, Callable[[], None]]] = []
        self._far_seq = 0
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def call_at(self, cycle: int, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run at absolute ``cycle``."""
        delta = cycle - self.now
        if 0 <= delta < self._horizon:
            self._ring[cycle & self._mask].append(fn)
            self._ring_count += 1
        elif delta < 0:
            raise SimulationError(
                f"cannot schedule at cycle {cycle}; now is {self.now}"
            )
        else:
            self._far_seq += 1
            heappush(self._far, (cycle, self._far_seq, fn))

    def call_after(self, delay: int, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run ``delay`` cycles from now."""
        if 0 <= delay < self._horizon:
            self._ring[(self.now + delay) & self._mask].append(fn)
            self._ring_count += 1
        elif delay < 0:
            raise SimulationError(f"negative delay {delay}")
        else:
            self._far_seq += 1
            heappush(self._far, (self.now + delay, self._far_seq, fn))

    def call_at_many(
        self, items: List[Tuple[int, Callable[[], None]]]
    ) -> None:
        """Schedule many ``(cycle, fn)`` pairs in one call.

        Equivalent to ``for cycle, fn in items: self.call_at(cycle, fn)``
        (FIFO order within a cycle is preserved) with the ring/heap
        dispatch state hoisted out of the loop — the batch issue path of
        the DRAM model schedules a whole burst of completions this way.
        """
        now = self.now
        horizon = self._horizon
        ring = self._ring
        mask = self._mask
        far = self._far
        added = 0
        for cycle, fn in items:
            delta = cycle - now
            if 0 <= delta < horizon:
                ring[cycle & mask].append(fn)
                added += 1
            elif delta < 0:
                self._ring_count += added
                raise SimulationError(
                    f"cannot schedule at cycle {cycle}; now is {now}"
                )
            else:
                self._far_seq += 1
                heappush(far, (cycle, self._far_seq, fn))
        self._ring_count += added

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _next_cycle(self) -> Optional[int]:
        """The earliest populated cycle, or None when drained."""
        far = self._far
        if self._ring_count:
            ring = self._ring
            mask = self._mask
            base = self.now
            for d in range(self._horizon):
                if ring[(base + d) & mask]:
                    cycle = base + d
                    if far and far[0][0] < cycle:
                        return far[0][0]
                    return cycle
        if far:
            return far[0][0]
        return None

    def step(self) -> bool:
        """Run all events of the next pending cycle.

        Returns False when no events remain.
        """
        cycle = self._next_cycle()
        if cycle is None:
            return False
        self.now = cycle
        executed = 0
        far = self._far
        while far and far[0][0] == cycle:
            fn = heappop(far)[2]
            fn()
            executed += 1
        bucket = self._ring[cycle & self._mask]
        i = 0
        while i < len(bucket):
            fn = bucket[i]
            i += 1
            fn()
        executed += i
        del bucket[:i]
        self._ring_count -= i
        self.events_executed += executed
        return True

    def run(self, until: Optional[int] = None, max_events: int = 500_000_000) -> int:
        """Run until the event queue drains (or ``until`` cycles elapse).

        Returns the final cycle. ``max_events`` counts *callbacks
        executed* (not cycles advanced) and guards against livelock in a
        buggy model; hitting it raises :class:`SimulationError`. The
        running total is surfaced as :attr:`events_executed`, so
        benchmarks can report events/sec without wrapping callbacks.
        """
        if self._running:
            raise SimulationError("re-entrant run()")
        self._running = True
        self._stopped = False
        events = 0
        ring = self._ring
        far = self._far
        horizon = self._horizon
        mask = self._mask
        bus = self.bus
        if bus is not None:
            from ..obs.events import RunStart
            bus.publish(RunStart(cycle=self.now, component="kernel"))
        try:
            while not self._stopped:
                # -- idle fast-forward: jump now to the next populated cycle
                cycle = -1
                if self._ring_count:
                    base = self.now
                    for d in range(horizon):
                        if ring[(base + d) & mask]:
                            cycle = base + d
                            break
                if far and (cycle < 0 or far[0][0] < cycle):
                    cycle = far[0][0]
                if cycle < 0:
                    break
                if until is not None and cycle > until:
                    self.now = until
                    break
                self.now = cycle
                # -- far-future overflow first (scheduled earliest; see
                #    the class docstring for the ordering argument)
                while far and far[0][0] == cycle:
                    fn = heappop(far)[2]
                    fn()
                    events += 1
                    if events > max_events:
                        raise SimulationError(
                            f"exceeded {max_events} events at cycle "
                            f"{self.now}; likely a livelocked model"
                        )
                    if self._stopped:
                        break
                if self._stopped:
                    break
                # -- single-pass bucket drain; the list iterator picks up
                #    zero-delay events appended to the cycle mid-drain
                bucket = ring[cycle & mask]
                if bucket:
                    start = events
                    for fn in bucket:
                        fn()
                        events += 1
                        if events > max_events:
                            done = events - start
                            del bucket[:done]
                            self._ring_count -= done
                            raise SimulationError(
                                f"exceeded {max_events} events at cycle "
                                f"{self.now}; likely a livelocked model"
                            )
                        if self._stopped:
                            break
                    done = events - start
                    del bucket[:done]
                    self._ring_count -= done
        finally:
            self._running = False
            self.events_executed += events
            if bus is not None:
                from ..obs.events import RunEnd
                bus.publish(RunEnd(cycle=self.now, component="kernel",
                                   events_executed=self.events_executed))
        return self.now

    def stop(self) -> None:
        """Stop a run() in progress after the current event."""
        self._stopped = True

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return self._ring_count + len(self._far)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now}, pending={self.pending})"


class HeapSimulator:
    """The original pure-``heapq`` scheduler (reference kernel).

    Kept verbatim from the seed so the golden-trace tests can assert the
    calendar-queue :class:`Simulator` is semantics-preserving, and so the
    kernel microbenchmark has a stable "before" to measure against.
    """

    def __init__(self) -> None:
        self.now: int = 0
        self.events_executed: int = 0
        self.bus = None
        self._queue: List[Tuple[int, int, Callable[[], None]]] = []
        self._seq = 0
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def call_at(self, cycle: int, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run at absolute ``cycle``."""
        if cycle < self.now:
            raise SimulationError(
                f"cannot schedule at cycle {cycle}; now is {self.now}"
            )
        self._seq += 1
        heappush(self._queue, (cycle, self._seq, fn))

    def call_after(self, delay: int, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.call_at(self.now + delay, fn)

    def call_at_many(
        self, items: List[Tuple[int, Callable[[], None]]]
    ) -> None:
        """Schedule many ``(cycle, fn)`` pairs in one call (see
        :meth:`Simulator.call_at_many`)."""
        now = self.now
        queue = self._queue
        seq = self._seq
        for cycle, fn in items:
            if cycle < now:
                self._seq = seq
                raise SimulationError(
                    f"cannot schedule at cycle {cycle}; now is {now}"
                )
            seq += 1
            heappush(queue, (cycle, seq, fn))
        self._seq = seq

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run all events of the next pending cycle.

        Returns False when no events remain.
        """
        if not self._queue:
            return False
        cycle = self._queue[0][0]
        self.now = cycle
        while self._queue and self._queue[0][0] == cycle:
            _, _, fn = heappop(self._queue)
            fn()
            self.events_executed += 1
        return True

    def run(self, until: Optional[int] = None, max_events: int = 500_000_000) -> int:
        """Run until the event queue drains (or ``until`` cycles elapse).

        Returns the final cycle. ``max_events`` counts *callbacks
        executed* (not cycles advanced) and guards against livelock in a
        buggy model; hitting it raises :class:`SimulationError`. The
        running total is surfaced as :attr:`events_executed`.
        """
        if self._running:
            raise SimulationError("re-entrant run()")
        self._running = True
        self._stopped = False
        events = 0
        bus = self.bus
        if bus is not None:
            from ..obs.events import RunStart
            bus.publish(RunStart(cycle=self.now, component="kernel"))
        try:
            while self._queue and not self._stopped:
                cycle = self._queue[0][0]
                if until is not None and cycle > until:
                    self.now = until
                    break
                self.now = cycle
                _, _, fn = heappop(self._queue)
                fn()
                events += 1
                if events > max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events at cycle {self.now}; "
                        "likely a livelocked model"
                    )
        finally:
            self._running = False
            self.events_executed += events
            if bus is not None:
                from ..obs.events import RunEnd
                bus.publish(RunEnd(cycle=self.now, component="kernel",
                                   events_executed=self.events_executed))
        return self.now

    def stop(self) -> None:
        """Stop a run() in progress after the current event."""
        self._stopped = True

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HeapSimulator(now={self.now}, pending={self.pending})"


# ----------------------------------------------------------------------
# kernel selection
# ----------------------------------------------------------------------
AnySimulator = Union[Simulator, HeapSimulator]

KERNELS: Dict[str, Type] = {
    "bucket": Simulator,
    "heap": HeapSimulator,
}

_default_kernel = "bucket"


def default_kernel() -> str:
    """Name of the kernel :func:`new_simulator` currently builds."""
    return _default_kernel


def set_default_kernel(name: str) -> str:
    """Select the kernel built by :func:`new_simulator`; returns the old."""
    global _default_kernel
    if name not in KERNELS:
        raise KeyError(f"unknown kernel {name!r}; have {sorted(KERNELS)}")
    previous = _default_kernel
    _default_kernel = name
    return previous


@contextmanager
def use_kernel(name: str) -> Iterator[None]:
    """Temporarily select the simulation kernel (golden-trace tests)::

        with use_kernel("heap"):
            report = run_experiment("fig04", "ci")
    """
    previous = set_default_kernel(name)
    try:
        yield
    finally:
        set_default_kernel(previous)


def new_simulator() -> AnySimulator:
    """Build a simulator of the currently selected kernel.

    Every model constructs its clock through this factory, so a single
    :func:`use_kernel` scope switches the whole system between the
    calendar-queue kernel and the heapq reference.
    """
    return KERNELS[_default_kernel]()
