"""The per-type-subscription event bus.

A component publishes behind a single ``bus is None`` check::

    bus = self.bus
    if bus is not None:
        bus.publish(Hit(cycle=now, component=self.name, tag=tag, ...))

so an un-observed run pays one attribute load per instrumentation site
and never constructs an event. When armed, :meth:`EventBus.publish`
fans the event to catch-all subscribers first (attachment order), then
to subscribers of the event's exact type — delivery order within each
list is attachment order, which keeps multi-processor runs (e.g. a
legacy-trace bridge plus a metrics processor) deterministic.

``publish`` delivers through a per-type **resolved handler tuple**
(catch-all + exact-type, pre-concatenated and cached on first publish
of each event class) so the armed hot path is one dict probe and one
tuple walk instead of two list scans. ``subscribe``/``detach``
invalidate the cache, so late attachment keeps working.

Processors attach via :meth:`EventBus.attach`; anything with a
``handle(event)`` method works, and a ``subscriptions()`` method
returning event classes narrows delivery to those types (``None``
means everything).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple, Type

from .events import Event

__all__ = ["EventBus"]

Handler = Callable[[Event], None]


class EventBus:
    """Routes published events to per-type and catch-all subscribers."""

    __slots__ = ("_by_type", "_catch_all", "_processors", "_resolved")

    def __init__(self) -> None:
        self._by_type: Dict[Type[Event], List[Handler]] = {}
        self._catch_all: List[Handler] = []
        self._processors: List[object] = []
        # event class -> pre-concatenated (catch-all + per-type) handlers
        self._resolved: Dict[Type[Event], Tuple[Handler, ...]] = {}

    # ------------------------------------------------------------------
    # subscription
    # ------------------------------------------------------------------
    def subscribe(self, handler: Handler,
                  types: Optional[Iterable[Type[Event]]] = None) -> None:
        """Register a bare callable for ``types`` (None = every event)."""
        if types is None:
            self._catch_all.append(handler)
            self._resolved.clear()
            return
        for cls in types:
            if not (isinstance(cls, type) and issubclass(cls, Event)):
                raise TypeError(f"not an Event class: {cls!r}")
            self._by_type.setdefault(cls, []).append(handler)
        self._resolved.clear()

    def attach(self, processor) -> object:
        """Attach a processor (``handle(event)`` + optional
        ``subscriptions()``); returns it for chaining."""
        handle = processor.handle
        subs = getattr(processor, "subscriptions", None)
        types = subs() if subs is not None else None
        self.subscribe(handle, types)
        self._processors.append(processor)
        return processor

    def detach(self, processor) -> None:
        """Remove an attached processor from every subscription list."""
        if processor in self._processors:
            self._processors.remove(processor)
        handle = getattr(processor, "handle", None)
        targets = (handle, processor)
        self._catch_all[:] = [h for h in self._catch_all
                              if h not in targets]
        for cls in list(self._by_type):
            kept = [h for h in self._by_type[cls] if h not in targets]
            if kept:
                self._by_type[cls] = kept
            else:
                del self._by_type[cls]
        self._resolved.clear()

    # ------------------------------------------------------------------
    # publication
    # ------------------------------------------------------------------
    def wants(self, cls: Type[Event]) -> bool:
        """True when publishing ``cls`` would reach any subscriber.

        Hot publish sites gate event *construction* on this, so a bus
        armed for one concern (say, miss taxonomy) does not tax every
        other instrumentation site with dataclass construction::

            bus = self.bus
            if bus is not None and bus.wants(QueueEnter):
                bus.publish(QueueEnter(...))

        Cost when False is two attribute loads and a dict probe —
        within noise of the unarmed ``bus is None`` test.
        """
        return bool(self._catch_all) or cls in self._by_type

    def publish(self, event: Event) -> None:
        cls = event.__class__
        handlers = self._resolved.get(cls)
        if handlers is None:
            handlers = self._resolved[cls] = (
                tuple(self._catch_all) + tuple(self._by_type.get(cls, ())))
        for handler in handlers:
            handler(event)

    # ------------------------------------------------------------------
    # lifecycle / inspection
    # ------------------------------------------------------------------
    @property
    def processors(self) -> Tuple[object, ...]:
        return tuple(self._processors)

    @property
    def subscriber_count(self) -> int:
        return len(self._catch_all) + sum(
            len(v) for v in self._by_type.values())

    def close(self) -> None:
        """Flush/close every attached processor that supports it."""
        for processor in self._processors:
            closer = getattr(processor, "close", None)
            if closer is not None:
                closer()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"EventBus({len(self._processors)} processors, "
                f"{self.subscriber_count} subscriptions)")
