"""Explain *why a request was slow* (``python -m repro.obs.explain``).

Two modes:

* **Replay** — point it at a JSONL event trace captured earlier::

      python -m repro.harness fig04 --events t.jsonl
      python -m repro.obs.explain t.fig04.jsonl --top 5

  Records are rebuilt with :func:`~repro.obs.events.event_from_json`;
  the capture layer's ``run`` stamp keeps multi-system files separable
  (components are namespaced ``run{n}/`` exactly like the Perfetto
  exporter).

* **Live** — run an experiment under a span capture and explain it in
  one step::

      python -m repro.obs.explain --run fig04 --profile ci --top 3

* **Ledger** — drill a *service job* down to its simulated critical
  path: look a ``job_id`` up in a ``repro.svc`` run ledger and replay
  the per-job event capture its entry points at::

      REPRO_SVC_LEDGER=runs.jsonl python -m repro.svc sweep fig04 \\
          --events t.jsonl
      python -m repro.obs.explain --ledger runs.jsonl --job 3

  The header shows the job's host-time latency split (queue_wait /
  dispatch / sim_exec / store_write) before the in-sim blame table —
  one command crosses the service/simulation boundary.

Either way the output is the per-DSA blame table (which bucket of
{hit_path, sched_wait, exec, dram, queue_stall} owns the request
cycles) followed by a drill-down of the K slowest requests: arrival,
admission stalls, each walk episode with its phase timeline and DRAM
children, and the exact blame split — the numbers sum to the request's
latency by construction.

``--misses`` adds the *why-miss* half (``repro.obs.cachelens``): every
miss classified compulsory / capacity / conflict, would-have-hit-if
shadow counters, and reuse-distance histograms — in any of the three
modes (replayed traces carry the cache events when captured armed, so
``explain t.fig04.jsonl --misses`` works offline).

``--json`` additionally writes the machine-readable summary the SLO
gate (``python -m repro.obs.regress --slo``) consumes; with
``--misses`` each component entry also carries ``hit_rate`` and
``conflict_share`` for the cache-contents SLO budgets.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, TextIO, Tuple

from .critpath import BLAME_BUCKETS, CritPathAggregator
from .events import event_from_json
from .spans import RequestSpan, SpanAssembler

__all__ = [
    "replay_events",
    "replay_misses",
    "format_drilldown",
    "explain_report",
    "slo_summary",
    "main",
]


def replay_events(source, top: int = 5, verify: bool = True
                  ) -> Tuple[CritPathAggregator, Dict[int, SpanAssembler]]:
    """Rebuild spans from a JSONL trace (path or line iterable).

    Returns the filled aggregator plus the per-``run`` assemblers (one
    per system observed by the original capture). Unknown wire names —
    records from a newer taxonomy — are skipped, not fatal.
    """
    agg = CritPathAggregator(top_k=top, verify=verify)
    assemblers: Dict[int, SpanAssembler] = {}
    if isinstance(source, str):
        fh: TextIO = open(source, "r", encoding="utf-8")
        close = True
    else:
        fh, close = source, False
    try:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            try:
                event = event_from_json(record)
            except KeyError:
                continue
            run = record.get("run", 0)
            asm = assemblers.get(run)
            if asm is None:
                asm = assemblers[run] = SpanAssembler(
                    sink=agg.add, max_kept=0,
                    namespace=f"run{run}/" if run else "")
            asm.handle(event)
    finally:
        if close:
            fh.close()
    return agg, assemblers


def replay_misses(source, reuse_sample: int = 8
                  ) -> Tuple[Dict[str, dict], Dict[str, Dict[int, int]]]:
    """Rebuild cache-lens state from a JSONL trace (path or iterable).

    Returns ``(merged_summary, conflict_sets)`` with cache names
    run-namespaced exactly like :func:`replay_events` spans, so the two
    halves of the report line up. ``reuse_sample`` must match the rate
    the trace was captured with for the reuse histogram to reproduce
    the live one (sampling is deterministic, so at the same rate it
    does, bit for bit).
    """
    from .cachelens import CacheLensProcessor, merge_summaries

    lenses: Dict[int, CacheLensProcessor] = {}
    if isinstance(source, str):
        fh: TextIO = open(source, "r", encoding="utf-8")
        close = True
    else:
        fh, close = source, False
    try:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            try:
                event = event_from_json(record)
            except KeyError:
                continue
            run = record.get("run", 0)
            lens = lenses.get(run)
            if lens is None:
                lens = lenses[run] = CacheLensProcessor(
                    reuse_sample=reuse_sample)
            lens.handle(event)
    finally:
        if close:
            fh.close()
    summaries = []
    conflicts: Dict[str, Dict[int, int]] = {}
    for run, lens in lenses.items():
        prefix = f"run{run}/" if run else ""
        summaries.append({prefix + name: entry
                          for name, entry in lens.summary().items()})
        for name, counts in lens.conflict_sets_by_cache().items():
            conflicts[prefix + name] = counts
    return merge_summaries(summaries), conflicts


def _blame_line(blame: Dict[str, int]) -> str:
    total = sum(blame.values())
    parts = []
    for bucket in BLAME_BUCKETS:
        cycles = blame.get(bucket, 0)
        if not cycles:
            continue
        share = 100.0 * cycles / total if total else 0.0
        parts.append(f"{bucket}={cycles} ({share:.1f}%)")
    return " | ".join(parts) if parts else "(zero latency)"


def format_drilldown(span: RequestSpan, blame: Dict[str, int],
                     rank: Optional[int] = None) -> str:
    """Multi-line why-slow story for one completed request."""
    head = f"#{rank} " if rank is not None else ""
    lines = [
        (f"{head}req {span.req_id} ({span.op} tag={span.tag} "
         f"@ {span.component}) — {span.latency} cycles, "
         f"outcome={span.outcome}"),
        f"    blame: {_blame_line(blame)}",
    ]
    stalls = (f"  ({span.stall_cycles} admission-stall cycles)"
              if span.stall_cycles else "")
    lines.append(f"    arrive @{span.arrive}{stalls}")
    if span.outcome in ("hit", "nowalk"):
        verb = ("answered by the pipelined read port"
                if span.outcome == "hit"
                else "answered not-found without a walk")
        lines.append(f"    {verb} @{span.close} "
                     f"(load-to-use {span.load_to_use})")
    for ep in span.episodes:
        walk = ep.walk
        left = ep.left if ep.left >= 0 else span.close
        lines.append(
            f"    walk {walk.walk_id} join @{ep.join} as {ep.role}: "
            f"retired @{left} found={walk.found} "
            f"routines={walk.routines} fills={walk.fills}")
        phases = walk.phase_cycles()
        if phases:
            lines.append("      phases: " + " ".join(
                f"{kind}={phases[kind]}"
                for kind in ("sched_wait", "exec", "dram_wait",
                             "event_wait") if kind in phases))
        if walk.dram:
            reads = [d for d in walk.dram if not d.is_write]
            writes = len(walk.dram) - len(reads)
            row_hits = sum(1 for d in reads if d.row_result == "row_hits")
            first = min(d.issue for d in walk.dram)
            last = max(d.complete for d in walk.dram)
            detail = f"      dram: {len(reads)} reads ({row_hits} row hits)"
            if writes:
                detail += f", {writes} writes"
            lines.append(f"{detail} spanning @{first}..@{last}")
    return "\n".join(lines)


def explain_report(agg: CritPathAggregator, dropped: int = 0,
                   top: Optional[int] = None) -> str:
    """Full text report: header, blame table, top-K drilldowns.

    ``top`` caps the drilldown count (``0`` = table only, ``None`` =
    everything the aggregator kept).
    """
    from repro.harness.report import why_slow_table

    status = ("ok" if agg.conservation_ok
              else f"{len(agg.mismatches)} PROBLEMS")
    lines = [
        "-- why-slow (repro.obs.critpath) --",
        f"requests={agg.requests} conservation={status}",
    ]
    if dropped:
        lines.append(f"note: {dropped} span(s) dropped at the retention "
                     f"cap (aggregates still include them)")
    for problem in agg.mismatches[:10]:
        lines.append(f"  !! {problem}")
    table = why_slow_table(agg.summary_dict())
    if table:
        lines.append(table)
    slowest = agg.slowest()
    if top is not None:
        slowest = slowest[:top]
    if slowest:
        lines.append(f"slowest {len(slowest)} request(s):")
        for rank, (span, blame) in enumerate(slowest, start=1):
            lines.append(format_drilldown(span, blame, rank))
    return "\n".join(lines)


def slo_summary(agg: CritPathAggregator, suite: str) -> dict:
    """The machine-readable summary ``repro.obs.regress --slo`` reads."""
    return {"suite": suite, "components": agg.summary_dict()}


def format_job_header(entry: dict) -> str:
    """The service-side half of a ledger drilldown: who ran the job,
    where its wall-clock time went."""
    timings = entry.get("timings") or {}
    split = " ".join(
        f"{key}={timings.get(key, 0):.3f}s"
        for key in ("queue_wait", "dispatch", "sim_exec", "store_write"))
    workers = ",".join(str(w) for w in entry.get("worker_history", ()))
    lines = [
        (f"-- service job {entry.get('job')} "
         f"({entry.get('experiment')}/{entry.get('profile')}) "
         f"state={entry.get('state')} --"),
        (f"digest={str(entry.get('digest', ''))[:12]} "
         f"workers=[{workers or '-'}] "
         f"attempts={entry.get('attempts', 0)}"),
        f"host time: end_to_end={timings.get('end_to_end', 0):.3f}s "
        f"({split})",
    ]
    for retry in entry.get("retries", ()):
        lines.append(f"  retry: worker {retry.get('worker')} died "
                     f"(exitcode={retry.get('exitcode')}, "
                     f"lost {retry.get('lost_s', 0):.3f}s)")
    return "\n".join(lines)


def _ledger_events_path(entry: dict) -> Optional[str]:
    capture = entry.get("capture") or {}
    return capture.get("events")


def _run_live(exp_id: str, profile: str, top: int, misses: bool = False,
              reuse_sample: int = 8):
    """Run one experiment under a span (and optionally lens) capture."""
    from repro.harness import run_experiment
    from repro.harness.suite import clear_cache
    from .capture import CaptureSpec, capture_scope

    clear_cache()   # a warm memoized suite would publish no events
    spec = CaptureSpec(spans=True, explain_top=max(top, 1),
                       misses=misses, reuse_sample=reuse_sample)
    with capture_scope(spec) as cap:
        report = run_experiment(exp_id, profile)
    assert cap is not None
    agg = cap.merged_critpath()
    lens_summary = cap.merged_cachelens() if misses else None
    lens_conflicts = cap.merged_conflict_sets() if misses else None
    return agg, cap.spans_dropped, report.render(), lens_summary, \
        lens_conflicts


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.explain",
        description="Critical-path why-slow analysis for captured "
                    "(or live) runs.")
    parser.add_argument("events", nargs="?", default=None,
                        metavar="PATH.jsonl",
                        help="JSONL event trace to replay "
                             "(from --events captures)")
    parser.add_argument("--run", default=None, metavar="EXP",
                        help="run this experiment live instead of "
                             "replaying a trace")
    parser.add_argument("--ledger", default=None, metavar="LEDGER.jsonl",
                        help="repro.svc run ledger to resolve --job in")
    parser.add_argument("--job", type=int, default=None, metavar="ID",
                        help="service job id to drill into (needs "
                             "--ledger; replays the job's recorded "
                             "event capture)")
    parser.add_argument("--profile", default="ci",
                        choices=("ci", "quick", "full"),
                        help="profile for --run (default: ci)")
    parser.add_argument("--top", type=int, default=5, metavar="K",
                        help="slowest requests to drill into "
                             "(default: 5)")
    parser.add_argument("--misses", action="store_true",
                        help="append the why-miss analysis (miss "
                             "taxonomy, would-hit-if shadows, reuse "
                             "distances)")
    parser.add_argument("--reuse-sample", type=int, default=8,
                        metavar="N",
                        help="reuse-distance scan stride for --misses "
                             "(default: 1, exact)")
    parser.add_argument("--json", default=None, metavar="PATH.json",
                        help="also write the SLO-gate summary JSON")
    parser.add_argument("--suite", default=None,
                        help="suite label for --json (default: the "
                             "experiment id or trace stem)")
    args = parser.parse_args(argv)
    if args.top < 0:
        parser.error("--top must be >= 0")
    if args.reuse_sample < 1:
        parser.error("--reuse-sample must be >= 1")
    if (args.ledger is None) != (args.job is None):
        parser.error("--ledger and --job go together")
    modes = sum(x is not None for x in (args.events, args.run, args.ledger))
    if modes != 1:
        parser.error("give exactly one of PATH.jsonl, --run EXP, "
                     "or --ledger/--job")

    if args.ledger is not None:
        from repro.svc.telemetry import RunLedger

        entry = RunLedger.find_job(args.ledger, args.job)
        if entry is None:
            print(f"job {args.job} not found in {args.ledger}",
                  file=sys.stderr)
            return 2
        print(format_job_header(entry))
        events_path = _ledger_events_path(entry)
        if events_path is None:
            print("(no event capture recorded for this job — submit "
                  "with --events to enable the in-sim drilldown)",
                  file=sys.stderr)
            return 2
        agg, _assemblers = replay_events(events_path, top=args.top)
        suite = args.suite or f"job{args.job}"
        dropped = 0
        lens_summary = lens_conflicts = None
        if args.misses:
            lens_summary, lens_conflicts = replay_misses(
                events_path, reuse_sample=args.reuse_sample)
    elif args.run is not None:
        agg, dropped, _report, lens_summary, lens_conflicts = _run_live(
            args.run, args.profile, args.top, misses=args.misses,
            reuse_sample=args.reuse_sample)
        suite = args.suite or args.run
    else:
        agg, _assemblers = replay_events(args.events, top=args.top)
        suite = args.suite or args.events.rsplit("/", 1)[-1]
        dropped = 0
        lens_summary = lens_conflicts = None
        if args.misses:
            lens_summary, lens_conflicts = replay_misses(
                args.events, reuse_sample=args.reuse_sample)

    print(explain_report(agg, dropped=dropped, top=args.top))
    if lens_summary is not None:
        from .cachelens import why_miss_report

        print(why_miss_report(lens_summary, lens_conflicts))
    if args.json:
        doc = slo_summary(agg, suite)
        if lens_summary:
            for name, comp in doc["components"].items():
                entry = lens_summary.get(name)
                if entry is not None:
                    comp["hit_rate"] = entry["hit_rate"]
                    comp["conflict_share"] = entry["conflict_share"]
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
    return 0 if agg.conservation_ok else 1


if __name__ == "__main__":
    sys.exit(main())
