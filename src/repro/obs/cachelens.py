"""Cache-contents observability (``repro.obs.cachelens``).

Everything before this module answers *where did the time go*; this one
answers *why did the cache miss*. A :class:`CacheLensProcessor` rides
the event bus next to the other processors and maintains, per
publishing cache (a meta-tag array or an
:class:`~repro.mem.addrcache.AddressCache`):

* a **miss taxonomy** — every classified miss is exactly one of
  *compulsory* (tag never seen before), *conflict* (a same-capacity
  fully-associative LRU shadow still holds the tag, so only the set
  mapping lost it), or *capacity* (even infinite associativity would
  have evicted it). ``compulsory + capacity + conflict == misses`` by
  construction;
* **would-have-hit-if** shadows — a 2×-ways and a 2×-sets
  set-associative LRU shadow answer the question a designer actually
  asks: would this miss have hit with more ways (conflict pressure) or
  with more sets (index pressure)?;
* **reuse-distance histograms** — Mattson stack distance over the FA
  shadow, in power-of-two buckets, grouped per cache and per tag-field
  class (``reuse_sample=N`` computes the O(distance) scan on every Nth
  access; the LRU order itself is maintained always, in O(1));
* **per-set heatmaps** — windowed occupancy / fill / eviction-pressure
  rows per set (CSV via
  :func:`repro.obs.timeseries.write_heatmap_csv`, Perfetto counter
  tracks via the exporter).

Shadow semantics: program-intent invalidations (``CacheEvict`` with
``reason="dealloc"`` — DEALLOCM, take-loads, sector reclaim) remove the
tag from every shadow, so a later re-access is classified *capacity*
(the entry was not lost to the set mapping). Replacement evictions
("conflict"/"replace") deliberately do **not** touch the FA shadow —
that asymmetry is the classifier.

Geometry arrives in-band as a :class:`~repro.obs.events.CacheModel`
event published before a cache's first access/fill, so the lens works
identically live on a bus and replaying a JSONL capture
(``python -m repro.obs.explain --misses``).

Summaries merge order-independently (plain counter sums) so
``--parallel`` captures and service workers fold without coordination:
see :meth:`CacheLensProcessor.summary` and :func:`merge_summaries`.
"""

from __future__ import annotations

from collections import OrderedDict
from operator import indexOf
from typing import Callable, Dict, List, Optional, Tuple

from .events import (
    CacheAccess,
    CacheEvict,
    CacheFill,
    CacheModel,
    Hit,
    Merge,
    Miss,
    Tag,
)
from .processors import TypedEventProcessor

__all__ = ["CacheLensProcessor", "ShadowCache", "merge_summaries",
           "why_miss_report", "MISS_CLASSES", "reuse_bucket_label",
           "DEFAULT_REUSE_SAMPLE"]

#: The three exclusive miss classes (conservation: they sum to misses).
MISS_CLASSES: Tuple[str, ...] = ("compulsory", "capacity", "conflict")

#: Default Mattson-scan sampling rate (1:N systematic; 1 = exact).
DEFAULT_REUSE_SAMPLE = 8

_FOLD = 0x9E3779B97F4A7C15


def _meta_set_fn(sets: int) -> Callable[[Tag], int]:
    """Replicates :meth:`repro.core.metatag.MetaTagArray.set_of` for an
    arbitrary (power-of-two) set count."""
    mask = sets - 1

    def set_of(tag: Tag) -> int:
        index = tag[0]
        for extra in tag[1:]:
            index ^= (extra * _FOLD) >> 16
        return index & mask

    return set_of


def _addr_set_fn(sets: int, block_bytes: int) -> Callable[[Tag], int]:
    """Replicates :meth:`repro.mem.addrcache.AddressCache._set_index`
    (the tag tuple carries the block address)."""
    mask = sets - 1

    def set_of(tag: Tag) -> int:
        return (tag[0] // block_bytes) & mask

    return set_of


class ShadowCache:
    """A set-associative LRU shadow directory (tags only, no data).

    ``access`` reports whether the tag was resident *before* making it
    MRU (installing and evicting LRU as needed) — one call is both the
    probe and the update, so classification can never observe its own
    side effect.
    """

    def __init__(self, ways: int, sets: int,
                 set_fn: Callable[[Tag], int]) -> None:
        self.ways = ways
        self.sets = sets
        self._set_fn = set_fn
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(sets)]

    def access(self, tag: Tag) -> bool:
        entries = self._sets[self._set_fn(tag)]
        hit = tag in entries
        if hit:
            entries.move_to_end(tag)
        else:
            entries[tag] = None
            if len(entries) > self.ways:
                entries.popitem(last=False)
        return hit

    def invalidate(self, tag: Tag) -> None:
        entries = self._sets[self._set_fn(tag)]
        entries.pop(tag, None)


class _FullyAssociative:
    """Same-capacity fully-associative LRU shadow (the Mattson stack).

    ``capacity=None`` (geometry not yet announced) never evicts; the
    stack is trimmed when the capacity arrives.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.capacity = capacity
        self._stack: OrderedDict = OrderedDict()   # LRU first, MRU last

    def __contains__(self, tag: Tag) -> bool:
        return tag in self._stack

    def set_capacity(self, capacity: int) -> None:
        self.capacity = capacity
        while len(self._stack) > capacity:
            self._stack.popitem(last=False)

    def distance(self, tag: Tag) -> int:
        """Stack distance from MRU (0 = re-reference of the MRU tag);
        -1 when the tag is not resident. O(distance) reverse scan,
        done in C via :func:`operator.indexOf` over the reversed view."""
        if tag not in self._stack:
            return -1
        return indexOf(reversed(self._stack), tag)

    def access(self, tag: Tag) -> bool:
        hit = tag in self._stack
        if hit:
            self._stack.move_to_end(tag)
        else:
            self._stack[tag] = None
            if self.capacity is not None and len(self._stack) > self.capacity:
                self._stack.popitem(last=False)
        return hit

    def invalidate(self, tag: Tag) -> None:
        self._stack.pop(tag, None)


def reuse_bucket_label(bucket: int) -> str:
    """Human label for a power-of-two reuse-distance bucket index."""
    if bucket < 0:
        return "inf"
    if bucket == 0:
        return "0"
    lo = 1 << (bucket - 1)
    hi = (1 << bucket) - 1
    return str(lo) if lo == hi else f"{lo}-{hi}"


class _LensState:
    """Everything the lens tracks for one publishing cache."""

    def __init__(self, component: str) -> None:
        self.component = component
        self.kind: Optional[str] = None       # "meta" | "addr"
        self.ways = 0
        self.sets = 0
        self.tag_class = ""
        # taxonomy counters
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.merges = 0
        self.nowalk = 0
        self.stalls = 0
        self.by_class: Dict[str, int] = {c: 0 for c in MISS_CLASSES}
        self.would_ways = 0                   # miss would hit with 2x ways
        self.would_sets = 0                   # miss would hit with 2x sets
        # shadows (sized when CacheModel arrives)
        self.seen: set = set()
        self.fa = _FullyAssociative()
        self.shadow_ways: Optional[ShadowCache] = None
        self.shadow_sets: Optional[ShadowCache] = None
        # reuse-distance histogram: power-of-two bucket index -> count,
        # -1 = infinite (first reference / post-invalidate)
        self.reuse: Dict[int, int] = {}
        self._sample_tick = 0
        # per-set conflict pressure (why-miss "top conflict sets")
        self.conflict_sets: Dict[int, int] = {}
        # heatmap: running per-set occupancy + per-window activity
        self.occupancy: Dict[int, int] = {}
        self.heat_rows: List[Dict[str, int]] = []
        self._hwin: Optional[int] = None
        self._fills_w: Dict[int, int] = {}
        self._evicts_w: Dict[int, int] = {}

    # -- geometry -------------------------------------------------------
    def set_geometry(self, ev: CacheModel) -> None:
        self.kind = ev.kind
        self.ways, self.sets = ev.ways, ev.sets
        self.tag_class = ev.tag_class or ev.kind
        self.fa.set_capacity(ev.ways * ev.sets)
        if ev.kind == "addr":
            block = max(ev.block_bytes, 1)
            make = lambda sets: _addr_set_fn(sets, block)  # noqa: E731
        else:
            make = _meta_set_fn
        self.shadow_ways = ShadowCache(2 * ev.ways, ev.sets,
                                       make(ev.sets))
        self.shadow_sets = ShadowCache(ev.ways, 2 * ev.sets,
                                       make(2 * ev.sets))

    # -- access/classification -----------------------------------------
    def _sample_reuse(self, tag: Tag, sample_every: int) -> None:
        self._sample_tick += 1
        if self._sample_tick % sample_every:
            return
        distance = self.fa.distance(tag)
        bucket = -1 if distance < 0 else distance.bit_length()
        self.reuse[bucket] = self.reuse.get(bucket, 0) + 1

    def touch(self, tag: Tag, sample_every: int) -> None:
        """A non-classified access (hit / merge): update every shadow.

        This is the armed hot path (one call per hit), so the FA and
        sampling bodies are inlined rather than delegated. Every tag in
        the FA stack is also in ``seen`` (both insert together;
        ``invalidate`` only removes from the stack), so the resident
        branch skips the set add.
        """
        self.accesses += 1
        fa = self.fa
        stack = fa._stack
        resident = tag in stack
        self._sample_tick += 1
        if not self._sample_tick % sample_every:
            if resident:
                # C-speed scan: ~3x a hand-rolled loop at fig-scale depths
                bucket = indexOf(reversed(stack), tag).bit_length()
            else:
                bucket = -1
            self.reuse[bucket] = self.reuse.get(bucket, 0) + 1
        if resident:
            stack.move_to_end(tag)
        else:
            self.seen.add(tag)
            stack[tag] = None
            capacity = fa.capacity
            if capacity is not None and len(stack) > capacity:
                stack.popitem(last=False)
        shadow = self.shadow_ways
        if shadow is not None:
            # both shadow updates inlined (ShadowCache.access without
            # the probe result): two calls per hit add up
            entries = shadow._sets[shadow._set_fn(tag)]
            if tag in entries:
                entries.move_to_end(tag)
            else:
                entries[tag] = None
                if len(entries) > shadow.ways:
                    entries.popitem(last=False)
            shadow = self.shadow_sets
            entries = shadow._sets[shadow._set_fn(tag)]
            if tag in entries:
                entries.move_to_end(tag)
            else:
                entries[tag] = None
                if len(entries) > shadow.ways:
                    entries.popitem(last=False)

    def classify(self, tag: Tag, set_index: int, sample_every: int) -> str:
        """A classified (primary) miss: probe-then-update every shadow."""
        self.accesses += 1
        self.misses += 1
        self._sample_reuse(tag, sample_every)
        if tag not in self.seen:
            self.seen.add(tag)
            cls = "compulsory"
        elif tag in self.fa:
            cls = "conflict"
        else:
            cls = "capacity"
        self.fa.access(tag)
        if self.shadow_ways is not None:
            if self.shadow_ways.access(tag) and cls != "compulsory":
                self.would_ways += 1
            if self.shadow_sets.access(tag) and cls != "compulsory":
                self.would_sets += 1
        self.by_class[cls] += 1
        if cls == "conflict" and set_index >= 0:
            self.conflict_sets[set_index] = (
                self.conflict_sets.get(set_index, 0) + 1)
        return cls

    def invalidate(self, tag: Tag) -> None:
        """Program-intent removal: the tag leaves every shadow (its next
        miss is capacity, not conflict), but stays in ``seen``."""
        self.fa.invalidate(tag)
        if self.shadow_ways is not None:
            self.shadow_ways.invalidate(tag)
            self.shadow_sets.invalidate(tag)

    # -- heatmap --------------------------------------------------------
    def _heat_roll(self, cycle: int, window: int) -> None:
        w = cycle // window
        if self._hwin is None:
            self._hwin = w
        while self._hwin < w:
            self._heat_flush(window)
            self._hwin += 1

    def _heat_flush(self, window: int) -> None:
        start = self._hwin * window
        live = {s for s, occ in self.occupancy.items() if occ > 0}
        for set_index in sorted(live | set(self._fills_w)
                                | set(self._evicts_w)):
            self.heat_rows.append({
                "window_start": start,
                "window_end": start + window,
                "set": set_index,
                "occupancy": self.occupancy.get(set_index, 0),
                "fills": self._fills_w.get(set_index, 0),
                "evicts": self._evicts_w.get(set_index, 0),
            })
        self._fills_w = {}
        self._evicts_w = {}

    def heat_fill(self, cycle: int, set_index: int, window: int) -> None:
        self._heat_roll(cycle, window)
        self.occupancy[set_index] = self.occupancy.get(set_index, 0) + 1
        self._fills_w[set_index] = self._fills_w.get(set_index, 0) + 1

    def heat_evict(self, cycle: int, set_index: int, window: int) -> None:
        self._heat_roll(cycle, window)
        occ = self.occupancy.get(set_index, 0)
        if occ > 0:
            self.occupancy[set_index] = occ - 1
        self._evicts_w[set_index] = self._evicts_w.get(set_index, 0) + 1

    def heat_close(self, window: int) -> None:
        if self._hwin is not None and (self._fills_w or self._evicts_w
                                       or self.occupancy):
            self._heat_flush(window)
            self._hwin += 1

    # -- reporting ------------------------------------------------------
    def hit_rate(self) -> float:
        if self.kind == "addr":
            total = self.hits + self.misses + self.merges + self.stalls
        else:
            # mirrors Controller.hit_rate(): merges are neither
            total = self.hits + self.misses + self.nowalk
        return self.hits / total if total else 0.0

    def summary(self) -> Dict[str, object]:
        misses = self.misses
        out: Dict[str, object] = {
            "kind": self.kind or "meta",
            "tag_class": self.tag_class,
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": misses,
            "merges": self.merges,
            "nowalk": self.nowalk,
            "stalls": self.stalls,
            "hit_rate": self.hit_rate(),
            "conflict_share": (self.by_class["conflict"] / misses
                               if misses else 0.0),
            "would_hit_more_ways": self.would_ways,
            "would_hit_more_sets": self.would_sets,
            "reuse": {reuse_bucket_label(b): n
                      for b, n in sorted(self.reuse.items())},
        }
        out.update(self.by_class)
        return out


class CacheLensProcessor(TypedEventProcessor):
    """Folds the cache event streams into the lens state per cache.

    ``reuse_sample`` bounds the Mattson scan cost: the stack order is
    maintained on every access, the O(distance) distance computation
    runs on every Nth. The default (:data:`DEFAULT_REUSE_SAMPLE`) is a
    1:8 systematic sample — the histogram keeps its shape at a fraction
    of the scan cost; pass ``1`` for an exact profile. Sampling is
    deterministic per cache, so a JSONL replay at the same rate
    reproduces the live histogram bit for bit. ``heatmap_window`` is
    the per-set sampling window in cycles.
    """

    def __init__(self, reuse_sample: int = DEFAULT_REUSE_SAMPLE,
                 heatmap_window: int = 1000) -> None:
        super().__init__()
        if reuse_sample < 1:
            raise ValueError(f"reuse_sample must be >= 1, "
                             f"got {reuse_sample}")
        if heatmap_window < 1:
            raise ValueError(f"heatmap_window must be >= 1, "
                             f"got {heatmap_window}")
        self.reuse_sample = reuse_sample
        self.heatmap_window = heatmap_window
        self._states: "OrderedDict[str, _LensState]" = OrderedDict()
        self._closed = False

    def _state(self, component: str) -> _LensState:
        state = self._states.get(component)
        if state is None:
            state = self._states[component] = _LensState(component)
        return state

    # -- handlers: geometry --------------------------------------------
    def on_cache_model(self, ev: CacheModel) -> None:
        self._state(ev.component).set_geometry(ev)

    # -- handlers: the meta-tag access stream --------------------------
    def on_hit(self, ev: Hit) -> None:
        state = self._states.get(ev.component)   # hot path: skip the
        if state is None:                        # _state call per event
            state = self._state(ev.component)
        if not ev.status:
            state.nowalk += 1      # negative answer, nothing installed
            return
        state.hits += 1
        state.touch(ev.tag, self.reuse_sample)

    def on_miss(self, ev: Miss) -> None:
        self._state(ev.component).classify(ev.tag, ev.set_index,
                                           self.reuse_sample)

    def on_merge(self, ev: Merge) -> None:
        state = self._state(ev.component)
        state.merges += 1
        state.touch(ev.tag, self.reuse_sample)

    # -- handlers: the address-cache access stream ---------------------
    def on_cache_access(self, ev: CacheAccess) -> None:
        state = self._states.get(ev.component)
        if state is None:
            state = self._state(ev.component)
        if ev.outcome == "hit":
            state.hits += 1
            state.touch(ev.tag, self.reuse_sample)
        elif ev.outcome == "miss":
            state.classify(ev.tag, ev.set_index, self.reuse_sample)
        elif ev.outcome == "merge":
            state.merges += 1
            state.touch(ev.tag, self.reuse_sample)
        else:                      # "mshr_stall": the access will retry
            state.stalls += 1

    # -- handlers: contents churn (heatmap + invalidations) ------------
    def on_cache_fill(self, ev: CacheFill) -> None:
        state = self._state(ev.component)
        state.seen.add(ev.tag)     # warm preloads count as references
        state.fa.access(ev.tag)
        if state.shadow_ways is not None:
            state.shadow_ways.access(ev.tag)
            state.shadow_sets.access(ev.tag)
        state.heat_fill(ev.cycle, ev.set_index, self.heatmap_window)

    def on_cache_evict(self, ev: CacheEvict) -> None:
        state = self._state(ev.component)
        if ev.reason == "dealloc":
            state.invalidate(ev.tag)
        state.heat_evict(ev.cycle, ev.set_index, self.heatmap_window)

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for state in self._states.values():
            state.heat_close(self.heatmap_window)

    # -- inspection -----------------------------------------------------
    @property
    def components(self) -> Tuple[str, ...]:
        return tuple(self._states)

    def state(self, component: str) -> Optional[_LensState]:
        return self._states.get(component)

    def heat_rows(self) -> List[Tuple[str, Dict[str, int]]]:
        """(component, row) pairs for the heatmap CSV writer."""
        self.close()
        return [(name, row) for name, state in self._states.items()
                for row in state.heat_rows]

    def summary(self) -> Dict[str, Dict[str, object]]:
        """Per-cache summary dict (mergeable: :func:`merge_summaries`)."""
        return {name: state.summary()
                for name, state in self._states.items()}

    def top_conflict_sets(self, component: str, k: int = 5
                          ) -> List[Tuple[int, int]]:
        state = self._states.get(component)
        if state is None:
            return []
        return _rank_sets(state.conflict_sets, k)

    def conflict_sets_by_cache(self) -> Dict[str, Dict[int, int]]:
        """Per-cache conflict-miss counts per set (mergeable sums)."""
        return {name: dict(state.conflict_sets)
                for name, state in self._states.items()}

    def report(self) -> str:
        """Text block for the harness report / explain CLI."""
        return why_miss_report(self.summary(),
                               self.conflict_sets_by_cache())


def _rank_sets(counts: Dict[int, int], k: int) -> List[Tuple[int, int]]:
    ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    return ranked[:k]


def why_miss_report(summary: Dict[str, Dict[str, object]],
                    conflict_sets: Optional[Dict[str, Dict[int, int]]] = None,
                    k: int = 5) -> str:
    """Render the why-miss text block from a (possibly merged) summary.

    Works on live processor output and on
    :func:`merge_summaries`-folded dicts from ``--parallel`` workers.
    """
    from repro.harness.report import why_miss_table

    lines = ["-- why-miss (repro.obs.cachelens) --"]
    total = sum(s["misses"] for s in summary.values())
    classified = sum(sum(s[c] for c in MISS_CLASSES)
                     for s in summary.values())
    lines.append(f"caches={len(summary)} misses={total} "
                 f"classified={classified} conservation="
                 + ("ok" if total == classified else "BROKEN"))
    table = why_miss_table(summary)
    if table:
        lines.append(table)
    for name in summary:
        top = _rank_sets((conflict_sets or {}).get(name, {}), k)
        if top:
            detail = " ".join(f"set{idx}={count}" for idx, count in top)
            lines.append(f"  {name} hottest conflict sets: {detail}")
    reuse = _merge_reuse(summary)
    for tag_class in sorted(reuse):
        hist = reuse[tag_class]
        rendered = " ".join(
            f"{label}:{hist[label]}"
            for label in sorted(hist, key=_reuse_sort_key))
        lines.append(f"  reuse[{tag_class}]: {rendered}")
    return "\n".join(lines)


def _reuse_sort_key(label: str) -> Tuple[int, int]:
    if label == "inf":
        return (1, 0)
    return (0, int(label.split("-")[0]))


def _merge_reuse(summary: Dict[str, Dict[str, object]]
                 ) -> Dict[str, Dict[str, int]]:
    """Reuse histograms aggregated per tag-field class."""
    out: Dict[str, Dict[str, int]] = {}
    for entry in summary.values():
        hist = out.setdefault(str(entry.get("tag_class", "")), {})
        for label, count in entry.get("reuse", {}).items():
            hist[label] = hist.get(label, 0) + count
    return out


#: summary counters that sum across runs/workers (everything else is
#: derived or configuration)
_SUM_KEYS = ("accesses", "hits", "misses", "merges", "nowalk", "stalls",
             "would_hit_more_ways", "would_hit_more_sets") + MISS_CLASSES


def merge_summaries(summaries) -> Dict[str, Dict[str, object]]:
    """Fold per-run :meth:`CacheLensProcessor.summary` dicts into one.

    Pure counter sums keyed by component name — commutative and
    associative, so ``--parallel`` workers and repeated service jobs
    merge order-independently. Derived ratios (hit_rate,
    conflict_share) are recomputed from the summed counters.
    """
    merged: Dict[str, Dict[str, object]] = {}
    for summary in summaries:
        for name in summary:
            entry = summary[name]
            slot = merged.get(name)
            if slot is None:
                slot = merged[name] = {
                    "kind": entry.get("kind", "meta"),
                    "tag_class": entry.get("tag_class", ""),
                    "reuse": {},
                }
                for key in _SUM_KEYS:
                    slot[key] = 0
            for key in _SUM_KEYS:
                slot[key] += entry.get(key, 0)
            reuse = slot["reuse"]
            for label, count in entry.get("reuse", {}).items():
                reuse[label] = reuse.get(label, 0) + count
    for slot in merged.values():
        if slot["kind"] == "addr":
            total = (slot["hits"] + slot["misses"] + slot["merges"]
                     + slot["stalls"])
        else:
            total = slot["hits"] + slot["misses"] + slot["nowalk"]
        slot["hit_rate"] = slot["hits"] / total if total else 0.0
        slot["conflict_share"] = (slot["conflict"] / slot["misses"]
                                  if slot["misses"] else 0.0)
    return merged
