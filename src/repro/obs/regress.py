"""Perf-regression gate over ``BENCH_*.json`` records.

Compares freshly produced benchmark records against the committed
baselines and exits nonzero when any gated metric regressed past its
threshold::

    python -m repro.obs.regress --baseline . fresh/BENCH_kernel.json

Metric policy is derived from the metric *name*, so new benchmarks
gate themselves without registry edits:

* ``*_per_sec``      — throughput, higher is better (tolerance 25%);
* ``speedup`` / ``*_speedup`` — ratio, higher is better (25%);
* ``*_overhead_x`` / ``*_x`` — ratio, lower is better (25%);
* anything else (``events``, ``seed``, ``chains``, …) is workload
  configuration: it must match the baseline exactly, because a record
  measured on a different workload is not comparable.

``--smoke`` relaxes the gate for shared-CI hardware, where absolute
throughput is noise: ``*_per_sec`` metrics are only sanity-checked
(> 0) and config keys may differ (CI runs a smaller event count),
while machine-portable ratios stay gated with doubled tolerance.
Per-metric overrides: ``--tolerance name=frac`` (repeatable). An
explicit override is exempt from smoke relaxation — it gates at
exactly the given fraction even under ``--smoke``, which is how
hard bounds like ``telemetry_overhead_x`` survive shared CI.

**SLO mode** (``--slo SLO.json``) gates *request-latency* budgets
instead of benchmark records: the positional files are span summaries
(written by ``--spans`` captures or ``python -m repro.obs.explain
--json``), and the policy file holds per-suite p50/p99 cycle budgets::

    python -m repro.obs.regress --slo SLO.json spans.fig14.json

Latencies are deterministic *simulated* cycles, so SLO budgets are
machine-portable: ``--smoke`` does not loosen them (it is accepted so
one CI invocation can mix both modes' flags).

Exit codes: 0 ok, 1 regression/SLO breach, 2 usage/IO error (missing
baseline, malformed record or policy, mismatched benchmark name).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

__all__ = ["MetricCheck", "compare_records", "load_record",
           "check_slo", "main"]

DEFAULT_TOLERANCE = 0.25
SMOKE_SCALE = 2.0          # smoke mode doubles ratio tolerances


def _die(message: str) -> "SystemExit":
    print(message, file=sys.stderr)
    return SystemExit(2)


@dataclass(frozen=True)
class MetricCheck:
    """Outcome of gating one metric."""

    metric: str
    baseline: float
    fresh: float
    limit: float           # the threshold `fresh` was held to
    ok: bool
    note: str              # "higher-better", "lower-better", ...


def _kind(name: str) -> Optional[str]:
    """Classify a metric name; None means workload configuration."""
    if name.endswith("_per_sec"):
        return "throughput"
    if name == "speedup" or name.endswith("_speedup"):
        return "higher"
    if name.endswith("_x"):
        return "lower"
    return None


def load_record(path: Path) -> Dict:
    try:
        record = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise _die(f"regress: cannot read {path}: {exc}")
    if not isinstance(record, dict) or "benchmark" not in record:
        raise _die(f"regress: {path} is not a benchmark record "
                   f"(missing 'benchmark' key)")
    return record


def compare_records(fresh: Dict, baseline: Dict, *,
                    smoke: bool = False,
                    tolerances: Optional[Dict[str, float]] = None,
                    ) -> List[MetricCheck]:
    """Gate every shared metric; returns one check per gated metric."""
    tolerances = tolerances or {}
    checks: List[MetricCheck] = []
    for name in baseline:
        if name == "benchmark" or name not in fresh:
            continue
        base, new = baseline[name], fresh[name]
        kind = _kind(name)
        if kind is None:
            if not smoke and base != new:
                checks.append(MetricCheck(
                    name, _num(base), _num(new), _num(base), False,
                    "config mismatch"))
            continue
        if not isinstance(base, (int, float)) or \
                not isinstance(new, (int, float)):
            continue
        # an explicit --tolerance is a contract, not a default: it is
        # never smoke-scaled and never downgraded to a sanity check —
        # how machine-portable bounds (telemetry_overhead_x) stay
        # gated at full strength on shared CI hardware
        pinned = name in tolerances
        tol = tolerances.get(name, DEFAULT_TOLERANCE)
        if smoke and not pinned:
            if kind == "throughput":
                checks.append(MetricCheck(
                    name, base, new, 0.0, new > 0,
                    "smoke: sanity only"))
                continue
            tol *= SMOKE_SCALE
        if kind == "lower":
            limit = base * (1.0 + tol)
            checks.append(MetricCheck(
                name, base, new, limit, new <= limit, "lower-better"))
        else:
            limit = base * (1.0 - tol)
            checks.append(MetricCheck(
                name, base, new, limit, new >= limit, "higher-better"))
    return checks


def _num(value) -> float:
    return value if isinstance(value, (int, float)) else float("nan")


#: metrics a suite SLO entry may budget (all lower-is-better cycles,
#: except min_requests which guards against a silently empty suite)
SLO_METRICS = ("latency_p50", "latency_p99")

#: cache-contents budgets (summaries carry the fields when the capture
#: was lens-armed: ``--misses`` / ``explain --misses --json``)
SLO_MIN_METRICS = (("min_hit_rate", "hit_rate"),)
SLO_MAX_METRICS = (("max_conflict_share", "conflict_share"),)


def check_slo(summary: Dict, policy: Dict) -> List[MetricCheck]:
    """Gate one span summary against the SLO policy.

    ``summary`` is ``{"suite": ..., "components": {dsa: {latency_p50,
    latency_p99, requests, ...}}}``; ``policy`` is::

        {"suites": {"fig14": {"latency_p50": 80, "latency_p99": 900,
                              "min_requests": 10,
                              "min_hit_rate": 0.7,
                              "max_conflict_share": 0.1,
                              "components": {"dsa-name": {...overrides}}}}}

    Suite budgets apply to every component; a ``components`` entry
    overrides per DSA. The cache-contents budgets (``min_hit_rate``
    higher-better, ``max_conflict_share`` lower-better) gate only
    summaries that carry those fields — i.e. lens-armed captures. A suite absent from the policy raises (exit 2 at
    the CLI) — an ungated suite is a configuration error, not a pass.
    """
    suites = policy.get("suites")
    if not isinstance(suites, dict):
        raise _die("regress: SLO policy has no 'suites' mapping")
    suite = summary.get("suite", "")
    budgets = suites.get(suite, suites.get("default"))
    if budgets is None:
        raise _die(f"regress: no SLO budgets for suite {suite!r}")
    overrides = budgets.get("components", {})
    checks: List[MetricCheck] = []
    for name in sorted(summary.get("components", {})):
        entry = summary["components"][name]
        scoped = dict(budgets)
        scoped.pop("components", None)
        scoped.update(overrides.get(name, {}))
        min_requests = scoped.pop("min_requests", None)
        if min_requests is not None:
            count = entry.get("requests", 0)
            checks.append(MetricCheck(
                f"{name}.requests", min_requests, count, min_requests,
                count >= min_requests, "slo: higher-better"))
        for metric in SLO_METRICS:
            budget = scoped.get(metric)
            value = entry.get(metric)
            if budget is None or value is None:
                continue
            checks.append(MetricCheck(
                f"{name}.{metric}", _num(budget), _num(value),
                _num(budget), _num(value) <= _num(budget),
                "slo: lower-better"))
        for budget_key, field in SLO_MIN_METRICS:
            budget = scoped.get(budget_key)
            value = entry.get(field)
            if budget is None or value is None:
                continue
            checks.append(MetricCheck(
                f"{name}.{field}", _num(budget), _num(value),
                _num(budget), _num(value) >= _num(budget),
                "slo: higher-better"))
        for budget_key, field in SLO_MAX_METRICS:
            budget = scoped.get(budget_key)
            value = entry.get(field)
            if budget is None or value is None:
                continue
            checks.append(MetricCheck(
                f"{name}.{field}", _num(budget), _num(value),
                _num(budget), _num(value) <= _num(budget),
                "slo: lower-better"))
    return checks


def _parse_tolerances(pairs: Sequence[str]) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for pair in pairs:
        name, _, frac = pair.partition("=")
        try:
            out[name] = float(frac)
        except ValueError:
            raise _die(f"regress: bad --tolerance {pair!r} "
                       f"(want name=fraction)")
    return out


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.regress",
        description="Gate fresh BENCH_*.json records against baselines, "
                    "or span summaries against an SLO policy (--slo).")
    parser.add_argument("fresh", nargs="+", metavar="RECORD.json",
                        help="fresh benchmark record(s), or span "
                             "summaries with --slo")
    parser.add_argument("--baseline", metavar="DIR",
                        help="directory holding committed baselines "
                             "(matched by file name; required unless "
                             "--slo)")
    parser.add_argument("--slo", metavar="SLO.json",
                        help="gate span summaries against this SLO "
                             "policy instead of benchmark baselines")
    parser.add_argument("--smoke", action="store_true",
                        help="shared-CI mode: gate ratios loosely, "
                             "sanity-check throughput only (SLO cycle "
                             "budgets stay exact)")
    parser.add_argument("--tolerance", action="append", default=[],
                        metavar="NAME=FRAC",
                        help="per-metric tolerance override (repeatable)")
    parser.add_argument("--report", metavar="PATH",
                        help="also write the checks as JSON")
    args = parser.parse_args(argv)

    if args.slo:
        return _main_slo(args)
    if not args.baseline:
        parser.error("--baseline is required (unless gating with --slo)")

    tolerances = _parse_tolerances(args.tolerance)
    baseline_dir = Path(args.baseline)
    all_checks: List[Dict] = []
    failed = 0

    for fresh_path in (Path(p) for p in args.fresh):
        base_path = baseline_dir / fresh_path.name
        if not base_path.is_file():
            raise _die(
                f"regress: no baseline {base_path} for {fresh_path}")
        fresh = load_record(fresh_path)
        baseline = load_record(base_path)
        if fresh["benchmark"] != baseline["benchmark"]:
            raise _die(
                f"regress: benchmark mismatch for {fresh_path.name}: "
                f"{fresh['benchmark']!r} vs {baseline['benchmark']!r}")

        checks = compare_records(fresh, baseline, smoke=args.smoke,
                                 tolerances=tolerances)
        print(f"== {fresh['benchmark']} ({fresh_path.name}) ==")
        for check in checks:
            verdict = "ok  " if check.ok else "FAIL"
            print(f"  [{verdict}] {check.metric}: "
                  f"baseline={check.baseline:g} fresh={check.fresh:g} "
                  f"limit={check.limit:g} ({check.note})")
            if not check.ok:
                failed += 1
            all_checks.append(
                {"benchmark": fresh["benchmark"], **asdict(check)})
        if not checks:
            print("  (no gated metrics in common)")

    if args.report:
        Path(args.report).write_text(
            json.dumps({"smoke": args.smoke, "failed": failed,
                        "checks": all_checks}, indent=2) + "\n")

    if failed:
        print(f"regress: {failed} metric(s) regressed")
        return 1
    print(f"regress: {len(all_checks)} metric(s) within thresholds")
    return 0


def _main_slo(args) -> int:
    """``--slo`` branch: gate span summaries against cycle budgets."""
    slo_path = Path(args.slo)
    try:
        policy = json.loads(slo_path.read_text())
    except (OSError, ValueError) as exc:
        raise _die(f"regress: cannot read SLO policy {slo_path}: {exc}")

    all_checks: List[Dict] = []
    failed = 0
    for summary_path in (Path(p) for p in args.fresh):
        try:
            summary = json.loads(summary_path.read_text())
        except (OSError, ValueError) as exc:
            raise _die(f"regress: cannot read {summary_path}: {exc}")
        if not isinstance(summary, dict) or "components" not in summary:
            raise _die(f"regress: {summary_path} is not a span summary "
                       f"(missing 'components' key)")
        suite = summary.get("suite", "?")
        checks = check_slo(summary, policy)
        print(f"== slo {suite} ({summary_path.name}) ==")
        for check in checks:
            verdict = "ok  " if check.ok else "FAIL"
            print(f"  [{verdict}] {check.metric}: "
                  f"budget={check.baseline:g} actual={check.fresh:g} "
                  f"({check.note})")
            if not check.ok:
                failed += 1
            all_checks.append({"suite": suite, **asdict(check)})
        if not checks:
            print("  (no budgeted metrics)")

    if args.report:
        Path(args.report).write_text(
            json.dumps({"slo": str(slo_path), "failed": failed,
                        "checks": all_checks}, indent=2) + "\n")

    if failed:
        print(f"regress: {failed} SLO budget(s) breached")
        return 1
    print(f"regress: {len(all_checks)} SLO check(s) within budget")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
