"""Perf-regression gate over ``BENCH_*.json`` records.

Compares freshly produced benchmark records against the committed
baselines and exits nonzero when any gated metric regressed past its
threshold::

    python -m repro.obs.regress --baseline . fresh/BENCH_kernel.json

Metric policy is derived from the metric *name*, so new benchmarks
gate themselves without registry edits:

* ``*_per_sec``      — throughput, higher is better (tolerance 25%);
* ``speedup`` / ``*_speedup`` — ratio, higher is better (25%);
* ``*_overhead_x`` / ``*_x`` — ratio, lower is better (25%);
* anything else (``events``, ``seed``, ``chains``, …) is workload
  configuration: it must match the baseline exactly, because a record
  measured on a different workload is not comparable.

``--smoke`` relaxes the gate for shared-CI hardware, where absolute
throughput is noise: ``*_per_sec`` metrics are only sanity-checked
(> 0) and config keys may differ (CI runs a smaller event count),
while machine-portable ratios stay gated with doubled tolerance.
Per-metric overrides: ``--tolerance name=frac`` (repeatable).

Exit codes: 0 ok, 1 regression, 2 usage/IO error (missing baseline,
malformed record, mismatched benchmark name).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

__all__ = ["MetricCheck", "compare_records", "load_record", "main"]

DEFAULT_TOLERANCE = 0.25
SMOKE_SCALE = 2.0          # smoke mode doubles ratio tolerances


def _die(message: str) -> "SystemExit":
    print(message, file=sys.stderr)
    return SystemExit(2)


@dataclass(frozen=True)
class MetricCheck:
    """Outcome of gating one metric."""

    metric: str
    baseline: float
    fresh: float
    limit: float           # the threshold `fresh` was held to
    ok: bool
    note: str              # "higher-better", "lower-better", ...


def _kind(name: str) -> Optional[str]:
    """Classify a metric name; None means workload configuration."""
    if name.endswith("_per_sec"):
        return "throughput"
    if name == "speedup" or name.endswith("_speedup"):
        return "higher"
    if name.endswith("_x"):
        return "lower"
    return None


def load_record(path: Path) -> Dict:
    try:
        record = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise _die(f"regress: cannot read {path}: {exc}")
    if not isinstance(record, dict) or "benchmark" not in record:
        raise _die(f"regress: {path} is not a benchmark record "
                   f"(missing 'benchmark' key)")
    return record


def compare_records(fresh: Dict, baseline: Dict, *,
                    smoke: bool = False,
                    tolerances: Optional[Dict[str, float]] = None,
                    ) -> List[MetricCheck]:
    """Gate every shared metric; returns one check per gated metric."""
    tolerances = tolerances or {}
    checks: List[MetricCheck] = []
    for name in baseline:
        if name == "benchmark" or name not in fresh:
            continue
        base, new = baseline[name], fresh[name]
        kind = _kind(name)
        if kind is None:
            if not smoke and base != new:
                checks.append(MetricCheck(
                    name, _num(base), _num(new), _num(base), False,
                    "config mismatch"))
            continue
        if not isinstance(base, (int, float)) or \
                not isinstance(new, (int, float)):
            continue
        tol = tolerances.get(name, DEFAULT_TOLERANCE)
        if smoke:
            if kind == "throughput":
                checks.append(MetricCheck(
                    name, base, new, 0.0, new > 0,
                    "smoke: sanity only"))
                continue
            tol *= SMOKE_SCALE
        if kind == "lower":
            limit = base * (1.0 + tol)
            checks.append(MetricCheck(
                name, base, new, limit, new <= limit, "lower-better"))
        else:
            limit = base * (1.0 - tol)
            checks.append(MetricCheck(
                name, base, new, limit, new >= limit, "higher-better"))
    return checks


def _num(value) -> float:
    return value if isinstance(value, (int, float)) else float("nan")


def _parse_tolerances(pairs: Sequence[str]) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for pair in pairs:
        name, _, frac = pair.partition("=")
        try:
            out[name] = float(frac)
        except ValueError:
            raise _die(f"regress: bad --tolerance {pair!r} "
                       f"(want name=fraction)")
    return out


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.regress",
        description="Gate fresh BENCH_*.json records against baselines.")
    parser.add_argument("fresh", nargs="+", metavar="BENCH.json",
                        help="freshly produced benchmark record(s)")
    parser.add_argument("--baseline", required=True, metavar="DIR",
                        help="directory holding committed baselines "
                             "(matched by file name)")
    parser.add_argument("--smoke", action="store_true",
                        help="shared-CI mode: gate ratios loosely, "
                             "sanity-check throughput only")
    parser.add_argument("--tolerance", action="append", default=[],
                        metavar="NAME=FRAC",
                        help="per-metric tolerance override (repeatable)")
    parser.add_argument("--report", metavar="PATH",
                        help="also write the checks as JSON")
    args = parser.parse_args(argv)

    tolerances = _parse_tolerances(args.tolerance)
    baseline_dir = Path(args.baseline)
    all_checks: List[Dict] = []
    failed = 0

    for fresh_path in (Path(p) for p in args.fresh):
        base_path = baseline_dir / fresh_path.name
        if not base_path.is_file():
            raise _die(
                f"regress: no baseline {base_path} for {fresh_path}")
        fresh = load_record(fresh_path)
        baseline = load_record(base_path)
        if fresh["benchmark"] != baseline["benchmark"]:
            raise _die(
                f"regress: benchmark mismatch for {fresh_path.name}: "
                f"{fresh['benchmark']!r} vs {baseline['benchmark']!r}")

        checks = compare_records(fresh, baseline, smoke=args.smoke,
                                 tolerances=tolerances)
        print(f"== {fresh['benchmark']} ({fresh_path.name}) ==")
        for check in checks:
            verdict = "ok  " if check.ok else "FAIL"
            print(f"  [{verdict}] {check.metric}: "
                  f"baseline={check.baseline:g} fresh={check.fresh:g} "
                  f"limit={check.limit:g} ({check.note})")
            if not check.ok:
                failed += 1
            all_checks.append(
                {"benchmark": fresh["benchmark"], **asdict(check)})
        if not checks:
            print("  (no gated metrics in common)")

    if args.report:
        Path(args.report).write_text(
            json.dumps({"smoke": args.smoke, "failed": failed,
                        "checks": all_checks}, indent=2) + "\n")

    if failed:
        print(f"regress: {failed} metric(s) regressed")
        return 1
    print(f"regress: {len(all_checks)} metric(s) within thresholds")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
