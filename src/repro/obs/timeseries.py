"""Windowed time-series metrics (``repro.obs.timeseries``).

Samples the run over fixed, configurable cycle windows instead of
collapsing it to end-of-run aggregates: each window records request
traffic and hit-rate, walker-context occupancy, outstanding DRAM
transactions (the MSHR pressure proxy for the active-bitmap design),
and DRAM bandwidth.  Rows materialize lazily — a window flushes when
the first event past its right edge arrives, and empty gaps between
active windows are emitted as zero-traffic rows so the series is
contiguous and plottable without resampling.

Export is CSV (:func:`write_csv`, one ``run`` column per captured
system so ``--parallel`` output merges deterministically) or JSON
(:meth:`TimeSeriesProcessor.to_json`).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Set, TextIO, Tuple, Union

from .events import (
    DRAMComplete,
    DRAMIssue,
    Hit,
    Merge,
    Miss,
    RequestArrive,
    Tag,
    WalkerDispatch,
    WalkerRetire,
)
from .processors import TypedEventProcessor

__all__ = ["TimeSeriesProcessor", "CSV_COLUMNS", "write_csv",
           "HEATMAP_COLUMNS", "write_heatmap_csv"]

#: Column order for every row dict / CSV export.
CSV_COLUMNS: Tuple[str, ...] = (
    "window_start", "window_end", "requests", "hits", "misses", "merges",
    "hit_rate", "retires", "walkers_peak", "walkers_end",
    "dram_reads", "dram_writes", "dram_bytes", "dram_bw",
    "mshr_peak", "mshr_end",
)


class TimeSeriesProcessor(TypedEventProcessor):
    """Aggregates bus events into fixed-width cycle windows."""

    def __init__(self, window: int = 1000) -> None:
        super().__init__()
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self.rows: List[Dict[str, Union[int, float]]] = []
        self._w: Optional[int] = None      # current window index
        # per-window counters
        self._requests = 0
        self._hits = 0
        self._misses = 0
        self._merges = 0
        self._retires = 0
        self._dram_reads = 0
        self._dram_writes = 0
        self._dram_bytes = 0
        # level state (survives window boundaries)
        self._walkers: Set[Tuple[str, Tag]] = set()
        self._walkers_peak = 0
        self._mshr = 0
        self._mshr_peak = 0
        self._closed = False

    # -- window bookkeeping --------------------------------------------
    def _roll(self, cycle: int) -> None:
        w = cycle // self.window
        if self._w is None:
            self._w = w
        while self._w < w:
            self._flush()
            self._w += 1

    def _flush(self) -> None:
        start = self._w * self.window
        served = self._hits + self._misses
        bytes_ = self._dram_bytes
        self.rows.append({
            "window_start": start,
            "window_end": start + self.window,
            "requests": self._requests,
            "hits": self._hits,
            "misses": self._misses,
            "merges": self._merges,
            "hit_rate": self._hits / served if served else 0.0,
            "retires": self._retires,
            "walkers_peak": self._walkers_peak,
            "walkers_end": len(self._walkers),
            "dram_reads": self._dram_reads,
            "dram_writes": self._dram_writes,
            "dram_bytes": bytes_,
            "dram_bw": bytes_ / self.window,
            "mshr_peak": self._mshr_peak,
            "mshr_end": self._mshr,
        })
        self._requests = self._hits = self._misses = self._merges = 0
        self._retires = 0
        self._dram_reads = self._dram_writes = self._dram_bytes = 0
        self._walkers_peak = len(self._walkers)
        self._mshr_peak = self._mshr

    # -- event handlers ------------------------------------------------
    def on_request_arrive(self, ev: RequestArrive) -> None:
        self._roll(ev.cycle)
        self._requests += 1

    def on_hit(self, ev: Hit) -> None:
        self._roll(ev.cycle)
        self._hits += 1

    def on_miss(self, ev: Miss) -> None:
        self._roll(ev.cycle)
        self._misses += 1
        self._track_walker(ev.component, ev.tag)

    def on_merge(self, ev: Merge) -> None:
        self._roll(ev.cycle)
        self._merges += 1

    def on_walker_dispatch(self, ev: WalkerDispatch) -> None:
        self._roll(ev.cycle)
        self._track_walker(ev.component, ev.tag)

    def on_walker_retire(self, ev: WalkerRetire) -> None:
        self._roll(ev.cycle)
        self._retires += 1
        self._walkers.discard((ev.component, ev.tag))

    def on_dram_issue(self, ev: DRAMIssue) -> None:
        self._roll(ev.cycle)
        if ev.is_write:
            self._dram_writes += 1
        else:
            self._dram_reads += 1
        self._dram_bytes += ev.nbytes
        self._mshr += 1
        if self._mshr > self._mshr_peak:
            self._mshr_peak = self._mshr

    def on_dram_complete(self, ev: DRAMComplete) -> None:
        self._roll(ev.cycle)
        if self._mshr > 0:
            self._mshr -= 1

    def _track_walker(self, component: str, tag: Tag) -> None:
        self._walkers.add((component, tag))
        if len(self._walkers) > self._walkers_peak:
            self._walkers_peak = len(self._walkers)

    # -- lifecycle / export --------------------------------------------
    def close(self) -> None:
        """Flush the final (possibly partial) window."""
        if self._closed:
            return
        self._closed = True
        if self._w is not None:
            self._flush()

    def to_json(self) -> str:
        return json.dumps({"window": self.window, "rows": self.rows},
                          indent=2, sort_keys=True)


def write_csv(target: Union[str, TextIO],
              runs: Sequence[Tuple[str, TimeSeriesProcessor]]) -> int:
    """Write ``(run_id, processor)`` series as one CSV; returns rows."""
    lines = ["run," + ",".join(CSV_COLUMNS)]
    for run_id, proc in runs:
        proc.close()
        for row in proc.rows:
            cells = [str(run_id)]
            for col in CSV_COLUMNS:
                value = row[col]
                cells.append(f"{value:.6g}" if isinstance(value, float)
                             else str(value))
            lines.append(",".join(cells))
    text = "".join(line + "\n" for line in lines)
    if hasattr(target, "write"):
        target.write(text)
    else:
        with open(target, "w", encoding="utf-8") as fh:
            fh.write(text)
    return len(lines) - 1


#: Column order for per-set heatmap rows (``--heatmap``).
HEATMAP_COLUMNS: Tuple[str, ...] = (
    "window_start", "window_end", "set", "occupancy", "fills", "evicts",
)


def write_heatmap_csv(target: Union[str, TextIO],
                      runs: Sequence[Tuple[str, Sequence]]) -> int:
    """Write per-set occupancy/pressure heatmap rows as one CSV.

    ``runs`` is ``(run_id, rows)`` where ``rows`` is the
    ``(cache, row_dict)`` sequence from
    :meth:`repro.obs.cachelens.CacheLensProcessor.heat_rows`; the
    ``run`` and ``cache`` columns keep ``--parallel`` and
    multi-controller output merge-stable. Returns data rows written.
    """
    lines = ["run,cache," + ",".join(HEATMAP_COLUMNS)]
    for run_id, rows in runs:
        for cache, row in rows:
            cells = [str(run_id), cache]
            cells.extend(str(row[col]) for col in HEATMAP_COLUMNS)
            lines.append(",".join(cells))
    text = "".join(line + "\n" for line in lines)
    if hasattr(target, "write"):
        target.write(text)
    else:
        with open(target, "w", encoding="utf-8") as fh:
            fh.write(text)
    return len(lines) - 1
