"""Pathology watchdog (``repro.obs.watchdog``).

Watches the event stream for three classes of simulated-hardware
pathologies and records each as a structured :class:`ObsWarning`:

* **livelock** — walker contexts are in flight but no walker has
  retired for ``livelock_cycles`` simulated cycles;
* **mshr_saturation** — outstanding DRAM transactions reached
  ``mshr_limit`` (an episode re-arms once the level drains below half
  the limit, so a sustained plateau warns once, not per event);
* **starvation** — a dormant walker waited more than
  ``starvation_cycles`` between yield and wake/retire.

Warnings are plain frozen dataclasses — tests assert on them, and an
optional ``stream`` mirrors each as a human-readable line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, TextIO, Tuple

from .events import (
    DRAMComplete,
    DRAMIssue,
    Hit,
    Miss,
    Tag,
    WalkerDispatch,
    WalkerRetire,
    WalkerWake,
    WalkerYield,
)
from .processors import TypedEventProcessor

__all__ = ["ObsWarning", "WatchdogProcessor"]


@dataclass(frozen=True)
class ObsWarning:
    """One detected pathology."""

    kind: str        # "livelock" | "mshr_saturation" | "starvation"
    cycle: int
    component: str
    detail: str


class WatchdogProcessor(TypedEventProcessor):
    """Flags livelock, MSHR saturation, and walker starvation."""

    def __init__(self,
                 livelock_cycles: int = 100_000,
                 mshr_limit: int = 32,
                 starvation_cycles: int = 50_000,
                 stream: Optional[TextIO] = None) -> None:
        super().__init__()
        self.livelock_cycles = livelock_cycles
        self.mshr_limit = mshr_limit
        self.starvation_cycles = starvation_cycles
        self.stream = stream
        self.warnings: List[ObsWarning] = []
        self._active: Set[Tuple[str, Tag]] = set()
        self._dormant: Dict[Tuple[str, Tag], int] = {}  # -> yield cycle
        self._last_progress = 0
        self._livelock_flagged = False
        self._mshr = 0
        self._mshr_flagged = False

    # -- warning plumbing ----------------------------------------------
    def _warn(self, kind: str, cycle: int, component: str,
              detail: str) -> None:
        warning = ObsWarning(kind, cycle, component, detail)
        self.warnings.append(warning)
        if self.stream is not None:
            self.stream.write(
                f"[obs] WARNING {kind} @{cycle} {component}: {detail}\n")

    def _check_livelock(self, cycle: int, component: str) -> None:
        if self._livelock_flagged or not self._active:
            return
        stalled = cycle - self._last_progress
        if stalled > self.livelock_cycles:
            self._livelock_flagged = True
            self._warn("livelock", cycle, component,
                       f"{len(self._active)} walker(s) in flight, "
                       f"no retire for {stalled} cycles")

    def _progress(self, cycle: int) -> None:
        self._last_progress = cycle
        self._livelock_flagged = False

    # -- event handlers ------------------------------------------------
    def on_hit(self, ev: Hit) -> None:
        self._progress(ev.cycle)

    def on_miss(self, ev: Miss) -> None:
        self._active.add((ev.component, ev.tag))
        self._check_livelock(ev.cycle, ev.component)

    def on_walker_dispatch(self, ev: WalkerDispatch) -> None:
        key = (ev.component, ev.tag)
        self._active.add(key)
        self._dormant.pop(key, None)
        self._check_livelock(ev.cycle, ev.component)

    def on_walker_yield(self, ev: WalkerYield) -> None:
        self._dormant[(ev.component, ev.tag)] = ev.cycle
        self._check_livelock(ev.cycle, ev.component)

    def on_walker_wake(self, ev: WalkerWake) -> None:
        self._check_starved(ev.component, ev.tag, ev.cycle)
        self._check_livelock(ev.cycle, ev.component)

    def on_walker_retire(self, ev: WalkerRetire) -> None:
        key = (ev.component, ev.tag)
        self._check_starved(ev.component, ev.tag, ev.cycle)
        self._active.discard(key)
        self._progress(ev.cycle)

    def _check_starved(self, component: str, tag: Tag,
                       cycle: int) -> None:
        slept = self._dormant.pop((component, tag), None)
        if slept is None:
            return
        waited = cycle - slept
        if waited > self.starvation_cycles:
            self._warn("starvation", cycle, component,
                       f"walker {tag} dormant for {waited} cycles")

    def on_dram_issue(self, ev: DRAMIssue) -> None:
        self._mshr += 1
        if self._mshr >= self.mshr_limit and not self._mshr_flagged:
            self._mshr_flagged = True
            self._warn("mshr_saturation", ev.cycle, ev.component,
                       f"{self._mshr} outstanding DRAM transactions "
                       f"(limit {self.mshr_limit})")
        self._check_livelock(ev.cycle, ev.component)

    def on_dram_complete(self, ev: DRAMComplete) -> None:
        if self._mshr > 0:
            self._mshr -= 1
        if self._mshr < self.mshr_limit // 2:
            self._mshr_flagged = False

    # -- inspection ----------------------------------------------------
    def count(self, kind: str) -> int:
        return sum(1 for w in self.warnings if w.kind == kind)
