"""Critical-path *why-slow* analysis (``repro.obs.critpath``).

Decomposes each completed :class:`~repro.obs.spans.RequestSpan` into
five blame buckets that sum **exactly** to the request's latency:

``hit_path``
    The pipelined read-port answer (the paper's 3-cycle load-to-use,
    plus data serialization beyond ``#wlen`` words).
``sched_wait``
    Cycles queued in MetaIO before joining a walk / being served, plus
    walk cycles spent waiting on the one-dispatch-per-cycle front-end
    scheduler (admission gap, woken-but-not-redispatched).
``exec``
    Walk cycles in the back-end routine-execution pipeline.
``dram``
    Walk cycles dormant with DRAM fills outstanding.
``queue_stall``
    Admission stalls (``QueueStall``: no free context / set conflict)
    and walk cycles dormant on internal events.

The decomposition works off the request's episode windows: the journey
``[arrive, close)`` is covered by queue gaps (before the first join,
between a store-replay and its re-join) and by the walk phase intervals
intersected with each episode window ``[join, retire)``.  Phases tile
the walk exactly, so the buckets conserve by construction; a residual
cycle can only appear if the event stream itself is inconsistent, and
:func:`verify_request` reports it.

:class:`CritPathAggregator` consumes completed spans (it is the natural
``sink`` for a :class:`~repro.obs.spans.SpanAssembler`), keeping per-DSA
latency histograms (p50/p99), blame totals, and a bounded top-K heap of
the slowest requests — mergeable across systems and workers.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.sim.stats import Histogram

from .spans import RequestSpan

__all__ = [
    "BLAME_BUCKETS",
    "blame_request",
    "verify_request",
    "CritPathAggregator",
]

#: Canonical bucket order for tables and JSON.
BLAME_BUCKETS: Tuple[str, ...] = (
    "hit_path", "sched_wait", "exec", "dram", "queue_stall",
)

_PHASE_BUCKET: Dict[str, str] = {
    "exec": "exec",
    "dram_wait": "dram",
    "event_wait": "queue_stall",
    "sched_wait": "sched_wait",
}


def blame_request(span: RequestSpan) -> Dict[str, int]:
    """Split a completed request's latency across :data:`BLAME_BUCKETS`.

    Returns ``{bucket: cycles}`` summing exactly to ``span.latency``.
    Raises ``ValueError`` on a span that is still open.
    """
    if span.done < 0:
        raise ValueError(f"request {span.req_id} is still open")
    blame = dict.fromkeys(BLAME_BUCKETS, 0)

    # 1) walk episodes: intersect each walk's phase timeline with the
    #    request's window on it ([join, retire)).
    cursor = span.arrive
    gap = 0
    for ep in span.episodes:
        end = ep.left if ep.left >= 0 else span.close
        gap += max(0, ep.join - cursor)
        for ph in ep.walk.phases:
            lo = max(ph.start, ep.join)
            hi = min(ph.end, end)
            if hi > lo:
                blame[_PHASE_BUCKET[ph.kind]] += hi - lo
        cursor = max(cursor, end)
    gap += max(0, span.close - cursor)

    # 2) queue time: QueueStall events reclassify their share of the
    #    gap cycles from generic scheduling to admission stalls.
    stalled = min(span.stall_cycles, gap)
    blame["queue_stall"] += stalled
    blame["sched_wait"] += gap - stalled

    # 3) the hit tail (close -> data-back) is the read-port pipeline.
    blame["hit_path"] += span.done - span.close
    return blame


def verify_request(span: RequestSpan) -> List[str]:
    """Conservation / containment checks for one completed span.

    Returns a list of problem strings (empty = consistent):

    * blame buckets sum exactly to the request latency;
    * every episode window nests inside the request window, and every
      walk's phases tile ``[admitted, retired)`` — child cycles can
      never exceed the parent's.
    """
    problems: List[str] = []
    rid = span.req_id
    blame = blame_request(span)
    total = sum(blame.values())
    if total != span.latency:
        problems.append(
            f"req {rid}: blame sums to {total}, latency {span.latency}")
    for ep in span.episodes:
        walk = ep.walk
        if not (span.arrive <= ep.join <= span.close):
            problems.append(
                f"req {rid}: join @{ep.join} outside "
                f"[{span.arrive}, {span.close}]")
        if ep.left >= 0 and ep.left > span.close:
            problems.append(
                f"req {rid}: left walk {walk.walk_id} @{ep.left} after "
                f"close @{span.close}")
        if walk.retired >= 0:
            tiled = sum(ph.cycles for ph in walk.phases)
            lifetime = walk.retired - walk.admitted
            if tiled != lifetime:
                problems.append(
                    f"walk {walk.walk_id}: phases tile {tiled} of "
                    f"{lifetime} cycles")
            for ph in walk.phases:
                if ph.start < walk.admitted or ph.end > walk.retired:
                    problems.append(
                        f"walk {walk.walk_id}: phase [{ph.start},{ph.end}) "
                        f"outside [{walk.admitted},{walk.retired})")
            for d in walk.dram:
                if not walk.admitted <= d.issue <= walk.retired:
                    problems.append(
                        f"walk {walk.walk_id}: DRAM issue @{d.issue} "
                        f"outside [{walk.admitted},{walk.retired}]")
    return problems


class _ComponentStats:
    """Per-DSA aggregation bucket."""

    __slots__ = ("latency", "blame", "outcomes")

    def __init__(self) -> None:
        self.latency = Histogram("request_latency")
        self.blame: Dict[str, int] = dict.fromkeys(BLAME_BUCKETS, 0)
        self.outcomes: Dict[str, int] = {}


class CritPathAggregator:
    """Folds completed request spans into per-DSA why-slow summaries.

    Use as the assembler's sink::

        agg = CritPathAggregator(top_k=5)
        bus.attach(SpanAssembler(sink=agg.add, max_kept=0))

    ``verify=True`` runs :func:`verify_request` on every span and
    collects any problems on :attr:`mismatches` (the fig14 CI suite
    asserts it stays empty).
    """

    def __init__(self, top_k: int = 5, verify: bool = False) -> None:
        if top_k < 0:
            raise ValueError("top_k must be >= 0")
        self.top_k = top_k
        self.verify = verify
        self.requests = 0
        self._seq = 0
        self._by_component: Dict[str, _ComponentStats] = {}
        # min-heap of (latency, seq, span, blame): the root is the
        # *fastest* of the kept slowest, evicted first
        self._top: List[Tuple[int, int, RequestSpan, Dict[str, int]]] = []
        self.mismatches: List[str] = []

    # -- ingestion -----------------------------------------------------
    def add(self, span: RequestSpan) -> None:
        blame = blame_request(span)
        if self.verify:
            self.mismatches.extend(verify_request(span))
        self.requests += 1
        comp = self._by_component.get(span.component)
        if comp is None:
            comp = self._by_component[span.component] = _ComponentStats()
        comp.latency.add(span.latency)
        comp.outcomes[span.outcome] = comp.outcomes.get(span.outcome, 0) + 1
        for bucket, cycles in blame.items():
            comp.blame[bucket] += cycles
        if self.top_k:
            self._seq += 1
            item = (span.latency, self._seq, span, blame)
            if len(self._top) < self.top_k:
                heapq.heappush(self._top, item)
            elif span.latency > self._top[0][0]:
                heapq.heapreplace(self._top, item)

    def merge(self, other: "CritPathAggregator") -> None:
        """Fold another aggregator in (multi-system / worker merge)."""
        self.requests += other.requests
        self.mismatches.extend(other.mismatches)
        for name, theirs in other._by_component.items():
            ours = self._by_component.get(name)
            if ours is None:
                ours = self._by_component[name] = _ComponentStats()
            for value, weight in theirs.latency.items():
                ours.latency.add(value, weight)
            for bucket, cycles in theirs.blame.items():
                ours.blame[bucket] += cycles
            for outcome, n in theirs.outcomes.items():
                ours.outcomes[outcome] = ours.outcomes.get(outcome, 0) + n
        for latency, _seq, span, blame in other._top:
            self._seq += 1
            item = (latency, self._seq, span, blame)
            if len(self._top) < self.top_k:
                heapq.heappush(self._top, item)
            elif self.top_k and latency > self._top[0][0]:
                heapq.heapreplace(self._top, item)

    # -- inspection ----------------------------------------------------
    @property
    def conservation_ok(self) -> bool:
        return not self.mismatches

    def slowest(self) -> List[Tuple[RequestSpan, Dict[str, int]]]:
        """Kept slowest requests, slowest first."""
        ordered = sorted(self._top, key=lambda t: (-t[0], t[1]))
        return [(span, blame) for _lat, _seq, span, blame in ordered]

    def component_blame(self) -> Dict[str, Dict[str, int]]:
        return {name: dict(comp.blame)
                for name, comp in sorted(self._by_component.items())}

    def summary_dict(self) -> Dict[str, dict]:
        """JSON-ready per-DSA summary (the SLO gate's input)."""
        out: Dict[str, dict] = {}
        for name, comp in sorted(self._by_component.items()):
            hist = comp.latency
            out[name] = {
                "requests": hist.count,
                "latency_p50": hist.percentile(0.50),
                "latency_p99": hist.percentile(0.99),
                "latency_mean": round(hist.mean, 2),
                "latency_max": hist.max_seen,
                "blame": dict(comp.blame),
                "outcomes": dict(sorted(comp.outcomes.items())),
            }
        return out
