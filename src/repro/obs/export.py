"""Trace export: JSONL streaming and Chrome-trace (Perfetto) rendering.

* :class:`JsonlExporter` streams one JSON object per event — cheap,
  append-only, greppable, and trivially mergeable across runs.
* :class:`PerfettoExporter` renders the run as a Chrome-trace JSON file
  (load it at https://ui.perfetto.dev or ``chrome://tracing``): each
  component is a *process*, walker contexts are *tracks* (threads)
  carrying dispatch→retire walk spans with per-routine slices inside,
  and DRAM transactions are *async slices* on the DRAM process.
"""

from __future__ import annotations

import json
from typing import Dict, IO, List, Optional, Tuple, Union

from .events import (
    CacheEvict,
    CacheFill,
    DRAMComplete,
    DRAMIssue,
    Event,
    Merge,
    Miss,
    RunEnd,
    RunStart,
    WalkerDispatch,
    WalkerRetire,
    WalkerWake,
    WalkerYield,
    event_fields,
)
from .processors import EventProcessor

__all__ = ["JsonlExporter", "PerfettoExporter", "event_to_dict"]


def event_to_dict(event: Event, extra: Optional[dict] = None) -> dict:
    """Flatten an event into a JSON-ready dict (``event`` = wire name)."""
    out = {"event": event.__class__.name}
    if extra:
        out.update(extra)
    for name in event_fields(event.__class__):
        value = getattr(event, name)
        if isinstance(value, tuple):
            value = list(value)
        out[name] = value
    return out


class JsonlExporter(EventProcessor):
    """Streams every event as one JSON line.

    ``dest`` is a path or an open text stream. ``extra`` is folded into
    every line (the capture layer stamps ``{"run": n}`` so multi-system
    experiments stay distinguishable in one file). When given a path
    the file opens lazily on the first event and closes with the bus.
    """

    def __init__(self, dest: Union[str, IO[str]],
                 extra: Optional[dict] = None) -> None:
        self._path: Optional[str] = dest if isinstance(dest, str) else None
        self._stream: Optional[IO[str]] = (
            None if isinstance(dest, str) else dest)
        self._owns_stream = isinstance(dest, str)
        self.extra = extra
        self.events_written = 0

    def handle(self, event: Event) -> None:
        stream = self._stream
        if stream is None:
            stream = self._stream = open(self._path, "w")
        json.dump(event_to_dict(event, self.extra), stream,
                  separators=(",", ":"))
        stream.write("\n")
        self.events_written += 1

    def close(self) -> None:
        stream = self._stream
        if stream is None:
            return
        if self._owns_stream:
            self._stream = None
            stream.close()
        else:
            flush = getattr(stream, "flush", None)
            if flush is not None:
                flush()


class PerfettoExporter(EventProcessor):
    """Collects the run into Chrome-trace JSON.

    Track model (all timestamps are cycles, rendered as trace ``ts``):

    * one *process* per publishing component (``pid``), named via
      ``process_name`` metadata;
    * walker contexts are *threads* of their controller's process: a
      live walker claims the lowest free lane (exactly like an
      X-register context) and frees it at retire. The walk itself is a
      complete-event span (``ph":"X"``) from admission to retire, and
      each routine execution is a nested slice (dispatch→yield/retire);
    * DRAM transactions are async slices (``ph":"b"``/``"e"``) on the
      DRAM component's process, correlated by id;
    * kernel ``run()`` entry/exit become instant events;
    * request journeys are *flow arrows* (``ph":"s"/"t"/"f"``): each
      correlated request (``req_id >= 0``) gets a 1-cycle marker slice
      on the controller's scheduler track when it misses or merges, a
      flow start there, a step on the walk span it joined, and the
      finish at the retire that served it — so N merged requests
      visibly point at the one walker that answered them.

    Walk bookkeeping keys on ``walk_id`` when the stream carries one (a
    tag can be walked twice; an episode id cannot) and falls back to
    the tag for legacy/synthetic streams.

    ``new_run()`` namespaces a subsequent system's components so one
    trace file can hold a whole experiment.
    """

    def __init__(self, dest: Union[str, IO[str]]) -> None:
        self._path: Optional[str] = dest if isinstance(dest, str) else None
        self._stream: Optional[IO[str]] = (
            None if isinstance(dest, str) else dest)
        self.trace_events: List[dict] = []
        self._run = 0
        self._pids: Dict[str, int] = {}
        # per (pid, tag): lane + span bookkeeping
        self._lanes_free: Dict[int, List[int]] = {}
        self._lanes_next: Dict[int, int] = {}
        self._walks: Dict[Tuple[int, object], dict] = {}
        self._dram_seq = 0
        self._dram_open: Dict[Tuple[int, int], List[int]] = {}
        # request-journey flow arrows: req_id -> flow id
        self._flow_seq = 0
        self._flows: Dict[int, int] = {}
        # cache-contents counter tracks: pid -> (occupancy, evictions)
        self._cache_occ: Dict[int, int] = {}
        self._cache_evicts: Dict[int, int] = {}
        self._closed = False

    # -- capture plumbing ---------------------------------------------
    def new_run(self) -> None:
        """Namespace the components of the next attached system."""
        self._run += 1

    def _pid(self, component: str) -> int:
        key = (f"run{self._run}/{component}" if self._run else component)
        pid = self._pids.get(key)
        if pid is None:
            pid = len(self._pids) + 1
            self._pids[key] = pid
            self.trace_events.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": key},
            })
        return pid

    def _claim_lane(self, pid: int) -> int:
        free = self._lanes_free.setdefault(pid, [])
        if free:
            free.sort()
            return free.pop(0)
        lane = self._lanes_next.get(pid, 1)
        self._lanes_next[pid] = lane + 1
        self.trace_events.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": lane,
            "args": {"name": f"walker ctx {lane - 1}"},
        })
        return lane

    @staticmethod
    def _walk_key(pid: int, event: Event) -> Tuple[int, object]:
        walk_id = getattr(event, "walk_id", -1)
        if walk_id >= 0:
            return (pid, walk_id)
        return (pid, ("tag",) + tuple(event.tag))

    # -- event ingestion ----------------------------------------------
    def handle(self, event: Event) -> None:
        cls = event.__class__
        if cls is Miss:
            pid = self._pid(event.component)
            lane = self._claim_lane(pid)
            walk = {"lane": lane, "start": event.cycle, "routine": None,
                    "tag": list(event.tag)}
            self._walks[self._walk_key(pid, event)] = walk
            if event.req_id >= 0:
                self._flow_point(pid, walk, event.cycle, event.req_id,
                                 "miss")
        elif cls is Merge:
            pid = self._pid(event.component)
            walk = self._walks.get(self._walk_key(pid, event))
            if walk is not None and event.req_id >= 0:
                self._flow_point(pid, walk, event.cycle, event.req_id,
                                 "merge")
        elif cls is WalkerDispatch or cls is WalkerWake:
            pid = self._pid(event.component)
            walk = self._walks.get(self._walk_key(pid, event))
            if walk is not None and cls is WalkerDispatch:
                walk["routine"] = (event.routine, event.cycle)
        elif cls is WalkerYield:
            pid = self._pid(event.component)
            self._end_routine(self._walk_key(pid, event), pid, event.cycle)
        elif cls is WalkerRetire:
            pid = self._pid(event.component)
            key = self._walk_key(pid, event)
            self._end_routine(key, pid, event.cycle)
            walk = self._walks.pop(key, None)
            if walk is None:
                for rid in event.served:
                    self._flows.pop(rid, None)
                return
            start = event.cycle - event.lifetime
            self.trace_events.append({
                "ph": "X", "name": f"walk {list(event.tag)}",
                "cat": "walker", "pid": pid, "tid": walk["lane"],
                "ts": start, "dur": max(event.lifetime, 1),
                "args": {"tag": list(event.tag), "found": event.found},
            })
            for rid in event.served:
                fid = self._flows.pop(rid, None)
                if fid is not None:
                    self.trace_events.append({
                        "ph": "f", "bp": "e", "cat": "request",
                        "name": f"req {rid}", "id": fid, "pid": pid,
                        "tid": walk["lane"], "ts": event.cycle,
                    })
            self._lanes_free.setdefault(pid, []).append(walk["lane"])
        elif cls is DRAMIssue:
            pid = self._pid(event.component)
            self._dram_seq += 1
            slice_id = self._dram_seq
            self._dram_open.setdefault((pid, event.addr), []).append(slice_id)
            self.trace_events.append({
                "ph": "b", "cat": "dram",
                "name": "write" if event.is_write else "read",
                "pid": pid, "tid": 0, "ts": event.cycle,
                "id": slice_id,
                "args": {"addr": event.addr, "bank": event.bank,
                         "row": event.row_result},
            })
        elif cls is DRAMComplete:
            pid = self._pid(event.component)
            open_ids = self._dram_open.get((pid, event.addr))
            if open_ids:
                slice_id = open_ids.pop(0)
                self.trace_events.append({
                    "ph": "e", "cat": "dram", "name": "txn",
                    "pid": pid, "tid": 0, "ts": event.cycle,
                    "id": slice_id,
                })
        elif cls is CacheFill:
            pid = self._pid(event.component)
            occ = self._cache_occ.get(pid, 0) + 1
            self._cache_occ[pid] = occ
            self._cache_counter(pid, event.cycle, occ)
        elif cls is CacheEvict:
            pid = self._pid(event.component)
            occ = max(self._cache_occ.get(pid, 0) - 1, 0)
            self._cache_occ[pid] = occ
            self._cache_evicts[pid] = self._cache_evicts.get(pid, 0) + 1
            self._cache_counter(pid, event.cycle, occ)
        elif cls is RunStart or cls is RunEnd:
            pid = self._pid(event.component)
            self.trace_events.append({
                "ph": "i", "s": "p", "cat": "kernel",
                "name": cls.name, "pid": pid, "tid": 0,
                "ts": event.cycle,
            })

    def _cache_counter(self, pid: int, cycle: int, occ: int) -> None:
        """Counter track ("ph":"C") per cache: live entries + cumulative
        evictions, so contents churn plots next to the walk spans."""
        self.trace_events.append({
            "ph": "C", "name": "cache contents", "pid": pid, "tid": 0,
            "ts": cycle,
            "args": {"entries": occ,
                     "evictions": self._cache_evicts.get(pid, 0)},
        })

    def _end_routine(self, key: Tuple[int, object], pid: int,
                     cycle: int) -> None:
        walk = self._walks.get(key)
        if walk is None or walk["routine"] is None:
            return
        name, started = walk["routine"]
        walk["routine"] = None
        self.trace_events.append({
            "ph": "X", "name": name, "cat": "routine",
            "pid": pid, "tid": walk["lane"],
            "ts": started, "dur": max(cycle - started, 1),
            "args": {"tag": walk["tag"]},
        })

    def _flow_point(self, pid: int, walk: dict, cycle: int, req_id: int,
                    kind: str) -> None:
        """Marker slice + flow start/step for one request joining a walk."""
        fid = self._flows.get(req_id)
        fresh = fid is None
        if fresh:
            self._flow_seq += 1
            fid = self._flows[req_id] = self._flow_seq
        name = f"req {req_id}"
        self.trace_events.append({
            "ph": "X", "name": f"{name} {kind}", "cat": "request",
            "pid": pid, "tid": 0, "ts": cycle, "dur": 1,
            "args": {"req_id": req_id},
        })
        # a replayed request keeps its flow id: "s" once, then steps
        self.trace_events.append({
            "ph": "s" if fresh else "t", "cat": "request", "name": name,
            "id": fid, "pid": pid, "tid": 0, "ts": cycle,
        })
        self.trace_events.append({
            "ph": "t", "cat": "request", "name": name, "id": fid,
            "pid": pid, "tid": walk["lane"], "ts": cycle,
        })

    # -- output --------------------------------------------------------
    def to_chrome_trace(self) -> dict:
        return {
            "traceEvents": self.trace_events,
            "displayTimeUnit": "ns",
            "otherData": {"exporter": "repro.obs", "time_unit": "cycle"},
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        payload = self.to_chrome_trace()
        if self._path is not None:
            with open(self._path, "w") as fh:
                json.dump(payload, fh, indent=1)
                fh.write("\n")
        elif self._stream is not None:
            json.dump(payload, self._stream, indent=1)
            self._stream.write("\n")
