"""`repro.obs` — the observability plane.

A zero-cost-when-off telemetry subsystem: typed events
(:mod:`repro.obs.events`), a per-type-subscription bus
(:mod:`repro.obs.bus`), processors that fold the stream into metrics or
forward it to the legacy tracer (:mod:`repro.obs.processors`), and
exporters for JSONL and Perfetto/Chrome-trace output
(:mod:`repro.obs.export`). On top of the stream sit the
cycle-attribution profiler (:mod:`repro.obs.prof`), per-request span
trees (:mod:`repro.obs.spans`) with critical-path why-slow analysis
(:mod:`repro.obs.critpath`, CLI ``python -m repro.obs.explain``),
windowed time-series sampling (:mod:`repro.obs.timeseries`), the
pathology watchdog (:mod:`repro.obs.watchdog`), and a benchmark
regression + SLO gate (``python -m repro.obs.regress``).
:mod:`repro.obs.capture` wires it into the experiment harness
(``--events`` / ``--perfetto`` / ``--metrics-summary`` / ``--prof`` /
``--timeseries`` / ``--spans`` / ``--explain-top`` / ``--watchdog``).

Quick start::

    from repro.obs import MetricsProcessor

    system = XCacheSystem(config, program)
    metrics = system.observe(MetricsProcessor())
    ...issue requests...
    system.run()
    print(metrics.summary())
"""

from .events import (
    ACTION_CATEGORIES,
    ALL_EVENT_TYPES,
    EVENT_TYPES,
    DRAMComplete,
    DRAMIssue,
    Event,
    Evict,
    Fill,
    Hit,
    Merge,
    Miss,
    QueueStall,
    Reclaim,
    RequestArrive,
    RunEnd,
    RunStart,
    WalkerDispatch,
    WalkerRetire,
    WalkerWake,
    WalkerYield,
    event_fields,
    event_from_json,
)
from .bus import EventBus
from .processors import (
    EventProcessor,
    LegacyTraceProcessor,
    MetricsProcessor,
    NullProcessor,
    ProgressProcessor,
    TypedEventProcessor,
    summarize_metrics,
)
from .export import JsonlExporter, PerfettoExporter, event_to_dict
from .prof import ProfileProcessor, apportion, write_folded
from .spans import (
    EpisodeRef,
    RequestSpan,
    SpanAssembler,
    WalkPhase,
    WalkSpan,
)
from .critpath import (
    BLAME_BUCKETS,
    CritPathAggregator,
    blame_request,
    verify_request,
)
from .timeseries import TimeSeriesProcessor, write_csv
from .watchdog import ObsWarning, WatchdogProcessor
from .capture import Capture, CaptureSpec, capture_scope, current_capture

__all__ = [
    # events
    "Event", "RunStart", "RunEnd", "RequestArrive", "Hit", "Miss", "Merge",
    "WalkerDispatch", "WalkerWake", "WalkerYield", "WalkerRetire",
    "DRAMIssue", "DRAMComplete", "Fill", "Evict", "Reclaim", "QueueStall",
    "EVENT_TYPES", "ALL_EVENT_TYPES", "ACTION_CATEGORIES", "event_fields",
    "event_from_json",
    # bus
    "EventBus",
    # processors
    "EventProcessor", "TypedEventProcessor", "MetricsProcessor",
    "ProgressProcessor", "LegacyTraceProcessor", "NullProcessor",
    "summarize_metrics",
    # spans / critical path
    "SpanAssembler", "RequestSpan", "WalkSpan", "WalkPhase", "EpisodeRef",
    "CritPathAggregator", "BLAME_BUCKETS", "blame_request", "verify_request",
    # profiler / time-series / watchdog
    "ProfileProcessor", "apportion", "write_folded",
    "TimeSeriesProcessor", "write_csv",
    "WatchdogProcessor", "ObsWarning",
    # export
    "JsonlExporter", "PerfettoExporter", "event_to_dict",
    # capture
    "Capture", "CaptureSpec", "capture_scope", "current_capture",
]
