"""Cycle-attribution profiler (``repro.obs.prof``).

Answers the paper's central question — *where do the cycles go?* — by
attributing every simulated cycle of every walker context to a
``(DSA, routine state, X-Action category)`` triple, reconstructed
purely from the event stream:

* ``Miss`` / ``WalkerDispatch`` open a context and start an *exec*
  phase for the dispatched routine.
* ``WalkerYield`` closes the exec phase.  Its duration is apportioned
  across the five X-Action categories (:data:`ACTION_CATEGORIES`)
  proportionally to the per-category #Exe costs the controller
  publishes on the event, using integer largest-remainder rounding so
  the shares sum *exactly* to the phase length.  A routine that
  reported no costs books the whole phase as ``busy``.  The walker
  then enters a *wait* phase, classified ``dram_wait`` when the yield
  left DRAM fills outstanding and ``event_wait`` otherwise.
* ``WalkerWake`` closes the wait phase; any gap until the next
  dispatch books as ``sched_wait``.
* ``WalkerRetire`` closes the final phase and seals the context.

Phases tile the half-open interval ``[admission, retire)`` with no
gaps and no overlaps, which yields the **conservation invariant**: per
context, attributed cycles sum exactly to the retire event's
``lifetime``.  :attr:`ProfileProcessor.conservation_ok` checks it for
every retired context — a mismatch means the event stream itself is
inconsistent (lost or re-ordered events), so tests assert it.

Output is a folded-stacks mapping ``component;routine;kind -> cycles``
(one line per triple in flamegraph.pl format, see
:func:`write_folded`) plus a per-DSA breakdown consumed by
``repro.harness.report.cycles_breakdown_table``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, TextIO, Tuple, Union

from .events import (
    ACTION_CATEGORIES,
    Miss,
    Tag,
    WalkerDispatch,
    WalkerRetire,
    WalkerWake,
    WalkerYield,
)
from .processors import TypedEventProcessor

__all__ = [
    "ProfileProcessor",
    "apportion",
    "write_folded",
    "WAIT_KINDS",
]

#: Non-category cycle kinds a context can book time under.
WAIT_KINDS: Tuple[str, ...] = (
    "busy", "dram_wait", "event_wait", "sched_wait",
)

#: Column order for breakdown tables: action categories, then waits.
ALL_KINDS: Tuple[str, ...] = ACTION_CATEGORIES + WAIT_KINDS

_ADMIT = "admit"          # between Miss and the first dispatch
_EXEC = "exec"            # routine in the back-end pipeline
_WAIT = "wait"            # dormant, waiting on fills / internal events
_READY = "ready"          # woken (or computing, for thread walkers)


def apportion(duration: int, costs: Sequence[int]) -> List[int]:
    """Split ``duration`` cycles across categories ∝ ``costs``.

    Integer largest-remainder rounding: shares always sum exactly to
    ``duration``; ties break on category order, so the split is
    deterministic.  An empty or all-zero cost vector returns [].
    """
    total = sum(costs)
    if duration <= 0 or total <= 0:
        return []
    shares = [duration * c // total for c in costs]
    leftover = duration - sum(shares)
    if leftover:
        remainders = sorted(
            range(len(costs)),
            key=lambda i: (-(duration * costs[i] % total), i))
        for i in remainders[:leftover]:
            shares[i] += 1
    return shares


class _Context:
    """In-flight attribution state for one (component, tag) walk."""

    __slots__ = ("admitted", "mark", "phase", "routine",
                 "wait_kind", "attributed")

    def __init__(self, cycle: int) -> None:
        self.admitted = cycle
        self.mark = cycle              # start of the current phase
        self.phase = _ADMIT
        self.routine = ""              # last dispatched routine
        self.wait_kind = "event_wait"
        # (routine, kind) -> cycles
        self.attributed: Dict[Tuple[str, str], int] = {}

    def book(self, routine: str, kind: str, cycles: int) -> None:
        if cycles:
            key = (routine, kind)
            self.attributed[key] = self.attributed.get(key, 0) + cycles

    def total(self) -> int:
        return sum(self.attributed.values())


class ProfileProcessor(TypedEventProcessor):
    """Attributes walker-context cycles to (DSA, routine, category)."""

    def __init__(self) -> None:
        super().__init__()
        self._open: Dict[Tuple[str, Tag], _Context] = {}
        # (component, routine, kind) -> cycles, over retired contexts
        self.stacks: Dict[Tuple[str, str, str], int] = {}
        self.contexts_retired = 0
        self.cycles_attributed = 0
        # (component, tag, attributed, lifetime) for broken contexts
        self.mismatches: List[Tuple[str, Tag, int, int]] = []

    # -- event handlers ------------------------------------------------
    def on_miss(self, ev: Miss) -> None:
        self._open[(ev.component, ev.tag)] = _Context(ev.cycle)

    def on_walker_dispatch(self, ev: WalkerDispatch) -> None:
        ctx = self._open.get((ev.component, ev.tag))
        if ctx is None:
            # thread-style walkers are admitted at first dispatch
            ctx = self._open[(ev.component, ev.tag)] = _Context(ev.cycle)
        else:
            self._close_phase(ctx, ev.cycle)
        ctx.phase = _EXEC
        ctx.routine = ev.routine
        ctx.mark = ev.cycle

    def on_walker_yield(self, ev: WalkerYield) -> None:
        ctx = self._open.get((ev.component, ev.tag))
        if ctx is None:
            return
        self._close_phase(ctx, ev.cycle, ev.action_costs)
        ctx.phase = _WAIT
        ctx.wait_kind = "dram_wait" if ev.fills else "event_wait"
        ctx.mark = ev.cycle

    def on_walker_wake(self, ev: WalkerWake) -> None:
        ctx = self._open.get((ev.component, ev.tag))
        if ctx is None:
            return
        self._close_phase(ctx, ev.cycle)
        ctx.phase = _READY
        ctx.mark = ev.cycle

    def on_walker_retire(self, ev: WalkerRetire) -> None:
        key = (ev.component, ev.tag)
        ctx = self._open.pop(key, None)
        if ctx is None:
            return
        self._close_phase(ctx, ev.cycle, ev.action_costs)
        attributed = ctx.total()
        self.contexts_retired += 1
        self.cycles_attributed += attributed
        if attributed != ev.lifetime:
            self.mismatches.append(
                (ev.component, ev.tag, attributed, ev.lifetime))
        stacks = self.stacks
        for (routine, kind), cycles in ctx.attributed.items():
            skey = (ev.component, routine, kind)
            stacks[skey] = stacks.get(skey, 0) + cycles

    # -- phase accounting ----------------------------------------------
    def _close_phase(self, ctx: _Context, cycle: int,
                     costs: Sequence[int] = ()) -> None:
        duration = cycle - ctx.mark
        if duration <= 0:
            return
        phase = ctx.phase
        if phase == _EXEC:
            shares = apportion(duration, costs)
            if shares:
                for i, share in enumerate(shares):
                    ctx.book(ctx.routine, ACTION_CATEGORIES[i], share)
            else:
                ctx.book(ctx.routine, "busy", duration)
        elif phase == _WAIT:
            ctx.book(ctx.routine, ctx.wait_kind, duration)
        elif phase == _READY:
            # woken but not re-dispatched: thread walkers compute here
            ctx.book(ctx.routine, "busy", duration)
        else:  # _ADMIT: miss accepted, dispatch still pending
            ctx.book(ctx.routine or "admit", "sched_wait", duration)

    # -- invariants & reporting ----------------------------------------
    @property
    def conservation_ok(self) -> bool:
        """True iff every retired context's cycles summed exactly."""
        return not self.mismatches

    @property
    def contexts_open(self) -> int:
        return len(self._open)

    def merge(self, other: "ProfileProcessor") -> None:
        for key, cycles in other.stacks.items():
            self.stacks[key] = self.stacks.get(key, 0) + cycles
        self.contexts_retired += other.contexts_retired
        self.cycles_attributed += other.cycles_attributed
        self.mismatches.extend(other.mismatches)

    def folded_lines(self) -> List[str]:
        """``component;routine;kind cycles`` lines, sorted for diffing."""
        return [f"{comp};{routine};{kind} {cycles}"
                for (comp, routine, kind), cycles in sorted(
                    self.stacks.items())]

    def component_breakdown(self) -> Dict[str, Dict[str, int]]:
        """Per-DSA ``{kind: cycles}`` totals across all routines."""
        out: Dict[str, Dict[str, int]] = {}
        for (comp, _routine, kind), cycles in self.stacks.items():
            row = out.setdefault(comp, {})
            row[kind] = row.get(kind, 0) + cycles
        return out

    def summary(self) -> str:
        from repro.harness.report import cycles_breakdown_table

        status = ("conserved" if self.conservation_ok
                  else f"{len(self.mismatches)} MISMATCHED")
        lines = [
            "-- cycle attribution (repro.obs.prof) --",
            (f"contexts={self.contexts_retired} "
             f"cycles={self.cycles_attributed} "
             f"conservation={status}"),
        ]
        table = cycles_breakdown_table(self.component_breakdown())
        if table:
            lines.append(table)
        return "\n".join(lines)


def write_folded(target: Union[str, TextIO],
                 prof: ProfileProcessor) -> int:
    """Write folded stacks (flamegraph.pl input) to a path or stream.

    Returns the number of stack lines written.  ``flamegraph.pl
    cycles.folded > cycles.svg`` renders them directly.
    """
    lines = prof.folded_lines()
    text = "".join(line + "\n" for line in lines)
    if hasattr(target, "write"):
        target.write(text)
    else:
        with open(target, "w", encoding="utf-8") as fh:
            fh.write(text)
    return len(lines)
