"""Event processors: the consumers attached to an :class:`EventBus`.

* :class:`EventProcessor` — the base protocol (``handle`` + optional
  ``subscriptions``/``close``).
* :class:`TypedEventProcessor` — auto-dispatches to ``on_<event-name>``
  methods (``on_hit``, ``on_walker_retire``, ...) and subscribes only
  to the event types it actually handles.
* :class:`MetricsProcessor` — folds the event stream into the existing
  :class:`~repro.sim.stats.StatGroup` containers (counters plus
  load-to-use / miss-latency / DRAM-latency histograms with
  p50/p95/p99), mergeable across runs and workers via
  ``StatGroup.merge``.
* :class:`ProgressProcessor` — a low-frequency heartbeat for long runs.
* :class:`LegacyTraceProcessor` — the seed's ring-buffer
  :class:`~repro.sim.trace.Tracer` reimplemented as one bus subscriber,
  emitting byte-identical ``(cycle, component, kind, detail)`` tuples
  so golden-trace digests are unchanged.
* :class:`NullProcessor` — a no-op sink for overhead benchmarking.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, Tuple, Type

from repro.sim.stats import StatGroup

from .events import (
    EVENT_TYPES,
    Event,
    Fill,
    Hit,
    Merge,
    Miss,
    WalkerDispatch,
    WalkerRetire,
)

__all__ = [
    "EventProcessor",
    "TypedEventProcessor",
    "MetricsProcessor",
    "ProgressProcessor",
    "LegacyTraceProcessor",
    "NullProcessor",
    "summarize_metrics",
]


class EventProcessor:
    """Base class for bus subscribers."""

    def subscriptions(self) -> Optional[Tuple[Type[Event], ...]]:
        """Event classes to receive; ``None`` subscribes to everything."""
        return None

    def handle(self, event: Event) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush any buffered output (called by ``EventBus.close()``)."""


class NullProcessor(EventProcessor):
    """Receives everything, does nothing (overhead measurement)."""

    def handle(self, event: Event) -> None:
        pass


class TypedEventProcessor(EventProcessor):
    """Dispatches each event to an ``on_<event-name>`` method.

    Subclasses define handlers named after the event's wire name::

        class HitLogger(TypedEventProcessor):
            def on_hit(self, ev):
                print(ev.cycle, ev.tag)

    Only the event types with a matching handler are subscribed, so the
    bus never delivers events the processor would drop.
    """

    def __init__(self) -> None:
        dispatch: Dict[Type[Event], object] = {}
        for name, cls in EVENT_TYPES.items():
            method = getattr(self, f"on_{name}", None)
            if method is not None:
                dispatch[cls] = method
        self._dispatch = dispatch

    def subscriptions(self) -> Tuple[Type[Event], ...]:
        return tuple(self._dispatch)

    def handle(self, event: Event) -> None:
        method = self._dispatch.get(event.__class__)
        if method is not None:
            method(event)


class MetricsProcessor(TypedEventProcessor):
    """Folds the event stream into counters and latency histograms.

    The containers are the same :class:`~repro.sim.stats.StatGroup`
    machinery every component already uses, so per-run groups merge
    losslessly (``StatGroup.merge`` accumulates histogram buckets) —
    that is how ``--metrics-summary`` aggregates an experiment that
    builds many systems, and how parallel workers fold their runs.
    """

    def __init__(self, group: Optional[StatGroup] = None) -> None:
        super().__init__()
        self.stats = group if group is not None else StatGroup("obs")
        self._load_to_use = self.stats.histogram("load_to_use")
        self._miss_latency = self.stats.histogram("miss_latency")
        self._dram_latency = self.stats.histogram("dram_latency")

    # -- handlers ------------------------------------------------------
    def on_request_arrive(self, ev) -> None:
        self.stats.inc("requests")

    def on_hit(self, ev) -> None:
        if not ev.status:
            # nowalk miss: answered negatively without a walk
            self.stats.inc("nowalk_misses")
            return
        self.stats.inc("store_hits" if ev.store else "hits")
        self._load_to_use.add(ev.load_to_use)

    def on_miss(self, ev) -> None:
        self.stats.inc("misses")

    def on_merge(self, ev) -> None:
        self.stats.inc("merges")

    def on_walker_retire(self, ev) -> None:
        self.stats.inc("walks_completed")
        self._miss_latency.add(ev.lifetime)

    def on_fill(self, ev) -> None:
        self.stats.inc("fills")

    def on_dram_issue(self, ev) -> None:
        self.stats.inc("dram_writes" if ev.is_write else "dram_reads")
        self._dram_latency.add(ev.complete_at - ev.cycle)

    def on_evict(self, ev) -> None:
        self.stats.inc("evictions")

    def on_queue_stall(self, ev) -> None:
        self.stats.inc("stalls")

    # -- reporting -----------------------------------------------------
    def hit_rate(self) -> float:
        return _hit_rate(self.stats)

    def summary(self) -> str:
        return summarize_metrics(self.stats)


def _hit_rate(stats: StatGroup) -> float:
    hits = stats.get("hits") + stats.get("store_hits")
    total = hits + stats.get("misses")
    return hits / total if total else 0.0


def _hist_line(label: str, hist) -> str:
    if not hist.count:
        return f"{label}: (no samples)"
    return (f"{label}: mean={hist.mean:.1f} "
            f"p50={hist.percentile(0.50)} "
            f"p95={hist.percentile(0.95)} "
            f"p99={hist.percentile(0.99)} (n={hist.count})")


def summarize_metrics(stats: StatGroup) -> str:
    """Render one metrics StatGroup (possibly merged) as report text."""
    hits = stats.get("hits") + stats.get("store_hits")
    lines = [
        "-- metrics summary (repro.obs) --",
        (f"requests={stats.get('requests')} hits={hits} "
         f"misses={stats.get('misses')} merges={stats.get('merges')} "
         f"hit-rate={_hit_rate(stats):.4f}"),
        _hist_line("load-to-use", stats.histogram("load_to_use")),
        _hist_line("miss-latency", stats.histogram("miss_latency")),
        (f"dram: reads={stats.get('dram_reads')} "
         f"writes={stats.get('dram_writes')} fills={stats.get('fills')}; "
         + _hist_line("latency", stats.histogram("dram_latency"))),
    ]
    extras = []
    if stats.get("evictions"):
        extras.append(f"evictions={stats.get('evictions')}")
    if stats.get("stalls"):
        extras.append(f"stalls={stats.get('stalls')}")
    if extras:
        lines.append(" ".join(extras))
    return "\n".join(lines)


class ProgressProcessor(EventProcessor):
    """Writes a heartbeat line every ``interval`` events."""

    def __init__(self, interval: int = 100_000, stream=None) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.stream = stream if stream is not None else sys.stderr
        self.seen = 0

    def handle(self, event: Event) -> None:
        self.seen += 1
        if self.seen % self.interval == 0:
            self.stream.write(
                f"[obs] {self.seen} events, cycle {event.cycle}\n")

    def close(self) -> None:
        flush = getattr(self.stream, "flush", None)
        if flush is not None:
            flush()


class LegacyTraceProcessor(EventProcessor):
    """Feeds a ring-buffer :class:`~repro.sim.trace.Tracer` from the bus.

    Maps the typed events back onto the seed tracer's string kinds with
    the exact detail tuples the old inline ``tracer.emit`` calls built,
    so ``Tracer.digest()`` over a bridged run equals the seed's digest
    for the same simulation. Events with no legacy kind (wake, yield,
    DRAM, stalls, ...) are not subscribed and never reach the tracer.
    """

    def __init__(self, tracer) -> None:
        self.tracer = tracer

    def subscriptions(self) -> Tuple[Type[Event], ...]:
        return (Hit, Merge, Miss, WalkerDispatch, WalkerRetire, Fill)

    def handle(self, event: Event) -> None:
        emit = self.tracer.emit
        cls = event.__class__
        if cls is Hit:
            if not event.status:
                return  # nowalk miss: the seed tracer never emitted it
            if event.store:
                emit(event.cycle, event.component, "store_hit",
                     tag=event.tag)
            else:
                emit(event.cycle, event.component, "hit", tag=event.tag,
                     take=event.take)
        elif cls is Fill:
            emit(event.cycle, event.component, "fill", tag=event.tag,
                 addr=event.addr)
        elif cls is WalkerDispatch:
            emit(event.cycle, event.component, "dispatch", tag=event.tag,
                 routine=event.routine)
        elif cls is Miss:
            emit(event.cycle, event.component, "walk_start", tag=event.tag,
                 event=event.op)
        elif cls is WalkerRetire:
            emit(event.cycle, event.component, "retire", tag=event.tag,
                 found=event.found, lifetime=event.lifetime)
        elif cls is Merge:
            emit(event.cycle, event.component, "merge", tag=event.tag)
