"""Typed observability events (the `repro.obs` taxonomy).

Every architecturally meaningful milestone in a run — a request landing
at the controller, a meta-tag hit, a walker waking or retiring, a DRAM
transaction issuing or completing — has one frozen dataclass here.
Components publish instances on their :class:`~repro.obs.bus.EventBus`
behind a single ``bus is None`` check, so an un-observed run constructs
no event objects at all.

Design rules:

* Events are **frozen** (processors may fan one instance out to many
  subscribers; nobody may mutate it in flight) and carry only plain
  values (ints, strs, bools, tag tuples) so they serialize to JSON
  without translation.
* Every event stamps ``cycle`` (simulation time) and ``component`` (the
  publishing model element); subclass fields describe the milestone.
* ``Event.name`` is a stable snake_case wire name used by the JSONL
  exporter and by :class:`~repro.obs.processors.TypedEventProcessor`
  auto-dispatch (``on_<name>`` methods).
* **Causal IDs.** Request-path events carry a ``req_id`` (the MetaIO
  message uid) and walker/DRAM events carry a ``walk_id`` (a
  per-controller walk-episode sequence number), so downstream
  processors can rebuild the full request → miss/merge → walker →
  DRAM-fill → retire journey without guessing from tags (a tag can be
  walked twice; an episode id cannot). ``-1`` means "not correlated"
  (e.g. DRAM traffic that no walker owns).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar, Dict, Mapping, Tuple, Type

__all__ = [
    "Event",
    "RunStart",
    "RunEnd",
    "RequestArrive",
    "Hit",
    "Miss",
    "Merge",
    "WalkerDispatch",
    "WalkerWake",
    "WalkerYield",
    "WalkerRetire",
    "DRAMIssue",
    "DRAMComplete",
    "Fill",
    "Evict",
    "Reclaim",
    "QueueStall",
    "CacheModel",
    "CacheFill",
    "CacheEvict",
    "CacheAccess",
    "EVENT_TYPES",
    "ALL_EVENT_TYPES",
    "ACTION_CATEGORIES",
    "event_fields",
    "event_from_json",
]

Tag = Tuple[int, ...]

#: Canonical order of the paper's five X-Action categories (Figure 8).
#: ``WalkerYield.action_costs`` / ``WalkerRetire.action_costs`` tuples are
#: indexed by this order, so processors can attribute routine-execution
#: cycles to hardware modules without importing the core ISA.
ACTION_CATEGORIES: Tuple[str, ...] = (
    "agen", "queue", "meta", "control", "data",
)


@dataclass(frozen=True)
class Event:
    """Base of every observability event."""

    name: ClassVar[str] = "event"

    cycle: int
    component: str


@dataclass(frozen=True)
class RunStart(Event):
    """The simulation kernel entered ``run()``."""

    name: ClassVar[str] = "run_start"


@dataclass(frozen=True)
class RunEnd(Event):
    """The simulation kernel drained (or hit ``until``)."""

    name: ClassVar[str] = "run_end"

    events_executed: int = 0


@dataclass(frozen=True)
class RequestArrive(Event):
    """A MetaIO request entered the controller (or a walk was submitted)."""

    name: ClassVar[str] = "request_arrive"

    tag: Tag = ()
    op: str = "load"          # "load" | "store" | "walk"
    req_id: int = -1          # correlation id (MetaIO message uid)


@dataclass(frozen=True)
class Hit(Event):
    """A meta-tag hit served by the pipelined read port.

    ``status=0`` marks a *nowalk miss*: a lookup answered negatively by
    the front-end without admitting a walker (``nowalk``/``take``
    probes). It closes the request's journey through the same event so
    span assembly never leaks, but it is not a hit — metrics and the
    legacy trace bridge treat it separately.
    """

    name: ClassVar[str] = "hit"

    tag: Tag = ()
    store: bool = False       # store hit (insert-or-merge) vs load hit
    take: bool = False        # read-and-invalidate (GraphPulse pop)
    load_to_use: int = 0      # issue -> data-back, in cycles
    req_id: int = -1          # the request this hit answers
    status: int = 1           # 1 = served; 0 = nowalk miss (not found)


@dataclass(frozen=True)
class Miss(Event):
    """A true miss admitted a new walker (the legacy ``walk_start``)."""

    name: ClassVar[str] = "miss"

    tag: Tag = ()
    op: str = ""              # the triggering MetaIO event name
    req_id: int = -1          # the request whose miss started the walk
    walk_id: int = -1         # the admitted walk episode
    set_index: int = -1       # meta-tag set the miss mapped to


@dataclass(frozen=True)
class Merge(Event):
    """A request merged into an in-flight walker (active-bitmap hit)."""

    name: ClassVar[str] = "merge"

    tag: Tag = ()
    req_id: int = -1          # the merging request
    walk_id: int = -1         # the in-flight walk it joined


@dataclass(frozen=True)
class WalkerDispatch(Event):
    """A routine entered the back-end execution pipeline."""

    name: ClassVar[str] = "walker_dispatch"

    tag: Tag = ()
    routine: str = ""
    walk_id: int = -1


@dataclass(frozen=True)
class WalkerWake(Event):
    """A dormant walker resumed on a pending internal event.

    ``reason`` names what woke it (``"fill"`` or the internal MetaIO
    event). It is deliberately *not* called ``event``: a field of that
    name would collide with the wire-name key in the JSONL record and
    make the line unparseable on replay.
    """

    name: ClassVar[str] = "walker_wake"

    tag: Tag = ()
    reason: str = ""
    walk_id: int = -1


@dataclass(frozen=True)
class WalkerYield(Event):
    """A routine ran to completion and the walker went dormant."""

    name: ClassVar[str] = "walker_yield"

    tag: Tag = ()
    routine: str = ""
    action_costs: Tuple[int, ...] = ()   # per ACTION_CATEGORIES, this routine
    fills: int = 0                       # DRAM fills outstanding at yield
    walk_id: int = -1


@dataclass(frozen=True)
class WalkerRetire(Event):
    """A walker terminated (STATE done / deallocM) and freed its context.

    ``served`` lists the req_ids answered by this retire — the origin
    miss plus every merged waiter, minus stores replayed through MetaIO
    (their journeys continue into a later walk or hit).
    """

    name: ClassVar[str] = "walker_retire"

    tag: Tag = ()
    found: bool = False
    lifetime: int = 0         # admission -> retire, in cycles
    action_costs: Tuple[int, ...] = ()   # per ACTION_CATEGORIES, final routine
    walk_id: int = -1
    served: Tuple[int, ...] = ()         # req_ids completed at this retire


@dataclass(frozen=True)
class DRAMIssue(Event):
    """A block request entered the DRAM model."""

    name: ClassVar[str] = "dram_issue"

    addr: int = 0
    is_write: bool = False
    bank: int = 0
    row_result: str = ""      # "row_hits" | "row_misses" | "row_conflicts"
    complete_at: int = 0      # analytically known at issue time
    nbytes: int = 0           # transfer size (block_bytes)
    walk_id: int = -1         # owning walk episode (-1: unowned traffic)


@dataclass(frozen=True)
class DRAMComplete(Event):
    """A DRAM transaction's data crossed the bus."""

    name: ClassVar[str] = "dram_complete"

    addr: int = 0
    latency: int = 0
    walk_id: int = -1


@dataclass(frozen=True)
class Fill(Event):
    """A DRAM fill was delivered back to a waiting walker."""

    name: ClassVar[str] = "fill"

    tag: Tag = ()
    addr: int = 0
    nbytes: int = 0
    walk_id: int = -1


@dataclass(frozen=True)
class Evict(Event):
    """A servable entry was evicted to free data-RAM sectors."""

    name: ClassVar[str] = "evict"

    tag: Tag = ()
    sectors: int = 0


@dataclass(frozen=True)
class Reclaim(Event):
    """A walker asked the controller to reclaim sector capacity."""

    name: ClassVar[str] = "reclaim"

    nsectors: int = 0


@dataclass(frozen=True)
class QueueStall(Event):
    """The front-end could not admit a dispatchable miss this cycle."""

    name: ClassVar[str] = "queue_stall"

    tag: Tag = ()
    reason: str = ""          # "no_context" | "set_conflict"
    req_id: int = -1          # the request that could not be admitted


@dataclass(frozen=True)
class CacheModel(Event):
    """A cache announced its geometry (lazy, once per armed component).

    Published immediately before a component's first cache-contents
    event (:class:`CacheFill` / :class:`CacheEvict` /
    :class:`CacheAccess`), so shadow-cache processors
    (:mod:`repro.obs.cachelens`) can size their structures without an
    attach-order handshake. ``kind`` distinguishes the meta-tag array
    ("meta") from a conventional address-tagged cache ("addr");
    ``tag_class`` names the tag schema (joined tag fields, or "addr")
    so reuse-distance histograms group comparable tags.
    """

    name: ClassVar[str] = "cache_model"

    kind: str = "meta"        # "meta" | "addr"
    ways: int = 0
    sets: int = 0
    block_bytes: int = 0      # 0 for the meta-tag array (decoupled data)
    tag_class: str = ""       # e.g. "key" | "row,col" | "addr"


@dataclass(frozen=True)
class CacheFill(Event):
    """A cache installed a tag into a (set, way) slot.

    Published by ``MetaTagArray.allocate`` (ALLOCM and experiment
    warm-up alike) and ``AddressCache._install``. For address caches
    the tag tuple is ``(block_address,)``.
    """

    name: ClassVar[str] = "cache_fill"

    tag: Tag = ()
    set_index: int = -1
    way: int = -1


@dataclass(frozen=True)
class CacheEvict(Event):
    """A cache removed a tag from a (set, way) slot.

    ``reason`` separates replacement pressure from program intent:
    "conflict" (meta-tag LRU victim on allocate), "replace" (address
    cache LRU victim), "dealloc" (DEALLOCM / take-invalidate /
    capacity reclaim — the program removed it on purpose).
    """

    name: ClassVar[str] = "cache_evict"

    tag: Tag = ()
    set_index: int = -1
    way: int = -1
    reason: str = ""          # "conflict" | "replace" | "dealloc"


@dataclass(frozen=True)
class CacheAccess(Event):
    """One timed access to an address-tagged cache.

    The meta-tag access stream already exists as :class:`Hit` /
    :class:`Miss` / :class:`Merge`; this event gives the conventional
    :class:`~repro.mem.addrcache.AddressCache` an equivalent stream
    (it publishes nothing else on its hot path). ``outcome`` is one of
    "hit", "miss" (primary miss), "merge" (MSHR merge), "mshr_stall".
    """

    name: ClassVar[str] = "cache_access"

    tag: Tag = ()             # (block_address,)
    set_index: int = -1
    outcome: str = ""
    is_write: bool = False


ALL_EVENT_TYPES: Tuple[Type[Event], ...] = (
    RunStart, RunEnd, RequestArrive, Hit, Miss, Merge,
    WalkerDispatch, WalkerWake, WalkerYield, WalkerRetire,
    DRAMIssue, DRAMComplete, Fill, Evict, Reclaim, QueueStall,
    CacheModel, CacheFill, CacheEvict, CacheAccess,
)

#: wire-name -> event class (drives TypedEventProcessor auto-dispatch)
EVENT_TYPES: Dict[str, Type[Event]] = {
    cls.name: cls for cls in ALL_EVENT_TYPES
}

_FIELD_CACHE: Dict[Type[Event], Tuple[str, ...]] = {}


def event_fields(cls: Type[Event]) -> Tuple[str, ...]:
    """Field names of an event class, cached (exporter hot path)."""
    cached = _FIELD_CACHE.get(cls)
    if cached is None:
        cached = tuple(f.name for f in fields(cls))
        _FIELD_CACHE[cls] = cached
    return cached


def event_from_json(record: Mapping[str, Any]) -> Event:
    """Rebuild a typed event from one JSONL record (inverse of
    :func:`~repro.obs.export.event_to_dict`).

    ``record["event"]`` selects the class via :data:`EVENT_TYPES`;
    JSON lists come back as the tuples the frozen dataclasses expect
    (``tag``, ``action_costs``, ``served``). Keys the class does not
    declare (e.g. the capture layer's ``run`` stamp) are ignored, and
    absent keys fall back to the field defaults, so records written by
    older taxonomies still load.

    Raises ``KeyError`` on an unknown wire name — the caller decides
    whether to skip or abort.
    """
    cls = EVENT_TYPES[record["event"]]
    kwargs: Dict[str, Any] = {}
    for name in event_fields(cls):
        if name not in record:
            continue
        value = record[name]
        if isinstance(value, list):
            value = tuple(value)
        kwargs[name] = value
    return cls(**kwargs)
