"""Harness-level capture: observe every system an experiment builds.

``python -m repro.harness fig07 --events t.jsonl --perfetto t.json
--metrics-summary`` needs to attach processors to systems constructed
deep inside experiment drivers. The drivers don't take a bus argument —
instead :class:`~repro.core.xcache.XCacheSystem` checks the *current
capture* at construction (one module-global lookup, ``None`` on every
un-observed run) and self-registers.

:class:`CaptureSpec` is the picklable request (paths + flags) that the
parallel harness ships to worker processes; :class:`Capture` is the live
per-process state (open files, per-system processors, merged metrics).
Output paths are namespaced per experiment (``t.jsonl`` →
``t.fig07.jsonl``) so a multi-experiment or ``--parallel`` run never has
two writers on one file.

Beyond raw export, a capture can arm the cycle-attribution profiler
(``prof_path`` → folded stacks + a per-DSA breakdown appended to the
report), windowed time-series sampling (``timeseries_path`` → CSV with
one ``run`` column per observed system), per-request span assembly and
critical-path blame (``spans``/``spans_path``/``explain_top`` → the
why-slow table in the report, the K slowest requests drilled down, and
the SLO-gate summary JSON), and the pathology watchdog (``watchdog`` →
livelock / MSHR-saturation / starvation warnings in the report).
"""

from __future__ import annotations

import json
import pathlib
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import IO, Dict, Iterator, List, Optional

from repro.sim.stats import StatGroup

from .cachelens import CacheLensProcessor, merge_summaries, why_miss_report
from .critpath import CritPathAggregator
from .export import JsonlExporter, PerfettoExporter
from .processors import MetricsProcessor, summarize_metrics
from .prof import ProfileProcessor, write_folded
from .spans import SpanAssembler
from .timeseries import TimeSeriesProcessor, write_csv, write_heatmap_csv
from .watchdog import WatchdogProcessor

__all__ = ["CaptureSpec", "Capture", "capture_scope", "current_capture",
           "use_capture"]


def _with_exp_id(path: str, exp_id: str) -> str:
    p = pathlib.Path(path)
    return str(p.with_name(f"{p.stem}.{exp_id}{p.suffix or ''}"))


@dataclass(frozen=True)
class CaptureSpec:
    """What to capture (picklable; crosses process boundaries)."""

    events_path: Optional[str] = None
    perfetto_path: Optional[str] = None
    metrics: bool = False
    prof_path: Optional[str] = None
    timeseries_path: Optional[str] = None
    timeseries_window: int = 1000
    spans: bool = False                   # span assembly, report-only
    spans_path: Optional[str] = None      # SLO summary JSON (implies spans)
    explain_top: int = 0                  # drill down K slowest (implies spans)
    watchdog: bool = False                # pathology warnings in the report
    misses: bool = False                  # miss taxonomy + why-miss table
    heatmap_path: Optional[str] = None    # per-set heatmap CSV (implies misses)
    heatmap_window: int = 1000            # heatmap window, cycles
    reuse_sample: int = 8                 # Mattson scan every Nth access
                                          # (DEFAULT_REUSE_SAMPLE; 1 = exact)
    job_scoped: bool = False              # service applies for_job() paths
    exp_id: Optional[str] = None          # set by for_experiment()

    @property
    def wants_spans(self) -> bool:
        return bool(self.spans or self.spans_path or self.explain_top)

    @property
    def wants_misses(self) -> bool:
        return bool(self.misses or self.heatmap_path)

    @property
    def active(self) -> bool:
        return bool(self.events_path or self.perfetto_path or self.metrics
                    or self.prof_path or self.timeseries_path
                    or self.wants_spans or self.watchdog
                    or self.wants_misses)

    def for_experiment(self, exp_id: str) -> "CaptureSpec":
        """Namespace the output paths for one experiment run.

        Idempotent: a spec already scoped (``exp_id`` set) is returned
        unchanged, so accidentally scoping twice cannot produce
        double-suffixed paths (``t.fig04.fig04.jsonl``).
        """
        if self.exp_id is not None:
            return self

        def scoped(path: Optional[str]) -> Optional[str]:
            return _with_exp_id(path, exp_id) if path else None

        return replace(
            self,
            events_path=scoped(self.events_path),
            perfetto_path=scoped(self.perfetto_path),
            prof_path=scoped(self.prof_path),
            timeseries_path=scoped(self.timeseries_path),
            spans_path=scoped(self.spans_path),
            heatmap_path=scoped(self.heatmap_path),
            exp_id=exp_id,
        )

    def for_job(self, job_id: int) -> "CaptureSpec":
        """Namespace the output paths for one service job.

        Applied worker-side *before* :meth:`for_experiment`, so a
        service sweep that captures gets per-job files (``t.jsonl`` →
        ``t.job3.jsonl`` → ``t.job3.fig04.jsonl``) the run ledger can
        point ``repro.obs.explain`` at. Job scoping leaves ``exp_id``
        unset, so experiment scoping still applies afterwards.

        Only specs with ``job_scoped=True`` get this treatment (the
        ``repro.svc`` CLI sets it); the parallel harness rides the same
        pool but keeps its documented per-experiment-only paths
        (``p.jsonl`` → ``p.fig04.jsonl``).
        """
        tag = f"job{job_id}"

        def scoped(path: Optional[str]) -> Optional[str]:
            return _with_exp_id(path, tag) if path else None

        return replace(
            self,
            events_path=scoped(self.events_path),
            perfetto_path=scoped(self.perfetto_path),
            prof_path=scoped(self.prof_path),
            timeseries_path=scoped(self.timeseries_path),
            spans_path=scoped(self.spans_path),
            heatmap_path=scoped(self.heatmap_path),
        )

    def output_paths(self) -> Dict[str, str]:
        """The non-None output paths by kind (what the run ledger
        records so ``explain --ledger`` can find a job's events)."""
        paths = {
            "events": self.events_path,
            "perfetto": self.perfetto_path,
            "prof": self.prof_path,
            "timeseries": self.timeseries_path,
            "spans": self.spans_path,
            "heatmap": self.heatmap_path,
        }
        return {k: v for k, v in paths.items() if v}


class Capture:
    """Live capture state for one experiment in one process.

    ``on_attach`` is an optional ``(system, run_index)`` callback fired
    for every system that self-registers — the hook the service worker
    uses to add its own processors (progress streaming, the health
    watchdog) to systems built deep inside experiment drivers, without
    widening :class:`CaptureSpec`, which must stay picklable.
    """

    def __init__(self, spec: CaptureSpec, on_attach=None) -> None:
        self.spec = spec
        self.on_attach = on_attach
        self.systems_observed = 0
        self._events_stream: Optional[IO[str]] = None
        self._perfetto: Optional[PerfettoExporter] = None
        self._metrics: List[MetricsProcessor] = []
        self._profiles: List[ProfileProcessor] = []
        self._timeseries: List[TimeSeriesProcessor] = []
        self._assemblers: List[SpanAssembler] = []
        self._critpaths: List[CritPathAggregator] = []
        self._watchdogs: List[WatchdogProcessor] = []
        self._lenses: List[CacheLensProcessor] = []
        self._closed = False
        self.summary_text: Optional[str] = None
        if spec.perfetto_path:
            self._perfetto = PerfettoExporter(spec.perfetto_path)

    # ------------------------------------------------------------------
    # system registration (called from XCacheSystem.__init__)
    # ------------------------------------------------------------------
    def attach_system(self, system) -> None:
        """Arm a freshly built system's bus with this capture's sinks."""
        run = self.systems_observed
        self.systems_observed += 1
        bus = system.ensure_bus()
        if self.spec.events_path:
            if self._events_stream is None:
                self._events_stream = open(self.spec.events_path, "w")
            bus.attach(JsonlExporter(self._events_stream,
                                     extra={"run": run}))
        if self._perfetto is not None:
            self._perfetto.new_run()
            bus.attach(self._perfetto)
        if self.spec.metrics:
            self._metrics.append(bus.attach(MetricsProcessor()))
        if self.spec.prof_path:
            self._profiles.append(bus.attach(ProfileProcessor()))
        if self.spec.timeseries_path:
            self._timeseries.append(bus.attach(
                TimeSeriesProcessor(self.spec.timeseries_window)))
        if self.spec.wants_spans:
            agg = CritPathAggregator(top_k=max(self.spec.explain_top, 1),
                                     verify=True)
            self._critpaths.append(agg)
            self._assemblers.append(bus.attach(
                SpanAssembler(sink=agg.add, max_kept=0)))
        if self.spec.watchdog:
            self._watchdogs.append(bus.attach(WatchdogProcessor()))
        if self.spec.wants_misses:
            self._lenses.append(bus.attach(CacheLensProcessor(
                reuse_sample=self.spec.reuse_sample,
                heatmap_window=self.spec.heatmap_window)))
        if self.on_attach is not None:
            self.on_attach(system, run)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def profiles(self) -> List[ProfileProcessor]:
        return list(self._profiles)

    @property
    def timeseries(self) -> List[TimeSeriesProcessor]:
        return list(self._timeseries)

    def merged_metrics(self) -> StatGroup:
        merged = StatGroup("obs-merged")
        for proc in self._metrics:
            merged.merge(proc.stats)
        return merged

    def merged_profile(self) -> ProfileProcessor:
        merged = ProfileProcessor()
        for proc in self._profiles:
            merged.merge(proc)
        return merged

    def merged_critpath(self) -> CritPathAggregator:
        merged = CritPathAggregator(top_k=max(self.spec.explain_top, 1),
                                    verify=True)
        for agg in self._critpaths:
            merged.merge(agg)
        return merged

    @property
    def lenses(self) -> List[CacheLensProcessor]:
        return list(self._lenses)

    def merged_cachelens(self) -> Dict[str, Dict[str, object]]:
        """Per-cache why-miss summary folded across observed systems
        (counter sums — order-independent under ``--parallel``)."""
        return merge_summaries(lens.summary() for lens in self._lenses)

    def merged_conflict_sets(self) -> Dict[str, Dict[int, int]]:
        merged: Dict[str, Dict[int, int]] = {}
        for lens in self._lenses:
            for name, counts in lens.conflict_sets_by_cache().items():
                slot = merged.setdefault(name, {})
                for set_index, count in counts.items():
                    slot[set_index] = slot.get(set_index, 0) + count
        return merged

    @property
    def spans_dropped(self) -> int:
        return sum(asm.dropped for asm in self._assemblers)

    @property
    def watchdog_warnings(self) -> List:
        return [w for dog in self._watchdogs for w in dog.warnings]

    # ------------------------------------------------------------------
    # finalization
    # ------------------------------------------------------------------
    def finish(self) -> Optional[str]:
        """Close outputs; returns the report text (if any was asked)."""
        if self._closed:
            return self.summary_text
        self._closed = True
        if self._perfetto is not None:
            self._perfetto.close()
        if self._events_stream is not None:
            self._events_stream.close()
            self._events_stream = None
        pieces: List[str] = []
        if self.spec.metrics:
            pieces.append(summarize_metrics(self.merged_metrics()))
        if self.spec.prof_path:
            merged = self.merged_profile()
            write_folded(self.spec.prof_path, merged)
            pieces.append(merged.summary())
        if self.spec.timeseries_path:
            write_csv(self.spec.timeseries_path,
                      [(i, proc) for i, proc in enumerate(self._timeseries)])
        lens_summary = (self.merged_cachelens()
                        if self.spec.wants_misses else None)
        if self.spec.wants_spans:
            from .explain import explain_report, slo_summary

            merged = self.merged_critpath()
            if self.spec.spans_path:
                suite = self.spec.exp_id or "run"
                doc = slo_summary(merged, suite)
                if lens_summary:
                    # fold cache-contents health into the SLO document
                    # so obs.regress --slo can budget hit-rate and
                    # conflict share next to latency percentiles
                    for name, comp in doc["components"].items():
                        entry = lens_summary.get(name)
                        if entry is not None:
                            comp["hit_rate"] = entry["hit_rate"]
                            comp["conflict_share"] = (
                                entry["conflict_share"])
                with open(self.spec.spans_path, "w",
                          encoding="utf-8") as fh:
                    json.dump(doc, fh, indent=1, sort_keys=True)
                    fh.write("\n")
            pieces.append(explain_report(merged,
                                         dropped=self.spans_dropped,
                                         top=self.spec.explain_top))
        if lens_summary is not None:
            if self.spec.heatmap_path:
                write_heatmap_csv(
                    self.spec.heatmap_path,
                    [(i, lens.heat_rows())
                     for i, lens in enumerate(self._lenses)])
            pieces.append(why_miss_report(lens_summary,
                                          self.merged_conflict_sets()))
        if self._watchdogs:
            warnings = self.watchdog_warnings
            lines = ["-- watchdog (repro.obs.watchdog) --",
                     f"warnings={len(warnings)}"]
            lines.extend(
                f"  [{w.kind}] @{w.cycle} {w.component}: {w.detail}"
                for w in warnings)
            pieces.append("\n".join(lines))
        if pieces:
            self.summary_text = "\n".join(pieces)
        return self.summary_text


_current: Optional[Capture] = None


def current_capture() -> Optional[Capture]:
    """The capture systems should self-register with (None = off)."""
    return _current


@contextmanager
def use_capture(capture: Capture) -> Iterator[Capture]:
    """Install an already-built :class:`Capture` for the enclosed run.

    Unlike :func:`capture_scope` this installs unconditionally — even a
    capture whose spec exports nothing still arms every system's bus and
    fires ``on_attach``, which is how the service worker observes runs
    that asked for streaming/health but no file exports. The caller owns
    ``capture.finish()``.
    """
    global _current
    previous = _current
    _current = capture
    try:
        yield capture
    finally:
        _current = previous


@contextmanager
def capture_scope(spec: Optional[CaptureSpec]) -> Iterator[Optional[Capture]]:
    """Install ``spec`` as the current capture for the enclosed run."""
    if spec is None or not spec.active:
        yield None
        return
    capture = Capture(spec)
    try:
        with use_capture(capture):
            yield capture
    finally:
        capture.finish()
