"""Harness-level capture: observe every system an experiment builds.

``python -m repro.harness fig07 --events t.jsonl --perfetto t.json
--metrics-summary`` needs to attach processors to systems constructed
deep inside experiment drivers. The drivers don't take a bus argument —
instead :class:`~repro.core.xcache.XCacheSystem` checks the *current
capture* at construction (one module-global lookup, ``None`` on every
un-observed run) and self-registers.

:class:`CaptureSpec` is the picklable request (paths + flags) that the
parallel harness ships to worker processes; :class:`Capture` is the live
per-process state (open files, per-system processors, merged metrics).
Output paths are namespaced per experiment (``t.jsonl`` →
``t.fig07.jsonl``) so a multi-experiment or ``--parallel`` run never has
two writers on one file.
"""

from __future__ import annotations

import pathlib
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import IO, Iterator, List, Optional

from repro.sim.stats import StatGroup

from .export import JsonlExporter, PerfettoExporter
from .processors import MetricsProcessor, summarize_metrics

__all__ = ["CaptureSpec", "Capture", "capture_scope", "current_capture"]


def _with_exp_id(path: str, exp_id: str) -> str:
    p = pathlib.Path(path)
    return str(p.with_name(f"{p.stem}.{exp_id}{p.suffix or ''}"))


@dataclass(frozen=True)
class CaptureSpec:
    """What to capture (picklable; crosses process boundaries)."""

    events_path: Optional[str] = None
    perfetto_path: Optional[str] = None
    metrics: bool = False

    @property
    def active(self) -> bool:
        return bool(self.events_path or self.perfetto_path or self.metrics)

    def for_experiment(self, exp_id: str) -> "CaptureSpec":
        """Namespace the output paths for one experiment run."""
        return replace(
            self,
            events_path=(_with_exp_id(self.events_path, exp_id)
                         if self.events_path else None),
            perfetto_path=(_with_exp_id(self.perfetto_path, exp_id)
                           if self.perfetto_path else None),
        )


class Capture:
    """Live capture state for one experiment in one process."""

    def __init__(self, spec: CaptureSpec) -> None:
        self.spec = spec
        self.systems_observed = 0
        self._events_stream: Optional[IO[str]] = None
        self._perfetto: Optional[PerfettoExporter] = None
        self._metrics: List[MetricsProcessor] = []
        self._closed = False
        self.summary_text: Optional[str] = None
        if spec.perfetto_path:
            self._perfetto = PerfettoExporter(spec.perfetto_path)

    # ------------------------------------------------------------------
    # system registration (called from XCacheSystem.__init__)
    # ------------------------------------------------------------------
    def attach_system(self, system) -> None:
        """Arm a freshly built system's bus with this capture's sinks."""
        run = self.systems_observed
        self.systems_observed += 1
        bus = system.ensure_bus()
        if self.spec.events_path:
            if self._events_stream is None:
                self._events_stream = open(self.spec.events_path, "w")
            bus.attach(JsonlExporter(self._events_stream,
                                     extra={"run": run}))
        if self._perfetto is not None:
            self._perfetto.new_run()
            bus.attach(self._perfetto)
        if self.spec.metrics:
            self._metrics.append(bus.attach(MetricsProcessor()))

    # ------------------------------------------------------------------
    # finalization
    # ------------------------------------------------------------------
    def merged_metrics(self) -> StatGroup:
        merged = StatGroup("obs-merged")
        for proc in self._metrics:
            merged.merge(proc.stats)
        return merged

    def finish(self) -> Optional[str]:
        """Close outputs; returns the metrics summary text (if asked)."""
        if self._closed:
            return self.summary_text
        self._closed = True
        if self._perfetto is not None:
            self._perfetto.close()
        if self._events_stream is not None:
            self._events_stream.close()
            self._events_stream = None
        if self.spec.metrics:
            self.summary_text = summarize_metrics(self.merged_metrics())
        return self.summary_text


_current: Optional[Capture] = None


def current_capture() -> Optional[Capture]:
    """The capture systems should self-register with (None = off)."""
    return _current


@contextmanager
def capture_scope(spec: Optional[CaptureSpec]) -> Iterator[Optional[Capture]]:
    """Install ``spec`` as the current capture for the enclosed run."""
    global _current
    if spec is None or not spec.active:
        yield None
        return
    previous = _current
    capture = Capture(spec)
    _current = capture
    try:
        yield capture
    finally:
        _current = previous
        capture.finish()
