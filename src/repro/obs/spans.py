"""Per-request span trees (``repro.obs.spans``).

Rebuilds each request's *causal journey* from the typed event stream,
using the correlation ids the components stamp (``req_id`` on
request-path events, ``walk_id`` on walker/DRAM events):

* ``RequestArrive`` opens a :class:`RequestSpan`.
* ``Hit`` closes it immediately (a served hit, or a ``status=0``
  nowalk miss answered by the front-end).
* ``Miss`` / ``Merge`` attach the request to a walk episode — the
  origin request admits the walker, merged requests join it mid-flight.
  N merged requests share *one* :class:`WalkSpan` subtree.
* ``WalkerDispatch`` / ``WalkerYield`` / ``WalkerWake`` build the
  walk's phase timeline (the same state machine as
  :class:`~repro.obs.prof.ProfileProcessor`, but keeping the intervals
  instead of folding them): phases tile ``[admitted, retired)`` with no
  gaps or overlaps.
* ``DRAMIssue`` / ``Fill`` hang DRAM child spans off the owning walk.
* ``WalkerRetire`` seals the walk and closes every request in its
  ``served`` list.  Requests riding the walk but *not* served (stores
  replayed through MetaIO) stay open — their journey continues into a
  later walk or hit under the same ``req_id``.

Memory is bounded: completed spans stream to an optional ``sink``
callback (the critical-path aggregator), and at most ``max_kept`` are
retained on the assembler itself; anything past the cap increments
``dropped`` instead of growing the list.  Open-state dicts are bounded
by the number of in-flight requests/walkers by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .processors import TypedEventProcessor

__all__ = [
    "PHASE_KINDS",
    "DRAMSpan",
    "WalkPhase",
    "WalkSpan",
    "EpisodeRef",
    "RequestSpan",
    "SpanAssembler",
]

Tag = Tuple[int, ...]

#: Walk phase kinds, as recorded on :class:`WalkPhase`.
PHASE_KINDS: Tuple[str, ...] = (
    "sched_wait", "exec", "dram_wait", "event_wait",
)

# internal phase-machine states (mirrors repro.obs.prof)
_ADMIT = "admit"
_EXEC = "exec"
_WAIT = "wait"
_READY = "ready"


@dataclass
class DRAMSpan:
    """One DRAM transaction owned by a walk."""

    issue: int
    complete: int
    addr: int
    is_write: bool = False
    row_result: str = ""


@dataclass
class WalkPhase:
    """One contiguous walk interval ``[start, end)`` of a single kind."""

    start: int
    end: int
    kind: str            # one of PHASE_KINDS

    @property
    def cycles(self) -> int:
        return self.end - self.start


@dataclass
class WalkSpan:
    """One walker episode: admission (Miss) to retire."""

    walk_id: int
    component: str
    tag: Tag
    admitted: int
    retired: int = -1                 # -1 while in flight
    found: bool = False
    phases: List[WalkPhase] = field(default_factory=list)
    dram: List[DRAMSpan] = field(default_factory=list)
    fills: int = 0
    routines: int = 0
    served: Tuple[int, ...] = ()
    riders: List[int] = field(default_factory=list)
    # phase-machine state (only meaningful while retired < 0)
    _phase: str = _ADMIT
    _mark: int = 0
    _wait_dram: bool = False

    @property
    def lifetime(self) -> int:
        return (self.retired if self.retired >= 0 else self._mark) \
            - self.admitted

    def phase_cycles(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for ph in self.phases:
            out[ph.kind] = out.get(ph.kind, 0) + ph.cycles
        return out

    # -- phase machine -------------------------------------------------
    def _close_phase(self, cycle: int, kind: str) -> None:
        if cycle > self._mark:
            self.phases.append(WalkPhase(self._mark, cycle, kind))
        self._mark = cycle

    def _transition(self, cycle: int, to_state: str,
                    dram_wait: bool = False) -> None:
        state = self._phase
        if state == _EXEC:
            self._close_phase(cycle, "exec")
        elif state == _WAIT:
            self._close_phase(cycle,
                              "dram_wait" if self._wait_dram else "event_wait")
        else:   # _ADMIT or _READY: waiting on the front-end scheduler
            self._close_phase(cycle, "sched_wait")
        self._phase = to_state
        if to_state == _WAIT:
            self._wait_dram = dram_wait


@dataclass
class EpisodeRef:
    """A request's stint riding one walk."""

    walk: WalkSpan
    join: int                 # Miss/Merge cycle
    role: str                 # "origin" | "merge"
    left: int = -1            # retire cycle of the walk (-1: still riding)


@dataclass
class RequestSpan:
    """One request's full journey, arrival to completion."""

    req_id: int
    component: str
    tag: Tag
    op: str
    arrive: int
    close: int = -1           # cycle of the closing event (-1: open)
    done: int = -1            # data-back cycle (= close + hit tail for hits)
    outcome: str = ""         # "hit" | "nowalk" | "walk"
    load_to_use: int = 0      # hits only: issue -> data-back
    stall_cycles: int = 0     # QueueStall events seen for this request
    episodes: List[EpisodeRef] = field(default_factory=list)

    @property
    def latency(self) -> int:
        """Arrival to data-back, in cycles (-1 while open)."""
        return self.done - self.arrive if self.done >= 0 else -1


class SpanAssembler(TypedEventProcessor):
    """Builds request span trees online from a live (or replayed) bus.

    ``sink`` (if given) receives every completed :class:`RequestSpan`
    exactly once, at close time.  Independently, up to ``max_kept``
    completed spans are retained on :attr:`completed`; the rest only
    bump :attr:`dropped` (the spans still reach the sink — retention
    and streaming are separate concerns).  ``max_kept=0`` disables
    retention entirely (stream-only: nothing kept, nothing counted
    dropped).

    ``namespace`` prefixes component names (the trace-replay CLI uses
    ``run{n}/`` to keep multi-system JSONL files separable, matching
    the Perfetto exporter's convention).
    """

    def __init__(self,
                 sink: Optional[Callable[[RequestSpan], None]] = None,
                 max_kept: int = 1000,
                 namespace: str = "") -> None:
        super().__init__()
        if max_kept < 0:
            raise ValueError("max_kept must be >= 0")
        self.sink = sink
        self.max_kept = max_kept
        self.namespace = namespace
        self._requests: Dict[int, RequestSpan] = {}
        self._walks: Dict[int, WalkSpan] = {}
        self.completed: List[RequestSpan] = []
        self.requests_completed = 0
        self.walks_closed = 0
        self.dropped = 0

    # -- bookkeeping ---------------------------------------------------
    def _name(self, component: str) -> str:
        return self.namespace + component

    def _complete(self, span: RequestSpan) -> None:
        self.requests_completed += 1
        if self.sink is not None:
            self.sink(span)
        if self.max_kept:
            # retention is separate from streaming: a span past the cap
            # still reached the sink, it just isn't kept here
            if len(self.completed) < self.max_kept:
                self.completed.append(span)
            else:
                self.dropped += 1

    @property
    def requests_open(self) -> int:
        return len(self._requests)

    @property
    def walks_open(self) -> int:
        return len(self._walks)

    # -- request-path handlers -----------------------------------------
    def on_request_arrive(self, ev) -> None:
        if ev.req_id < 0:
            return
        self._requests[ev.req_id] = RequestSpan(
            req_id=ev.req_id, component=self._name(ev.component),
            tag=ev.tag, op=ev.op, arrive=ev.cycle)

    def on_queue_stall(self, ev) -> None:
        span = self._requests.get(ev.req_id)
        if span is not None:
            span.stall_cycles += 1

    def on_hit(self, ev) -> None:
        span = self._requests.pop(ev.req_id, None)
        if span is None:
            return
        span.outcome = "hit" if ev.status else "nowalk"
        span.load_to_use = ev.load_to_use
        span.close = ev.cycle
        span.done = span.arrive + ev.load_to_use
        self._complete(span)

    # -- walk-path handlers --------------------------------------------
    def on_miss(self, ev) -> None:
        if ev.walk_id < 0:
            return
        walk = WalkSpan(walk_id=ev.walk_id,
                        component=self._name(ev.component),
                        tag=ev.tag, admitted=ev.cycle, _mark=ev.cycle)
        self._walks[ev.walk_id] = walk
        self._join(ev.req_id, walk, ev.cycle, "origin")

    def on_merge(self, ev) -> None:
        walk = self._walks.get(ev.walk_id)
        if walk is not None:
            self._join(ev.req_id, walk, ev.cycle, "merge")

    def _join(self, req_id: int, walk: WalkSpan, cycle: int,
              role: str) -> None:
        walk.riders.append(req_id)
        span = self._requests.get(req_id)
        if span is not None:
            span.episodes.append(EpisodeRef(walk=walk, join=cycle,
                                            role=role))

    def on_walker_dispatch(self, ev) -> None:
        walk = self._walks.get(ev.walk_id)
        if walk is None:
            return
        walk.routines += 1
        walk._transition(ev.cycle, _EXEC)

    def on_walker_yield(self, ev) -> None:
        walk = self._walks.get(ev.walk_id)
        if walk is not None:
            walk._transition(ev.cycle, _WAIT, dram_wait=bool(ev.fills))

    def on_walker_wake(self, ev) -> None:
        walk = self._walks.get(ev.walk_id)
        if walk is not None:
            walk._transition(ev.cycle, _READY)

    def on_walker_retire(self, ev) -> None:
        walk = self._walks.pop(ev.walk_id, None)
        if walk is None:
            return
        walk._transition(ev.cycle, _ADMIT)   # close the final phase
        walk.retired = ev.cycle
        walk.found = ev.found
        walk.served = ev.served
        self.walks_closed += 1
        served = set(ev.served)
        for rid in walk.riders:
            span = self._requests.get(rid)
            if span is None:
                continue
            for ep in reversed(span.episodes):
                if ep.walk is walk:
                    ep.left = ev.cycle
                    break
            if rid in served:
                del self._requests[rid]
                span.outcome = "walk"
                span.close = span.done = ev.cycle
                self._complete(span)

    # -- DRAM handlers -------------------------------------------------
    def on_dram_issue(self, ev) -> None:
        walk = self._walks.get(ev.walk_id)
        if walk is not None:
            walk.dram.append(DRAMSpan(issue=ev.cycle,
                                      complete=ev.complete_at,
                                      addr=ev.addr, is_write=ev.is_write,
                                      row_result=ev.row_result))

    def on_fill(self, ev) -> None:
        walk = self._walks.get(ev.walk_id)
        if walk is not None:
            walk.fills += 1
