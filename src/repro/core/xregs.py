"""X-register contexts.

Routines "allocate temporary X-register to store the access key and the
address of the DRAM refill being waited on" (§4.2). A context is the
*only* per-walker state held across yields, which is what makes
coroutines three orders of magnitude cheaper than blocking threads in
the paper's occupancy study (Figure 7).

The file tracks an occupancy integral: Σ active-registers × bytes ×
lifetime-cycles — exactly the paper's metric — so the Figure-7
comparison is a measurement, not an estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["XContext", "XRegisterFile"]

_REG_BYTES = 8


@dataclass
class XContext:
    """One walker's temporaries."""

    ctx_id: int
    regs: List[int]
    allocated_at: int = 0
    regs_touched: int = 0

    def read(self, index: int) -> int:
        if not 0 <= index < len(self.regs):
            raise IndexError(f"X-register R{index} outside context "
                             f"(size {len(self.regs)})")
        return self.regs[index]

    def write(self, index: int, value: int) -> None:
        if not 0 <= index < len(self.regs):
            raise IndexError(f"X-register R{index} outside context "
                             f"(size {len(self.regs)})")
        self.regs[index] = value & 0xFFFFFFFFFFFFFFFF
        if index + 1 > self.regs_touched:
            self.regs_touched = index + 1


class XRegisterFile:
    """``num_active`` contexts of ``regs_per`` 64-bit temporaries."""

    def __init__(self, num_active: int, regs_per: int) -> None:
        if num_active <= 0 or regs_per <= 0:
            raise ValueError("num_active and regs_per must be positive")
        self.num_active = num_active
        self.regs_per = regs_per
        self._free: List[int] = list(range(num_active - 1, -1, -1))
        self._live: Dict[int, XContext] = {}
        # occupancy accounting
        self.total_allocations = 0
        self.alloc_failures = 0
        self.occupancy_byte_cycles = 0
        self.resident_byte_cycles = 0
        self._last_update = 0

    # ------------------------------------------------------------------
    # occupancy integrals
    # ------------------------------------------------------------------
    # Two integrals, matching the paper's Figure-7 methodology:
    #
    # * ``occupancy_byte_cycles`` — *pipeline-active* occupancy: a
    #   coroutine holds controller resources only while its routines
    #   execute; every yield releases the pipeline. Charged per executed
    #   action slot via :meth:`charge_active`.
    # * ``resident_byte_cycles`` — context residency including dormant
    #   stalls (what a blocking thread would pin); closed at release.
    def charge_active(self, ctx: XContext, slots: int) -> None:
        self.occupancy_byte_cycles += ctx.regs_touched * _REG_BYTES * slots

    def charge_units(self, units: int) -> None:
        """Bulk form of :meth:`charge_active` for fused blocks.

        ``units`` is the pre-summed Σ regs_touched × slots a block's
        actions would have charged one at a time — the fused closure
        tracks the evolving high-water mark in a local, so the integral
        is identical to per-action charging.
        """
        self.occupancy_byte_cycles += units * _REG_BYTES

    def _close(self, ctx: XContext, now: int) -> None:
        lifetime = max(0, now - ctx.allocated_at)
        self.resident_byte_cycles += ctx.regs_touched * _REG_BYTES * lifetime

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    @property
    def free_contexts(self) -> int:
        return len(self._free)

    @property
    def live_contexts(self) -> int:
        return len(self._live)

    def allocate(self, now: int) -> Optional[XContext]:
        """Admit a walker; None when all contexts are busy (back-pressure)."""
        if not self._free:
            self.alloc_failures += 1
            return None
        ctx_id = self._free.pop()
        ctx = XContext(ctx_id, [0] * self.regs_per, allocated_at=now)
        self._live[ctx_id] = ctx
        self.total_allocations += 1
        return ctx

    def release(self, ctx: XContext, now: int) -> None:
        if ctx.ctx_id not in self._live:
            raise KeyError(f"context {ctx.ctx_id} not live")
        self._close(ctx, now)
        del self._live[ctx.ctx_id]
        self._free.append(ctx.ctx_id)

    def finalize(self, now: int) -> None:
        """Close the occupancy integral at end of simulation."""
        for ctx in self._live.values():
            self._close(ctx, now)
        self._last_update = now

    def __repr__(self) -> str:  # pragma: no cover
        return (f"XRegisterFile(live={self.live_contexts}/"
                f"{self.num_active}, regs_per={self.regs_per})")
