"""Semantics of the X-Action ISA.

The :class:`ActionExecutor` interprets one microcode action at a time on
behalf of the controller's back-end pipeline. Every action is atomic and
costs one executor slot, except multi-sector/multi-block copies, which
are charged per sector/block touched ("copy the DRAM response
sector-by-sector").

The executor mutates exactly the structures the real hardware's control
signals would: the walker's X-registers, the meta-tag array, the data
RAM, and the message queues (DRAM, internal, response). It also feeds
the energy model by bumping per-category counters on the controller's
stat group.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from ..sim.stats import STATS_COUNTERS
from .isa import Action, ActionCategory, Opcode, Operand
from .messages import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .controller import Controller, WalkerRun

__all__ = ["ExecResult", "ActionExecutor", "ActionError"]

_MASK64 = (1 << 64) - 1


class ActionError(RuntimeError):
    """A microcode action hit an unrecoverable condition."""


@dataclass(frozen=True)
class ExecResult:
    """Outcome of one action.

    ``branch``     — intra-routine target to jump to (None = fall through)
    ``cost``       — executor slots consumed
    ``terminated`` — the walker retired (STATE done / deallocM)
    """

    branch: Optional[int] = None
    cost: int = 1
    terminated: bool = False


# The overwhelmingly common outcome (fall through, cost 1, keep running).
# ExecResult is frozen, so every action can hand back this one instance.
_OK = ExecResult()

# The same sharing trick for the remaining outcomes: termination,
# small multi-slot costs (multi-sector copies / multi-block fills used
# to allocate a fresh ExecResult per action), and branch targets
# (bounded by routine length). Everything the executor returns in
# steady state is pooled; only a pathological >32-slot copy allocates.
_TERMINATED = ExecResult(terminated=True)
_COST_RESULTS = tuple(ExecResult(cost=c) for c in range(33))
_BRANCH_RESULTS: dict = {}


def _cost_result(cost: int) -> ExecResult:
    if cost < len(_COST_RESULTS):
        return _COST_RESULTS[cost]
    return ExecResult(cost=cost)


def _branch_result(target: int) -> ExecResult:
    result = _BRANCH_RESULTS.get(target)
    if result is None:
        result = _BRANCH_RESULTS[target] = ExecResult(branch=target)
    return result


def _shl(a: int, b: int) -> int:
    return (a << (b & 63)) & _MASK64


def _shr(a: int, b: int) -> int:
    return a >> (b & 63)


def _sra(a: int, b: int) -> int:
    b &= 63
    if a & (1 << 63):  # sign-extend
        return ((a - (1 << 64)) >> b) & _MASK64
    return a >> b

_ALU_STAT = {
    Opcode.ADD: "alu_add", Opcode.ADDI: "alu_add", Opcode.INC: "alu_add",
    Opcode.DEC: "alu_add",
    Opcode.AND: "alu_bitwise", Opcode.OR: "alu_bitwise",
    Opcode.XOR: "alu_bitwise", Opcode.NOT: "alu_bitwise",
    Opcode.SHL: "alu_shift", Opcode.SHR: "alu_shift",
    Opcode.SRA: "alu_shift", Opcode.SRL: "alu_shift",
}


class ActionExecutor:
    """Interprets actions against a controller's hardware structures.

    ``execute`` is the single hottest call in whole-model runs (one per
    microcode action), so the per-opcode work — handler lookup and the
    category/ALU counter selection — is resolved once per opcode into
    ``_dispatch`` and the energy-model counters are bumped through
    cached :class:`~repro.sim.stats.Counter` objects instead of name
    lookups.
    """

    def __init__(self, controller: "Controller") -> None:
        self.c = controller
        stats = controller.stats
        self._track = controller.stats_level >= STATS_COUNTERS
        self._n_actions = stats.counter("actions_total")
        self._n_ucode = stats.counter("ucode_reads")
        self._n_xreg_reads = stats.counter("xreg_reads")
        self._n_xreg_writes = stats.counter("xreg_writes")
        self._n_branches = stats.counter("branches")
        self._n_branches_taken = stats.counter("branches_taken")
        # opcode -> (handler, category counter, ALU counter or None)
        self._dispatch = {}

    # ------------------------------------------------------------------
    # operand plumbing
    # ------------------------------------------------------------------
    def _resolve(self, walker: "WalkerRun", msg: Message,
                 operand: Operand) -> int:
        if operand.kind == "imm":
            return int(operand.value)
        if operand.kind == "r":
            if self._track:
                self._n_xreg_reads.value += 1
            return walker.ctx.read(int(operand.value))
        # message field
        return msg.get(str(operand.value))

    def _write_reg(self, walker: "WalkerRun", operand: Operand,
                   value: int) -> None:
        if operand.kind != "r":
            raise ActionError(f"destination {operand!r} is not a register")
        if self._track:
            self._n_xreg_writes.value += 1
        walker.ctx.write(int(operand.value), value & _MASK64)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def execute(self, walker: "WalkerRun", action: Action,
                msg: Message) -> ExecResult:
        op = action.op
        entry = self._dispatch.get(op)
        if entry is None:
            handler = getattr(self, f"_op_{op.name.lower()}", None)
            if handler is None:
                raise ActionError(f"no semantics for {op}")
            category = self.c.stats.counter(f"act_{action.category.value}")
            alu_stat = _ALU_STAT.get(op)
            alu = self.c.stats.counter(alu_stat) if alu_stat else None
            entry = self._dispatch[op] = (handler, category, alu)
        handler, category, alu = entry
        if self._track:
            self._n_actions.value += 1
            self._n_ucode.value += 1
            category.value += 1
            if alu is not None:
                alu.value += 1
        return handler(walker, action, msg)

    # ------------------------------------------------------------------
    # AGEN
    # ------------------------------------------------------------------
    def _binary(self, walker, action, msg, fn) -> ExecResult:
        a = self._resolve(walker, msg, action.a)
        b = self._resolve(walker, msg, action.b)
        self._write_reg(walker, action.dst, fn(a, b))
        return _OK

    def _op_add(self, walker, action, msg):
        return self._binary(walker, action, msg, operator.add)

    def _op_and(self, walker, action, msg):
        return self._binary(walker, action, msg, operator.and_)

    def _op_or(self, walker, action, msg):
        return self._binary(walker, action, msg, operator.or_)

    def _op_xor(self, walker, action, msg):
        return self._binary(walker, action, msg, operator.xor)

    def _op_addi(self, walker, action, msg):
        return self._binary(walker, action, msg, operator.add)

    def _op_inc(self, walker, action, msg):
        a = self._resolve(walker, msg, action.a)
        self._write_reg(walker, action.dst, a + 1)
        return _OK

    def _op_dec(self, walker, action, msg):
        a = self._resolve(walker, msg, action.a)
        self._write_reg(walker, action.dst, a - 1)
        return _OK

    def _op_shl(self, walker, action, msg):
        return self._binary(walker, action, msg, _shl)

    def _op_shr(self, walker, action, msg):
        return self._binary(walker, action, msg, _shr)

    def _op_srl(self, walker, action, msg):
        return self._binary(walker, action, msg, _shr)

    def _op_sra(self, walker, action, msg):
        return self._binary(walker, action, msg, _sra)

    def _op_not(self, walker, action, msg):
        a = self._resolve(walker, msg, action.a)
        self._write_reg(walker, action.dst, (~a) & _MASK64)
        return _OK

    def _op_allocr(self, walker, action, msg):
        # Context registers are physically claimed at walker admission;
        # the action remains for ISA fidelity (and energy accounting).
        return _OK

    # ------------------------------------------------------------------
    # queues
    # ------------------------------------------------------------------
    def _op_enq(self, walker, action, msg) -> ExecResult:
        if action.queue == "dram":
            addr = self._resolve(walker, msg, action.a)
            ranged = action.b is not None
            # Default: fetch just the block containing addr.
            nbytes = self._resolve(walker, msg, action.b) if ranged else 1
            write = bool(action.attr("write", False))
            blocks = self.c.issue_fills(walker, addr, nbytes, write,
                                        ranged=ranged)
            return _cost_result(max(1, blocks))
        if action.queue == "self":
            event = str(action.attr("event"))
            delay = int(action.attr("delay", 1))
            fields = {
                name: self._resolve(walker, msg, operand)
                for name, operand in action.attr("fields", ())
            }
            for name, operand in action.attr("hash_fields", ()):
                from ..data.hashindex import fnv1a64
                fields[name] = fnv1a64(self._resolve(walker, msg, operand))
                if self._track:
                    self.c.stats.inc("hash_ops")
                    self.c.stats.inc("hash_cycles", delay)
            self.c.raise_internal(walker, event, fields, delay)
            return _OK
        if action.queue == "resp":
            fields = {
                name: self._resolve(walker, msg, operand)
                for name, operand in action.attr("fields", ())
            }
            self.c.walker_respond(walker, fields)
            return _OK
        raise ActionError(f"enq to unknown queue {action.queue!r}")

    def _op_deq(self, walker, action, msg):
        # The front-end consumed the triggering message at dispatch.
        return _OK

    def _op_peek(self, walker, action, msg) -> ExecResult:
        offset = self._resolve(walker, msg, action.a)
        width = int(action.attr("width", 8))
        if offset + width > len(msg.data):
            raise ActionError(
                f"peek {width}B at offset {offset} beyond {len(msg.data)}B "
                f"payload of {msg.event!r}"
            )
        value = int.from_bytes(msg.data[offset:offset + width], "little")
        self._write_reg(walker, action.dst, value)
        return _OK

    def _op_read_data(self, walker, action, msg) -> ExecResult:
        sector = self._resolve(walker, msg, action.a)
        width = int(action.attr("width", 8))
        raw = self.c.dataram.read_sectors(sector, sector + 1)
        value = int.from_bytes(raw[:width], "little")
        self._write_reg(walker, action.dst, value)
        return _OK

    def _op_write_data(self, walker, action, msg) -> ExecResult:
        sector = self._resolve(walker, msg, action.a)
        value = self._resolve(walker, msg, action.b)
        width = int(action.attr("width", 8))
        self.c.dataram.write_sector(sector, value.to_bytes(8, "little")[:width])
        return _OK

    # ------------------------------------------------------------------
    # meta-tags
    # ------------------------------------------------------------------
    def _op_allocm(self, walker, action, msg) -> ExecResult:
        entry = self.c.metatags.allocate(walker.tag, self.c.sim.now)
        if entry is None:
            raise ActionError(
                f"allocM structural hazard for tag {walker.tag}: the "
                "front-end must not dispatch when no way is claimable"
            )
        if entry.sector_start >= 0:
            # Recycled entry that still owned sectors (evicted victim).
            self.c.dataram.free(entry.sector_start,
                                entry.sector_end - entry.sector_start)
            entry.sector_start = entry.sector_end = -1
        self.c.metatags.mark_active(entry)
        entry.ctx_id = walker.ctx.ctx_id
        walker.entry = entry
        self.c.note_allocm(walker)
        return _OK

    def _op_deallocm(self, walker, action, msg) -> ExecResult:
        if walker.entry is not None and walker.entry.tag == walker.tag:
            released = self.c.metatags.deallocate(walker.tag)
            if released.sector_start >= 0:
                self.c.dataram.free(
                    released.sector_start,
                    released.sector_end - released.sector_start,
                )
            walker.entry = None
        walker.found = False
        return _TERMINATED

    def _op_update(self, walker, action, msg) -> ExecResult:
        if walker.entry is None:
            raise ActionError("update before allocM")
        value = self._resolve(walker, msg, action.a)
        what = str(action.attr("what"))
        if what == "sector_start":
            walker.entry.sector_start = value
        elif what == "sector_end":
            walker.entry.sector_end = value
        else:
            raise ActionError(f"update target {what!r}")
        return _OK

    def _op_state(self, walker, action, msg) -> ExecResult:
        next_state = str(action.attr("state"))
        walker.state = next_state
        if walker.entry is not None:
            walker.entry.state = next_state
        done = bool(action.attr("done", False))
        if done:
            walker.found = True
            return _TERMINATED
        return _OK

    # ------------------------------------------------------------------
    # control flow
    # ------------------------------------------------------------------
    def _branch(self, action, taken: bool) -> ExecResult:
        if self._track:
            self._n_branches.value += 1
        if taken:
            if self._track:
                self._n_branches_taken.value += 1
            return _branch_result(action.target)
        return _OK

    def _op_beq(self, walker, action, msg):
        a = self._resolve(walker, msg, action.a)
        b = self._resolve(walker, msg, action.b)
        return self._branch(action, a == b)

    def _op_bnz(self, walker, action, msg):
        a = self._resolve(walker, msg, action.a)
        return self._branch(action, a != 0)

    def _op_blt(self, walker, action, msg):
        a = self._resolve(walker, msg, action.a)
        b = self._resolve(walker, msg, action.b)
        return self._branch(action, a < b)

    def _op_bge(self, walker, action, msg):
        a = self._resolve(walker, msg, action.a)
        b = self._resolve(walker, msg, action.b)
        return self._branch(action, a >= b)

    def _op_ble(self, walker, action, msg):
        a = self._resolve(walker, msg, action.a)
        b = self._resolve(walker, msg, action.b)
        return self._branch(action, a <= b)

    def _op_bmiss(self, walker, action, msg):
        field = self._resolve(walker, msg, action.a)
        hit = self.c.metatags.lookup((field,)) is not None
        return self._branch(action, not hit)

    def _op_bhit(self, walker, action, msg):
        field = self._resolve(walker, msg, action.a)
        hit = self.c.metatags.lookup((field,)) is not None
        return self._branch(action, hit)

    # ------------------------------------------------------------------
    # data RAM
    # ------------------------------------------------------------------
    def _op_allocd(self, walker, action, msg) -> ExecResult:
        nsectors = self._resolve(walker, msg, action.a)
        start = self.c.dataram.alloc(nsectors)
        if start is None:
            self.c.reclaim_sectors(nsectors)
            start = self.c.dataram.alloc(nsectors)
        if start is None:
            raise ActionError(
                f"data RAM cannot supply {nsectors} sectors even after "
                "reclaim; X-Cache is undersized for this walker"
            )
        self._write_reg(walker, action.dst, start)
        walker.owned_sectors.append((start, nsectors))
        return _OK

    def _op_deallocd(self, walker, action, msg) -> ExecResult:
        start = self._resolve(walker, msg, action.a)
        nsectors = self._resolve(walker, msg, action.b)
        self.c.dataram.free(start, nsectors)
        walker.owned_sectors = [
            (s, n) for s, n in walker.owned_sectors if s != start
        ]
        return _OK

    def _op_read(self, walker, action, msg) -> ExecResult:
        return self._op_read_data(walker, action, msg)

    def _op_write(self, walker, action, msg) -> ExecResult:
        sector = self._resolve(walker, msg, action.a)
        nbytes = int(action.attr("nbytes", 8))
        sector_bytes = self.c.dataram.sector_bytes
        if action.attr("from_msg", False):
            # Copy up to nbytes of the fill payload (ranged fills deliver
            # only the requested slice of the final block).
            offset = self._resolve(walker, msg, action.b)
            payload = msg.data[offset:offset + nbytes]
            if not payload:
                raise ActionError(
                    f"write from msg offset {offset}: no payload available"
                )
        else:
            value = self._resolve(walker, msg, action.b)
            payload = value.to_bytes(8, "little")[:nbytes]
        # Copy sector-by-sector through the banked crossbar: the data RAM
        # accepts #wlen words (sectors) per executor slot.
        sectors = 0
        pos = 0
        while pos < len(payload):
            chunk = payload[pos:pos + sector_bytes]
            self.c.dataram.write_sector(sector + pos // sector_bytes, chunk)
            pos += sector_bytes
            sectors += 1
        wlen = max(1, self.c.config.wlen)
        return _cost_result(max(1, (sectors + wlen - 1) // wlen))
