"""Walker specifications: the table-driven coroutine template.

"We provide a table-driven template to help the programmer develop
walkers. Each line in the coroutine description specifies a transition.
It includes the current phase/state of the walker, the event that
triggers the transition, the set of actions that need to be executed,
and the next phase/state of the walker." (§4.2)

A :class:`WalkerSpec` is exactly that table. :func:`compile_walker`
turns it into the :class:`~repro.core.microcode.RoutineTable` +
:class:`~repro.core.microcode.MicrocodeRAM` pair the controller runs.

The module also provides the small assembler DSL (``op.add(...)``,
``op.enq_dram(...)``) the DSA walker programs in :mod:`repro.dsa` are
written in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .isa import IMM, MSG, Action, Opcode, Operand, R
from .messages import DEFAULT_STATE, EV_FILL, EV_META_LOAD, EV_META_STORE, VALID_STATE
from .microcode import MicrocodeError, MicrocodeRAM, Routine, RoutineTable

__all__ = [
    "Transition", "WalkerSpec", "CompiledWalker", "compile_walker",
    "Label", "assemble", "op",
]


@dataclass(frozen=True)
class Label:
    """Assembler label pseudo-instruction (resolved by :func:`assemble`)."""

    name: str


def assemble(items: Sequence) -> Tuple[Action, ...]:
    """Resolve :class:`Label` markers and string branch targets.

    ``items`` mixes :class:`Action` and :class:`Label`; labels name the
    position of the following action. Branch actions whose ``target`` is
    a string are rewritten to the label's action index.
    """
    positions: Dict[str, int] = {}
    index = 0
    for item in items:
        if isinstance(item, Label):
            if item.name in positions:
                raise MicrocodeError(f"duplicate label {item.name!r}")
            positions[item.name] = index
        else:
            index += 1
    out: List[Action] = []
    for item in items:
        if isinstance(item, Label):
            continue
        if isinstance(item.target, str):
            if item.target not in positions:
                raise MicrocodeError(
                    f"branch to unknown label {item.target!r}; "
                    f"labels={sorted(positions)}"
                )
            item = item.with_target(positions[item.target])
        out.append(item)
    return tuple(out)


@dataclass(frozen=True)
class Transition:
    """One line of the coroutine table.

    ``actions`` may contain :class:`Label` markers and string branch
    targets; they are assembled at construction.
    """

    state: str
    event: str
    actions: Tuple[Action, ...]
    note: str = ""

    def __post_init__(self) -> None:
        if not self.actions:
            raise MicrocodeError(
                f"transition [{self.state}, {self.event}] has no actions"
            )
        object.__setattr__(self, "actions", assemble(self.actions))


@dataclass(frozen=True)
class WalkerSpec:
    """A complete walker program for one DSA."""

    name: str
    transitions: Tuple[Transition, ...]
    description: str = ""

    def states(self) -> List[str]:
        out: List[str] = []
        for t in self.transitions:
            if t.state not in out:
                out.append(t.state)
        return out

    def events(self) -> List[str]:
        out: List[str] = []
        for t in self.transitions:
            if t.event not in out:
                out.append(t.event)
        return out


@dataclass(frozen=True)
class CompiledWalker:
    """Routine table + microcode RAM, ready to load into a controller."""

    spec: WalkerSpec
    table: RoutineTable
    ram: MicrocodeRAM

    @property
    def name(self) -> str:
        return self.spec.name


def compile_walker(spec: WalkerSpec) -> CompiledWalker:
    """Compile the transition table into routines + dispatch table.

    Each transition becomes one routine named ``state@event``; the
    routine table gains a pointer at [state, event]. Validation (branch
    bounds, guaranteed state updates) happens in the Routine/Table
    constructors.
    """
    table = RoutineTable()
    routines: List[Routine] = []
    for t in spec.transitions:
        routine = Routine(name=f"{t.state}@{t.event}", actions=tuple(t.actions))
        table.install(t.state, t.event, routine)
        routines.append(routine)
    if not table.handles(DEFAULT_STATE, EV_META_LOAD) and \
            not table.handles(DEFAULT_STATE, EV_META_STORE):
        raise MicrocodeError(
            f"walker {spec.name!r} handles no miss entry point "
            f"([{DEFAULT_STATE}, {EV_META_LOAD}] or [, {EV_META_STORE}])"
        )
    return CompiledWalker(spec=spec, table=table, ram=MicrocodeRAM(routines))


# ----------------------------------------------------------------------
# assembler DSL
# ----------------------------------------------------------------------

class _OpFactory:
    """Terse constructors for every action (``op.add(dst, a, b)``...).

    Programs read close to the paper's action table::

        op.allocM(),
        op.shl(R(1), MSG("key"), IMM(3)),
        op.enq_dram(addr=R(1)),
        op.state("MetaWait"),
    """

    # -- AGEN ----------------------------------------------------------
    @staticmethod
    def add(dst: Operand, a: Operand, b: Operand) -> Action:
        return Action(Opcode.ADD, dst=dst, a=a, b=b)

    @staticmethod
    def and_(dst: Operand, a: Operand, b: Operand) -> Action:
        return Action(Opcode.AND, dst=dst, a=a, b=b)

    @staticmethod
    def or_(dst: Operand, a: Operand, b: Operand) -> Action:
        return Action(Opcode.OR, dst=dst, a=a, b=b)

    @staticmethod
    def xor(dst: Operand, a: Operand, b: Operand) -> Action:
        return Action(Opcode.XOR, dst=dst, a=a, b=b)

    @staticmethod
    def addi(dst: Operand, a: Operand, imm: int) -> Action:
        return Action(Opcode.ADDI, dst=dst, a=a, b=IMM(imm))

    @staticmethod
    def inc(dst: Operand) -> Action:
        return Action(Opcode.INC, dst=dst, a=dst)

    @staticmethod
    def dec(dst: Operand) -> Action:
        return Action(Opcode.DEC, dst=dst, a=dst)

    @staticmethod
    def shl(dst: Operand, a: Operand, b: Operand) -> Action:
        return Action(Opcode.SHL, dst=dst, a=a, b=b)

    @staticmethod
    def shr(dst: Operand, a: Operand, b: Operand) -> Action:
        return Action(Opcode.SHR, dst=dst, a=a, b=b)

    @staticmethod
    def sra(dst: Operand, a: Operand, b: Operand) -> Action:
        return Action(Opcode.SRA, dst=dst, a=a, b=b)

    @staticmethod
    def srl(dst: Operand, a: Operand, b: Operand) -> Action:
        return Action(Opcode.SRL, dst=dst, a=a, b=b)

    @staticmethod
    def not_(dst: Operand, a: Operand) -> Action:
        return Action(Opcode.NOT, dst=dst, a=a)

    @staticmethod
    def mov(dst: Operand, a: Operand) -> Action:
        """addi dst, a, 0 — the assembler's register move."""
        return Action(Opcode.ADDI, dst=dst, a=a, b=IMM(0))

    @staticmethod
    def allocR() -> Action:
        return Action(Opcode.ALLOCR)

    # -- queues --------------------------------------------------------
    @staticmethod
    def enq_dram(addr: Operand, write: bool = False,
                 size: Optional[Operand] = None) -> Action:
        """Issue a DRAM block request for the block containing ``addr``.

        The response returns as a Fill event for this walker's tag.
        ``size`` (bytes) lets a single action request a multi-block
        stream (the tiled-DMA style refill SpArch uses).
        """
        attrs = {"write": write}
        return Action(Opcode.ENQ, queue="dram", a=addr, b=size,
                      attrs=tuple(sorted(attrs.items())))

    @staticmethod
    def enq_self(event: str, delay: int = 1,
                 hash_fields: Optional[Dict[str, Operand]] = None,
                 **fields: Operand) -> Action:
        """Raise an internal event for this walker after ``delay`` cycles.

        Models a fixed-latency functional unit. ``hash_fields`` routes
        operands through the hash unit (FNV-1a over the 64-bit value) —
        Widx's bucket indexing: ``op.enq_self("Hashed", delay=60,
        hash_fields={"h": R(0)})``.
        """
        attrs = {"event": event, "delay": delay,
                 "fields": tuple(sorted(fields.items())),
                 "hash_fields": tuple(sorted((hash_fields or {}).items()))}
        return Action(Opcode.ENQ, queue="self", attrs=tuple(sorted(attrs.items())))

    @staticmethod
    def enq_resp(**fields: Operand) -> Action:
        """Send a response message to the DSA datapath (MetaIO out)."""
        attrs = {"fields": tuple(sorted(fields.items()))}
        return Action(Opcode.ENQ, queue="resp", attrs=tuple(sorted(attrs.items())))

    @staticmethod
    def deq() -> Action:
        return Action(Opcode.DEQ)

    @staticmethod
    def peek(dst: Operand, offset: Operand, width: int = 8) -> Action:
        """Extract ``width`` bytes at ``offset`` of the triggering
        message's data block into ``dst`` (§4.2: "the walker peeks and
        extracts the block's key")."""
        return Action(Opcode.PEEK, dst=dst, a=offset,
                      attrs=(("width", width),))

    @staticmethod
    def read_data(dst: Operand, sector: Operand, width: int = 8) -> Action:
        """Read ``width`` bytes from the head of data-RAM ``sector``."""
        return Action(Opcode.READ_DATA, dst=dst, a=sector,
                      attrs=(("width", width),))

    @staticmethod
    def write_data(sector: Operand, value: Operand, width: int = 8) -> Action:
        """Write a register value into data-RAM ``sector``."""
        return Action(Opcode.WRITE_DATA, a=sector, b=value,
                      attrs=(("width", width),))

    # -- meta-tags -----------------------------------------------------
    @staticmethod
    def allocM() -> Action:
        """Claim a meta-tag entry for the walker's tag."""
        return Action(Opcode.ALLOCM)

    @staticmethod
    def deallocM() -> Action:
        """Release the walker's meta-tag entry (terminates the walker)."""
        return Action(Opcode.DEALLOCM)

    @staticmethod
    def update(what: str, value: Operand) -> Action:
        """Write ``sector_start``/``sector_end`` into the meta-tag entry."""
        if what not in ("sector_start", "sector_end"):
            raise MicrocodeError(f"update target {what!r} unknown")
        return Action(Opcode.UPDATE, a=value, attrs=(("what", what),))

    @staticmethod
    def state(next_state: str, done: bool = False) -> Action:
        """Set the walker's next state; ``done=True`` retires the walker."""
        return Action(Opcode.STATE,
                      attrs=(("done", done), ("state", next_state)))

    @staticmethod
    def finish(next_state: str = VALID_STATE) -> Action:
        """state(next_state, done=True) — the common retire idiom."""
        return _OpFactory.state(next_state, done=True)

    # -- control flow ----------------------------------------------------
    @staticmethod
    def beq(a: Operand, b: Operand, target: int) -> Action:
        return Action(Opcode.BEQ, a=a, b=b, target=target)

    @staticmethod
    def bnz(a: Operand, target: int) -> Action:
        return Action(Opcode.BNZ, a=a, target=target)

    @staticmethod
    def blt(a: Operand, b: Operand, target: int) -> Action:
        return Action(Opcode.BLT, a=a, b=b, target=target)

    @staticmethod
    def bge(a: Operand, b: Operand, target: int) -> Action:
        return Action(Opcode.BGE, a=a, b=b, target=target)

    @staticmethod
    def ble(a: Operand, b: Operand, target: int) -> Action:
        return Action(Opcode.BLE, a=a, b=b, target=target)

    @staticmethod
    def jmp(target) -> Action:
        """Unconditional branch (beq 0, 0, target)."""
        return Action(Opcode.BEQ, a=IMM(0), b=IMM(0), target=target)

    @staticmethod
    def lbl(name: str) -> Label:
        """Assembler label marking the next action."""
        return Label(name)

    @staticmethod
    def bmiss(tag_field: Operand, target: int) -> Action:
        """Branch when a single-field tag built from the operand misses."""
        return Action(Opcode.BMISS, a=tag_field, target=target)

    @staticmethod
    def bhit(tag_field: Operand, target: int) -> Action:
        return Action(Opcode.BHIT, a=tag_field, target=target)

    # -- data RAM --------------------------------------------------------
    @staticmethod
    def allocD(dst: Operand, nsectors: Operand) -> Action:
        """Allocate contiguous data-RAM sectors; start index into ``dst``."""
        return Action(Opcode.ALLOCD, dst=dst, a=nsectors)

    @staticmethod
    def deallocD(start: Operand, nsectors: Operand) -> Action:
        return Action(Opcode.DEALLOCD, a=start, b=nsectors)

    @staticmethod
    def read(dst: Operand, sector: Operand, width: int = 8) -> Action:
        return Action(Opcode.READ, dst=dst, a=sector, attrs=(("width", width),))

    @staticmethod
    def write(sector: Operand, src: Operand, nbytes: int = 8,
              from_msg: bool = False) -> Action:
        """Copy into data RAM starting at ``sector``.

        ``from_msg=True`` copies ``nbytes`` from the triggering fill's
        data block starting at byte offset ``src`` ("copy the DRAM
        response sector-by-sector into the data RAM"); otherwise writes
        the low ``nbytes`` of register ``src``. Cost is charged per
        sector touched.
        """
        return Action(Opcode.WRITE, a=sector, b=src,
                      attrs=(("from_msg", from_msg), ("nbytes", nbytes)))


op = _OpFactory()
