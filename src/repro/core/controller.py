"""The X-Cache programmable controller.

Implements the two-part pipeline of Figure 8:

* **Front-end (event loop).** Monitors the message buffers — MetaIO
  requests from the DSA datapath, DRAM fill responses, internally raised
  walker events — and wakes at most one active walker per cycle. The
  `[state, event]` pair indexes the routine table and retrieves the
  microcode pointer. Meta-tag *hits* never enter the walker pipeline:
  they are served by a dedicated, fully pipelined read port with a
  3-cycle load-to-use (§4.2).

* **Back-end (routine execution pipeline).** An in-order pipeline that
  retires up to ``#Exe`` actions per cycle. A triggered routine runs
  non-blocking to completion, then the walker either goes dormant
  (yield: waiting for its next event) or retires (STATE done /
  deallocM).

Walkers are admitted by allocating one of the ``#Active`` X-register
contexts; the active-walker map both merges duplicate misses (the
paper's active meta-tag bitmap) and routes DRAM responses back to the
stalled coroutine.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..mem.dram import DRAMModel, MemRequest, MemResponse
from ..obs.events import (
    ACTION_CATEGORIES,
    Evict,
    Fill,
    Hit,
    Merge,
    Miss,
    QueueStall,
    Reclaim,
    RequestArrive,
    WalkerDispatch,
    WalkerRetire,
    WalkerWake,
    WalkerYield,
)
from ..obs.processors import LegacyTraceProcessor
from ..sim import Component, MessageQueue, Simulator
from ..sim.stats import STATS_COUNTERS, STATS_FULL
from .actions import ActionExecutor, ActionError
from .compile import BoundBlock, bind_routine, verify_block
from .trace_compile import (
    TRACE_MAX_DECISIONS,
    BoundTrace,
    TraceBuildError,
    TracePath,
    TraceStats,
    bind_trace,
    record_mask,
)
from .isa import OPCODE_CATEGORY
from .config import XCacheConfig
from .dataram import DataRAM
from .messages import (
    DEFAULT_STATE,
    EV_FILL,
    EV_META_LOAD,
    EV_META_STORE,
    VALID_STATE,
    Message,
)
from .metatag import MetaTagArray, MetaTagEntry
from .microcode import Routine
from .walker import CompiledWalker
from .xregs import XContext, XRegisterFile

__all__ = ["Controller", "WalkerRun", "MetaResponse"]

Tag = Tuple[int, ...]

# opcode -> index into ACTION_CATEGORIES, for the profiler's per-category
# cost counts (resolved once; Action.category does two dict hops)
_OP_CAT_INDEX: Dict[str, int] = {
    op: ACTION_CATEGORIES.index(cat.value)
    for op, cat in OPCODE_CATEGORY.items()
}


def _drop_response(resp: MemResponse) -> None:
    """Completion sink for fire-and-forget writes."""


@dataclass
class MetaResponse:
    """What the DSA datapath receives back for a meta request."""

    request: Optional[Message]
    status: int              # 1 = found/served, 0 = not found
    data: bytes = b""
    completed_at: int = 0

    @property
    def found(self) -> bool:
        return self.status != 0


@dataclass
class _RoutineExec:
    routine: Routine
    msg: Message
    walker: "WalkerRun"
    pc: int = 0
    # per-ACTION_CATEGORIES #Exe costs, allocated only when the bus is
    # armed (the profiler apportions exec cycles across them)
    costs: Optional[List[int]] = None
    # compiled block table (block_at[pc] -> BoundBlock starting at pc),
    # None when compile_mode=off
    compiled: Optional[Tuple[Optional["BoundBlock"], ...]] = None
    # trace compilation (repro.core.trace_compile): the guarded episode
    # closure driving this invocation, its resume cursor across budget
    # boundaries, and the decision buffer while a hot path is recorded
    trace: Optional[BoundTrace] = None
    trace_pos: int = 0
    trace_terminated: bool = False
    recording: Optional[List[Tuple[int, int, bool, bool]]] = None
    record_mask: Optional[Tuple[bool, ...]] = None

    def __getstate__(self):
        # Bound blocks and traces hold generated closures; serialize
        # presence markers and let Controller._rebind_compiled re-point
        # this exec at the freshly rebuilt artifacts after restore. The
        # resume cursor (pc/trace_pos) is plain data and rides along, so
        # a mid-trace execution re-enters through the lazy cursor-entry
        # dispatcher exactly where it left off.
        state = self.__dict__.copy()
        state["compiled"] = self.compiled is not None
        state["trace"] = (self.trace.routine_name
                          if self.trace is not None else None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)


@dataclass
class WalkerRun:
    """One in-flight coroutine walker."""

    tag: Tag
    ctx: XContext
    origin: Optional[Message]
    walk_id: int = -1
    state: str = DEFAULT_STATE
    entry: Optional[MetaTagEntry] = None
    waiters: List[Message] = field(default_factory=list)
    inflight: Optional[_RoutineExec] = None
    owned_sectors: List[Tuple[int, int]] = field(default_factory=list)
    started_at: int = 0
    fills_outstanding: int = 0
    found: bool = False
    routines_run: int = 0
    allocm_done: bool = False
    # the episode trace that cleanly completed this walker's previous
    # routine — next dispatch follows its next_on edge (episode chain)
    last_trace: Optional[BoundTrace] = None

    def __getstate__(self):
        # see _RoutineExec.__getstate__: traces serialize as their
        # routine name and are re-pointed by Controller._rebind_compiled
        state = self.__dict__.copy()
        state["last_trace"] = (self.last_trace.routine_name
                               if self.last_trace is not None else None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)


@dataclass
class _SerializedTraces:
    """Pickled stand-in for a controller's bound-trace table.

    Bound traces hold generated closures, so the snapshot keeps only the
    routine names and the episode next_on edges (by routine name);
    :meth:`Controller._rebind_compiled` rebuilds the closures from the
    recorded :class:`~repro.core.trace_compile.TracePath`\\ s.
    """

    names: List[str]
    edges: Dict[str, Dict[str, str]]


class Controller(Component):
    """A programmed X-Cache instance (controller + RAMs)."""

    def __init__(self, sim: Simulator, config: XCacheConfig,
                 program: CompiledWalker, dram: DRAMModel,
                 name: Optional[str] = None,
                 store_merge: str = "fadd") -> None:
        super().__init__(sim, name or config.name)
        self.config = config
        self.program = program
        self.dram = dram
        if store_merge not in ("fadd", "overwrite"):
            raise ValueError(f"unknown store_merge policy {store_merge!r}")
        self.store_merge = store_merge

        self.metatags = MetaTagArray(config.ways, config.sets, config.tag_fields)
        # cache-contents observability: the array publishes fills and
        # evictions itself (with set/way coordinates) once ensure_bus
        # propagates the controller's bus into it
        self.metatags.sim = sim
        self.metatags.component = self.name
        self.dataram = DataRAM(config.data_sectors, config.sector_bytes,
                               access_bytes=config.wlen * 8)
        self.xregs = XRegisterFile(config.num_active, config.xregs_per_walker)
        self.executor = ActionExecutor(self)

        self.metaio_in: MessageQueue[Message] = MessageQueue(
            f"{self.name}.metaio", capacity=0, on_push=self.wake
        )
        # Legacy ring-buffer tracing rides the obs bus: assigning
        # `controller.tracer = Tracer()` attaches a digest-compatible
        # LegacyTraceProcessor (see the `tracer` property below).
        self._legacy_tracer = None
        self._legacy_bridge = None
        # persistent DRAM fill callback: the per-fill context rides on the
        # request's tag cookie instead of a fresh closure per block
        self._fill_cb = self._on_dram_fill
        self._count_stats = self.stats_level >= STATS_COUNTERS
        self._hist_stats = self.stats_level >= STATS_FULL
        # routine compilation: fused basic blocks bound to this
        # controller's stats/geometry, cached per routine name (bound
        # lazily at first dispatch — only routines that actually run
        # pay the binding)
        self._compile_verify = config.compile_mode == "verify"
        self._bound_routines: Optional[
            Dict[str, Tuple[Optional[BoundBlock], ...]]
        ] = None if config.compile_mode == "off" else {}
        # trace compilation (guarded episode closures): enabled when the
        # block compiler is on and the hotness threshold is non-zero
        self._traces: Optional[Dict[str, BoundTrace]] = (
            {} if config.compile_mode != "off"
            and config.trace_threshold > 0 else None)
        self._trace_counts: Dict[str, int] = {}
        self._trace_blacklist: set = set()
        # trace bookkeeping lives outside the stats group: architectural
        # stats stay byte-identical whether or not traces ran
        self.trace_stats = TraceStats()
        self._load_to_use_hist = self.stats.histogram("load_to_use")
        self._internal: Deque[Message] = deque()
        self._execq: Deque[_RoutineExec] = deque()
        self._walkers: Dict[Tag, WalkerRun] = {}
        # monotonically increasing walk-episode id: unlike the tag, it
        # is never reused, so obs events can correlate a whole
        # request → walker → DRAM journey unambiguously
        self._walk_seq = 0
        # Ways promised to dispatched walkers whose ALLOCM has not yet
        # executed, per set — dispatch must not over-commit a set.
        self._pending_allocs: Dict[int, int] = {}
        self.on_response: Optional[Callable[[MetaResponse], None]] = None

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def ensure_bus(self):
        """Create/return the bus, sharing it with the meta-tag array.

        Every arming path (capture attach, tracer assignment, direct
        ``observe``) funnels through here, so the array's fill/evict
        publish sites see the same bus as the controller's.
        """
        bus = super().ensure_bus()
        self.metatags.bus = bus
        return bus

    @property
    def tracer(self):
        """The attached legacy :class:`~repro.sim.trace.Tracer` (or None).

        Setting a tracer arms the controller's event bus with a
        :class:`~repro.obs.processors.LegacyTraceProcessor` bridge that
        reproduces the seed tracer's exact ``(cycle, component, kind,
        detail)`` stream, so trace digests are unchanged.
        """
        return self._legacy_tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        if self._legacy_bridge is not None and self.bus is not None:
            self.bus.detach(self._legacy_bridge)
        self._legacy_tracer = tracer
        self._legacy_bridge = None
        if tracer is not None:
            self._legacy_bridge = LegacyTraceProcessor(tracer)
            self.ensure_bus().attach(self._legacy_bridge)

    # ------------------------------------------------------------------
    # datapath-facing API (MetaIO)
    # ------------------------------------------------------------------
    def set_response_handler(self,
                             handler: Callable[[MetaResponse], None]) -> None:
        self.on_response = handler

    def meta_load(self, tag: Tag, walk_fields: Optional[Dict[str, int]] = None,
                  preload: bool = False, take: bool = False,
                  nowalk: bool = False) -> Message:
        """Issue a meta load for ``tag``.

        ``walk_fields`` carries DSA-specific operands the walker needs on
        a miss (e.g. the hash-table base address). ``preload`` marks a
        decoupled refill request (ack, no data return). ``take`` reads
        *and invalidates* (GraphPulse's event pop); ``nowalk`` answers a
        miss with status=0 instead of starting a walker (implied by
        ``take``).
        """
        self.metatags.check_tag(tag)
        fields = dict(walk_fields or {})
        for name, value in zip(self.config.tag_fields, tag):
            fields.setdefault(name, value)
        if preload:
            fields["preload"] = 1
        if take:
            fields["take"] = 1
        if take or nowalk:
            fields["nowalk"] = 1
        msg = Message(EV_META_LOAD, tag=tag, fields=fields,
                      issued_at=self.sim.now)
        self.metaio_in.enq(msg)
        if self._count_stats:
            self.stats.inc("meta_loads")
        bus = self.bus
        if bus is not None:
            self.metatags.announce(bus)
            if bus.wants(RequestArrive):
                bus.publish(RequestArrive(cycle=self.sim.now,
                                          component=self.name,
                                          tag=tag, op="load",
                                          req_id=msg.uid))
        return msg

    def meta_store(self, tag: Tag, payload_bits: int,
                   walk_fields: Optional[Dict[str, int]] = None) -> Message:
        """Issue a meta store (insert-or-merge) for ``tag``."""
        self.metatags.check_tag(tag)
        fields = dict(walk_fields or {})
        for name, value in zip(self.config.tag_fields, tag):
            fields.setdefault(name, value)
        fields["payload"] = payload_bits
        msg = Message(EV_META_STORE, tag=tag, fields=fields,
                      issued_at=self.sim.now)
        self.metaio_in.enq(msg)
        if self._count_stats:
            self.stats.inc("meta_stores")
        bus = self.bus
        if bus is not None:
            self.metatags.announce(bus)
            if bus.wants(RequestArrive):
                bus.publish(RequestArrive(cycle=self.sim.now,
                                          component=self.name,
                                          tag=tag, op="store",
                                          req_id=msg.uid))
        return msg

    # ------------------------------------------------------------------
    # walker-facing services (invoked by the action executor)
    # ------------------------------------------------------------------
    def issue_fills(self, walker: WalkerRun, addr: int, nbytes: int,
                    write: bool, ranged: bool = False) -> int:
        """Issue block fills covering [addr, addr+nbytes); returns #blocks.

        Non-ranged fills (the common pointer-chase case) deliver the full
        64-byte block, so the walker can PEEK at ``addr & 63``. Ranged
        fills — tiled refills à la SpArch — deliver only the requested
        byte slice of each block plus a ``bytes`` field, so the walker's
        copy loop is a straight cursor walk.
        """
        bb = self.config.block_bytes
        end = addr + max(nbytes, 1)
        first = addr & ~(bb - 1)
        last = (end - 1) & ~(bb - 1)
        count_stats = self._count_stats
        blocks = (last - first) // bb + 1
        if blocks == 1:
            # common pointer-chase case: one block, no batch list
            if write:
                if count_stats:
                    self.stats.inc("dram_writes")
                self.dram.request(
                    MemRequest(first, is_write=True,
                               walk_id=walker.walk_id),
                    _drop_response)
            else:
                if count_stats:
                    self.stats.inc("dram_fills")
                walker.fills_outstanding += 1
                if ranged:
                    lo = max(addr, first) - first
                    hi = min(end, first + bb) - first
                else:
                    lo, hi = 0, bb
                self.dram.request(
                    MemRequest(first, tag=(walker.tag, lo, hi),
                               walk_id=walker.walk_id),
                    self._fill_cb,
                )
            return 1
        # multi-block fill (ranged refills, tiled copies): issue the
        # whole burst through the DRAM batch path with bulk stats
        wid = walker.walk_id
        reqs = []
        if write:
            if count_stats:
                self.stats.inc("dram_writes", blocks)
            block = first
            while block <= last:
                reqs.append(MemRequest(block, is_write=True, walk_id=wid))
                block += bb
            self.dram.request_batch(reqs, _drop_response)
        else:
            if count_stats:
                self.stats.inc("dram_fills", blocks)
            walker.fills_outstanding += blocks
            tag = walker.tag
            block = first
            while block <= last:
                if ranged:
                    lo = max(addr, block) - block
                    hi = min(end, block + bb) - block
                else:
                    lo, hi = 0, bb
                reqs.append(MemRequest(block, tag=(tag, lo, hi),
                                       walk_id=wid))
                block += bb
            self.dram.request_batch(reqs, self._fill_cb)
        return blocks

    def _on_dram_fill(self, resp: MemResponse) -> None:
        tag, lo, hi = resp.tag
        walker = self._walkers.get(tag)
        if walker is None:
            self.stats.inc("orphan_fills")
            return
        walker.fills_outstanding -= 1
        bus = self.bus
        if bus is not None and bus.wants(Fill):
            bus.publish(Fill(cycle=self.sim.now, component=self.name,
                             tag=tag, addr=resp.addr, nbytes=hi - lo,
                             walk_id=walker.walk_id))
        data = resp.data[lo:hi]
        self._internal.append(
            Message(EV_FILL, tag=tag,
                    fields={"addr": resp.addr, "bytes": hi - lo},
                    data=data, issued_at=self.sim.now)
        )
        self.wake()

    def raise_internal(self, walker: WalkerRun, event: str,
                       fields: Dict[str, int], delay: int) -> None:
        # scheduled as a partial of a bound method (not a closure) so a
        # pending delivery survives snapshot/restore (repro.sim.checkpoint)
        self.sim.call_after(max(1, delay),
                            partial(self._deliver_internal, walker.tag,
                                    event, fields))

    def _deliver_internal(self, tag: Tag, event: str,
                          fields: Dict[str, int]) -> None:
        if tag in self._walkers:
            self._internal.append(
                Message(event, tag=tag, fields=fields,
                        issued_at=self.sim.now)
            )
            self.wake()
        else:
            self.stats.inc("orphan_events")

    def walker_respond(self, walker: WalkerRun, fields: Dict[str, int]) -> None:
        """Explicit enq-resp from microcode (beyond the auto-response)."""
        if walker.origin is not None:
            self._respond(walker.origin, fields.get("status", 1),
                          data=b"", latency=1)

    def note_allocm(self, walker: WalkerRun) -> None:
        """ALLOCM executed: release the dispatch-time way reservation."""
        walker.allocm_done = True
        set_index = self.metatags.set_of(walker.tag)
        pending = self._pending_allocs.get(set_index, 0)
        if pending > 0:
            self._pending_allocs[set_index] = pending - 1

    def reclaim_sectors(self, nsectors: int) -> None:
        """Evict LRU servable entries until ``nsectors`` contiguous fit.

        Usually one or two evictions suffice, so victims come off a lazy
        heap rather than a full sort; the (last_used, scan-index) keys
        make the pop order identical to the stable sort it replaced.
        """
        bus = self.bus
        if bus is not None and bus.wants(Reclaim):
            bus.publish(Reclaim(cycle=self.sim.now, component=self.name,
                                nsectors=nsectors))
        victims = [
            (e.last_used, i, e)
            for i, e in enumerate(self.metatags.entries())
            if e.servable and e.sector_start >= 0
        ]
        heapq.heapify(victims)
        while victims:
            if self.dataram.can_alloc(nsectors):
                return
            _, _, victim = heapq.heappop(victims)
            assert victim.tag is not None
            victim_tag = victim.tag
            released = self.metatags.deallocate(victim_tag)
            self.dataram.free(released.sector_start,
                              released.sector_end - released.sector_start)
            self.stats.inc("capacity_evictions")
            if bus is not None and bus.wants(Evict):
                bus.publish(Evict(
                    cycle=self.sim.now, component=self.name,
                    tag=victim_tag,
                    sectors=released.sector_end - released.sector_start))

    # ------------------------------------------------------------------
    # responses
    # ------------------------------------------------------------------
    def _respond(self, request: Message, status: int, data: bytes,
                 latency: int) -> None:
        done = self.sim.now + latency
        if self._hist_stats:
            self._load_to_use_hist.add(done - request.issued_at)
        handler = self.on_response
        if handler is None:
            return
        resp = MetaResponse(request=request, status=status, data=data,
                            completed_at=done)
        self.sim.call_at(done, partial(handler, resp))

    def _hit_latency_for(self, nbytes: int) -> int:
        """3-cycle load-to-use, plus serialization beyond #wlen words."""
        words = max(1, (nbytes + 7) // 8)
        extra = (words - 1) // self.config.wlen
        return self.config.hit_latency + extra

    def _serve_hit(self, msg: Message, entry: MetaTagEntry) -> None:
        now = self.sim.now
        self.metatags.touch(entry, now)
        if self._count_stats:
            self.stats.inc("hits")
        bus = self.bus
        take = bool(msg.fields.get("take"))
        if msg.fields.get("preload"):
            if bus is not None:
                bus.publish(Hit(
                    cycle=now, component=self.name, tag=msg.tag, take=take,
                    load_to_use=now + self.config.hit_latency
                    - msg.issued_at, req_id=msg.uid))
            self._respond(msg, 1, b"", self.config.hit_latency)
            return
        data = b""
        if entry.sector_start >= 0:
            data = self.dataram.read_sectors(entry.sector_start,
                                             entry.sector_end)
        latency = self._hit_latency_for(len(data))
        if bus is not None:
            bus.publish(Hit(cycle=now, component=self.name, tag=msg.tag,
                            take=take,
                            load_to_use=now + latency - msg.issued_at,
                            req_id=msg.uid))
        self._respond(msg, 1, data, latency)
        if msg.fields.get("take"):
            released = self.metatags.deallocate(entry.tag)
            if released.sector_start >= 0:
                self.dataram.free(released.sector_start,
                                  released.sector_end - released.sector_start)
            self.stats.inc("takes")

    def _serve_store_hit(self, msg: Message, entry: MetaTagEntry) -> None:
        now = self.sim.now
        self.metatags.touch(entry, now)
        self.stats.inc("store_hits")
        bus = self.bus
        if bus is not None:
            bus.publish(Hit(cycle=now, component=self.name, tag=msg.tag,
                            store=True,
                            load_to_use=now + self.config.hit_latency
                            - msg.issued_at, req_id=msg.uid))
        self._apply_store(entry, msg.fields["payload"])
        self._respond(msg, 1, b"", self.config.hit_latency)

    def _apply_store(self, entry: MetaTagEntry, payload_bits: int) -> None:
        import struct
        if entry.sector_start < 0:
            return
        sector = entry.sector_start
        if self.store_merge == "fadd":
            raw = self.dataram.read_sectors(sector, sector + 1)
            current = struct.unpack("<d", raw[:8])[0]
            incoming = struct.unpack("<d", struct.pack("<Q", payload_bits))[0]
            merged = struct.pack("<d", current + incoming)
            self.dataram.write_sector(sector, merged)
            self.stats.inc("merge_ops")
        else:
            self.dataram.write_sector(
                sector, (payload_bits & ((1 << 64) - 1)).to_bytes(8, "little")
            )

    # ------------------------------------------------------------------
    # the pipeline
    # ------------------------------------------------------------------
    def _tick(self) -> bool:
        self._front_end_hits()
        self._front_end_dispatch()
        self._back_end_execute()
        return bool(self._execq or self._internal or self.metaio_in.valid
                    or self._walkers)

    @property
    def SCHED_WINDOW(self) -> int:
        """MetaIO entries the front-end scheduler examines per cycle
        (the paper's trigger stage holds hazard-blocked messages without
        stalling the ones behind them)."""
        return self.config.sched_window

    def _front_end_hits(self) -> None:
        """Serve up to hit_ports pipelined hits from the scheduler window.

        A miss in the window does not block hits queued behind it; order
        is preserved *per tag* (same-tag requests either hit together or
        merge into the same walker).
        """
        served = 0
        blocked = set()  # tags with an earlier unconsumed message
        for msg in self.metaio_in.window(self.SCHED_WINDOW):
            if served >= self.config.hit_ports:
                break
            assert msg.tag is not None
            if msg.tag in blocked:
                continue  # same-tag order must be preserved
            blocked.add(msg.tag)
            walker = self._walkers.get(msg.tag)
            if walker is not None:
                # Merge into the in-flight walk (active-bitmap hit).
                self.metaio_in.remove(msg)
                walker.waiters.append(msg)
                self.stats.inc("miss_merges")
                if self.bus is not None:
                    self.bus.publish(Merge(cycle=self.sim.now,
                                           component=self.name,
                                           tag=msg.tag, req_id=msg.uid,
                                           walk_id=walker.walk_id))
                served += 1
                continue
            entry = self.metatags.lookup(msg.tag)
            if self._count_stats:
                self.stats.inc("tag_probes")
            if entry is not None and entry.servable:
                self.metaio_in.remove(msg)
                if msg.event == EV_META_STORE:
                    self._serve_store_hit(msg, entry)
                else:
                    self._serve_hit(msg, entry)
                served += 1
                continue
            if msg.event == EV_META_LOAD and msg.fields.get("nowalk"):
                self.metaio_in.remove(msg)
                self.stats.inc("nowalk_misses")
                if self.bus is not None:
                    # status=0: answered without a walk (not a hit) —
                    # closes the request's journey for span assembly
                    now = self.sim.now
                    self.bus.publish(Hit(
                        cycle=now, component=self.name, tag=msg.tag,
                        take=bool(msg.fields.get("take")),
                        load_to_use=now + self.config.hit_latency
                        - msg.issued_at, req_id=msg.uid, status=0))
                self._respond(msg, 0, b"", self.config.hit_latency)
                served += 1
                continue
            # a true miss: leave it for the dispatch stage

    def _front_end_dispatch(self) -> None:
        """Wake at most one walker per cycle (new miss or pending event)."""
        # 1) resume a dormant walker with a pending event
        for i, msg in enumerate(self._internal):
            assert msg.tag is not None
            walker = self._walkers.get(msg.tag)
            if walker is None:
                del self._internal[i]
                self.stats.inc("orphan_events")
                return
            if walker.inflight is None:
                routine = self.program.table.lookup(walker.state, msg.event)
                if routine is None:
                    raise ActionError(
                        f"walker {walker.tag} in state {walker.state!r} has "
                        f"no routine for event {msg.event!r}"
                    )
                del self._internal[i]
                bus = self.bus
                if bus is not None and bus.wants(WalkerWake):
                    bus.publish(WalkerWake(cycle=self.sim.now,
                                           component=self.name,
                                           tag=walker.tag,
                                           reason=msg.event,
                                           walk_id=walker.walk_id))
                self._dispatch(walker, routine, msg)
                return
        # 2) admit a new walker for the oldest dispatchable miss
        blocked = set()  # tags with an earlier unconsumed message
        for msg in self.metaio_in.window(self.SCHED_WINDOW):
            assert msg.tag is not None
            if msg.tag in blocked:
                continue
            blocked.add(msg.tag)
            if msg.tag in self._walkers:
                continue  # merged by the hit loop next cycle
            entry = self.metatags.lookup(msg.tag)
            if entry is not None and entry.servable:
                continue  # the hit loop will serve it
            if msg.event == EV_META_LOAD and msg.fields.get("nowalk"):
                continue
            routine = self.program.table.lookup(DEFAULT_STATE, msg.event)
            if routine is None:
                raise ActionError(
                    f"program {self.program.name!r} has no miss routine "
                    f"for {msg.event!r}"
                )
            set_index = self.metatags.set_of(msg.tag)
            pending = self._pending_allocs.get(set_index, 0)
            if self.metatags.claimable_ways(msg.tag) <= pending:
                self.stats.inc("stall_set_conflict")
                bus = self.bus
                if bus is not None and bus.wants(QueueStall):
                    bus.publish(QueueStall(cycle=self.sim.now,
                                           component=self.name,
                                           tag=msg.tag,
                                           reason="set_conflict",
                                           req_id=msg.uid))
                continue
            ctx = self.xregs.allocate(self.sim.now)
            if ctx is None:
                self.stats.inc("stall_no_context")
                bus = self.bus
                if bus is not None and bus.wants(QueueStall):
                    bus.publish(QueueStall(cycle=self.sim.now,
                                           component=self.name,
                                           tag=msg.tag,
                                           reason="no_context",
                                           req_id=msg.uid))
                return
            self.metaio_in.remove(msg)
            self._pending_allocs[set_index] = pending + 1
            self._walk_seq += 1
            walker = WalkerRun(tag=msg.tag, ctx=ctx, origin=msg,
                               walk_id=self._walk_seq,
                               started_at=self.sim.now)
            self._walkers[msg.tag] = walker
            self.stats.inc("misses")
            self.stats.inc("walks_started")
            if self.bus is not None:
                self.bus.publish(Miss(cycle=self.sim.now,
                                      component=self.name,
                                      tag=msg.tag, op=msg.event,
                                      req_id=msg.uid,
                                      walk_id=walker.walk_id,
                                      set_index=set_index))
            self._dispatch(walker, routine, msg)
            return

    def _dispatch(self, walker: WalkerRun, routine: Routine,
                  msg: Message) -> None:
        inflight = _RoutineExec(routine=routine, msg=msg, walker=walker)
        walker.inflight = inflight
        walker.routines_run += 1
        bound = self._bound_routines
        if bound is not None:
            blocks = bound.get(routine.name)
            if blocks is None:
                blocks = self._bind_blocks(routine.name)
            inflight.compiled = blocks
            traces = self._traces
            if traces is not None:
                trace = None
                prev = walker.last_trace
                if prev is not None:
                    # episode chain: the last completed trace remembers
                    # which trace handled this event last time
                    trace = prev.next_on.get(msg.event)
                    if trace is not None \
                            and trace.routine_name == routine.name:
                        self.trace_stats.episode_hits += 1
                    else:
                        trace = None
                if trace is None:
                    trace = traces.get(routine.name)
                    if trace is None:
                        self._trace_warm(routine, inflight)
                    elif prev is not None:
                        prev.next_on[msg.event] = trace
                if trace is not None:
                    inflight.trace = trace
                    self.trace_stats.dispatches += 1
                walker.last_trace = None
        self._execq.append(inflight)
        if self._count_stats:
            self.stats.inc("routines_dispatched")
        bus = self.bus
        if bus is not None:
            # per-category cost accounting taxes every executed action,
            # and only WalkerRetire consumers (span explain) read it
            if bus.wants(WalkerRetire):
                walker.inflight.costs = [0] * len(ACTION_CATEGORIES)
            if bus.wants(WalkerDispatch):
                bus.publish(WalkerDispatch(cycle=self.sim.now,
                                           component=self.name,
                                           tag=walker.tag,
                                           routine=routine.name,
                                           walk_id=walker.walk_id))

    def _bind_blocks(self, name: str) -> Tuple[Optional[BoundBlock], ...]:
        """Bind (and cache) routine ``name``'s fused-block table."""
        bound = self._bound_routines
        assert bound is not None
        blocks = bound[name] = bind_routine(
            self.program.ram.compiled_routine(name, self.config.min_fuse_len),
            self.stats, _OP_CAT_INDEX,
            self.config.xregs_per_walker, self.config.num_exe)
        return blocks

    # ------------------------------------------------------------------
    # snapshot/restore (repro.sim.checkpoint)
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Serialize without the derivable compiled artifacts.

        Everything architectural (queues, walkers, meta-tags, stats,
        resume cursors) pickles as-is; the fused-block tables and bound
        episode traces hold generated closures, so they serialize as
        name lists / :class:`_SerializedTraces` and are rebuilt
        deterministically by :meth:`_rebind_compiled`.
        """
        state = self.__dict__.copy()
        bound = state.get("_bound_routines")
        if bound is not None:
            state["_bound_routines"] = sorted(bound)
        traces = state.get("_traces")
        if traces is not None:
            state["_traces"] = _SerializedTraces(
                names=sorted(traces),
                edges={name: {event: target.routine_name
                              for event, target in trace.next_on.items()}
                       for name, trace in traces.items()})
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)

    def _rebind_compiled(self) -> None:
        """Rebuild fused blocks and episode traces after unpickling.

        Must run after the whole object graph is restored (the program
        RAM's recorded trace paths have to be re-installed first — see
        repro.sim.checkpoint) and after any fork-safe config overrides,
        so the rebuilt artifacts reflect the effective config. Binding
        is a pure function of (program, config, stats identity), so the
        rebuilt closures behave byte-identically to the dropped ones.
        """
        bound = self._bound_routines
        if isinstance(bound, list):
            self._bound_routines = {}
            for name in bound:
                self._bind_blocks(name)
        serialized = self._traces
        if isinstance(serialized, _SerializedTraces):
            self._traces = {}
            for name in serialized.names:
                path = self.program.ram.trace_path(name)
                if path is None:
                    # trace store not carried over (legacy snapshot):
                    # fall back to re-learning at runtime
                    continue
                self._bind_trace(self.program.ram.routine_named(name), path)
            for name, edges in serialized.edges.items():
                trace = self._traces.get(name)
                if trace is None:
                    continue
                for event, target_name in edges.items():
                    target = self._traces.get(target_name)
                    if target is not None:
                        trace.next_on[event] = target
        traces = self._traces
        for ex in self._execq:
            if ex.compiled is True:
                table = self._bound_routines
                ex.compiled = (None if table is None else
                               table.get(ex.routine.name)
                               or self._bind_blocks(ex.routine.name))
            elif ex.compiled is False:
                ex.compiled = None
            if isinstance(ex.trace, str):
                # a vanished trace deopts to the block path — the
                # architecturally identical fallback
                ex.trace = None if traces is None else traces.get(ex.trace)
        for walker in self._walkers.values():
            if isinstance(walker.last_trace, str):
                walker.last_trace = (None if traces is None
                                     else traces.get(walker.last_trace))

    # ------------------------------------------------------------------
    # trace compilation (hot-path recording and binding)
    # ------------------------------------------------------------------
    def _trace_warm(self, routine: Routine, inflight: _RoutineExec) -> None:
        """Cold trace path: rebind a path already recorded in the RAM
        (e.g. by another controller sharing the program), or count
        hotness and arm recording when the threshold is crossed."""
        name = routine.name
        if name in self._trace_blacklist:
            return
        path = self.program.ram.trace_path(name)
        if path is not None:
            trace = self._bind_trace(routine, path)
            if trace is not None:
                inflight.trace = trace
                self.trace_stats.dispatches += 1
            return
        count = self._trace_counts.get(name, 0) + 1
        self._trace_counts[name] = count
        if count == self.config.trace_threshold:
            # this invocation records; the next one runs the trace
            inflight.recording = []
            inflight.record_mask = record_mask(routine)

    def _bind_trace(self, routine: Routine,
                    path: TracePath) -> Optional[BoundTrace]:
        blocks = None
        bound = self._bound_routines
        if bound is not None:
            blocks = bound.get(routine.name)
        try:
            trace = bind_trace(self, routine, path, blocks, _OP_CAT_INDEX)
        except TraceBuildError:
            self._trace_blacklist.add(routine.name)
            return None
        assert self._traces is not None
        self._traces[routine.name] = trace
        return trace

    def _record_complete(self, ex: _RoutineExec,
                         decisions: List[Tuple[int, int, bool, bool]]) -> None:
        name = ex.routine.name
        if self._traces is None or name in self._traces \
                or name in self._trace_blacklist:
            return
        path = TracePath(name, tuple(decisions))
        if self._bind_trace(ex.routine, path) is not None:
            self.program.ram.install_trace(name, path)
            self.trace_stats.installs += 1

    def _back_end_execute(self) -> None:
        budget = self.config.num_exe
        execq = self._execq
        execute = self.executor.execute
        charge = self.xregs.charge_active
        count_stats = self._count_stats
        verify = self._compile_verify
        while budget > 0 and execq:
            ex = execq[0]
            actions = ex.routine.actions
            if ex.pc >= len(actions):
                self._finish_routine(ex, terminated=False)
                continue
            trace = ex.trace
            if trace is not None:
                # one closure per episode leg: runs as many segments as
                # the budget allows, resumes mid-trace next cycle, or
                # deopts (ex.trace = None) to the block path below
                budget = trace.run(self, ex, budget)
                if ex.trace_terminated:
                    self._finish_routine(ex, terminated=True)
                elif ex.pc >= len(actions):
                    self._finish_routine(ex, terminated=False)
                continue
            blocks = ex.compiled
            if blocks is not None:
                block = blocks[ex.pc]
                # Fuse only when the whole block fits the remaining
                # budget: front-end stages run between budget chunks
                # and must observe identical intermediate state in
                # every mode. Partial blocks take the interpreter.
                if block is not None and block.n <= budget:
                    if verify:
                        # interpreted pass inside is authoritative and
                        # does all charge/stat/cost accounting
                        verify_block(self, ex, block, _OP_CAT_INDEX)
                    else:
                        occ = block.fused(ex.walker, ex.msg, self.dataram)
                        self.xregs.charge_units(occ)
                        if count_stats:
                            for counter, amount in block.bumps:
                                counter.value += amount
                        if ex.costs is not None:
                            costs = ex.costs
                            for index, amount in block.cat_costs:
                                costs[index] += amount
                    budget -= block.n
                    ex.pc = block.end
                    if ex.pc >= len(actions):
                        self._finish_routine(ex, terminated=False)
                    continue
            action = actions[ex.pc]
            result = execute(ex.walker, action, ex.msg)
            budget -= result.cost
            charge(ex.walker.ctx, result.cost)
            if ex.costs is not None:
                ex.costs[action.cat_index] += result.cost
            rec = ex.recording
            if rec is not None and not ex.record_mask[ex.pc]:
                rec.append((ex.pc,
                            result.branch if result.branch is not None
                            else ex.pc + 1,
                            result.branch is not None,
                            result.terminated))
                if len(rec) >= TRACE_MAX_DECISIONS:
                    ex.recording = None
                    self._trace_blacklist.add(ex.routine.name)
            if result.terminated:
                self._finish_routine(ex, terminated=True)
                continue
            ex.pc = result.branch if result.branch is not None else ex.pc + 1
            if ex.pc >= len(actions):
                self._finish_routine(ex, terminated=False)

    def _finish_routine(self, ex: _RoutineExec, terminated: bool) -> None:
        self._execq.popleft()
        walker = ex.walker
        walker.inflight = None
        if ex.recording is not None:
            decisions = ex.recording
            ex.recording = None
            self._record_complete(ex, decisions)
        if ex.trace is not None:
            # clean completion (not a deopt): remember the trace so the
            # next dispatch can follow its episode edge
            walker.last_trace = ex.trace
        if terminated:
            self._complete_walker(walker, ex)
        elif self.bus is not None and self.bus.wants(WalkerYield):
            self.bus.publish(WalkerYield(cycle=self.sim.now,
                                         component=self.name,
                                         tag=walker.tag,
                                         routine=ex.routine.name,
                                         action_costs=tuple(ex.costs or ()),
                                         fills=walker.fills_outstanding,
                                         walk_id=walker.walk_id))

    def _complete_walker(self, walker: WalkerRun,
                         ex: Optional[_RoutineExec] = None) -> None:
        now = self.sim.now
        if self._count_stats:
            self.stats.inc("walks_completed")
        if self._hist_stats:
            self.stats.histogram("walk_latency").add(now - walker.started_at)
        bus = self.bus
        # req_ids answered by this retire (replayed stores excluded:
        # their journey continues through MetaIO); only tracked when a
        # bus is armed, so the unarmed path allocates nothing
        served: Optional[List[int]] = [] if bus is not None else None
        entry = walker.entry
        if walker.found and entry is not None:
            self.metatags.clear_active(entry)
            entry.ctx_id = -1
            self.metatags.touch(entry, now)
        requests = ([] if walker.origin is None else [walker.origin])
        requests.extend(walker.waiters)
        # Waiters merged during the walk are served in arrival order. A
        # take-load consumes the entry; anything queued behind it sees a
        # miss again — stores are replayed through MetaIO so their
        # payload is never dropped.
        consumed = not walker.found or entry is None
        if not walker.allocm_done:
            # walker retired without ever claiming a way
            self.note_allocm(walker)
        self.xregs.release(walker.ctx, now)
        del self._walkers[walker.tag]
        for msg in requests:
            if consumed:
                if msg.event == EV_META_STORE and walker.found:
                    self.stats.inc("store_replays")
                    self.metaio_in.enq(msg)
                else:
                    if served is not None:
                        served.append(msg.uid)
                    self._respond(msg, 0, b"", self.config.hit_latency)
                continue
            if served is not None:
                served.append(msg.uid)
            if msg.event == EV_META_STORE:
                if msg is not walker.origin:
                    self._apply_store(entry, msg.fields["payload"])
                self._respond(msg, 1, b"", 1)
                continue
            if msg.fields.get("preload"):
                self._respond(msg, 1, b"", 1)
                continue
            data = b""
            if entry.sector_start >= 0:
                data = self.dataram.read_sectors(entry.sector_start,
                                                 entry.sector_end)
            self._respond(msg, 1, data, self._hit_latency_for(len(data)))
            if msg.fields.get("take"):
                released = self.metatags.deallocate(entry.tag)
                if released.sector_start >= 0:
                    self.dataram.free(
                        released.sector_start,
                        released.sector_end - released.sector_start,
                    )
                self.stats.inc("takes")
                consumed = True
        if bus is not None and bus.wants(WalkerRetire):
            costs = ex.costs if ex is not None else None
            bus.publish(WalkerRetire(cycle=now, component=self.name,
                                     tag=walker.tag,
                                     found=walker.found,
                                     lifetime=now - walker.started_at,
                                     action_costs=tuple(costs or ()),
                                     walk_id=walker.walk_id,
                                     served=tuple(served or ())))

    # ------------------------------------------------------------------
    # warm-up
    # ------------------------------------------------------------------
    def warm(self, tag: Tag, data: bytes) -> bool:
        """Install ``tag`` with ``data`` instantly (zero-cost preload).

        Experiment warm-up only (e.g. the Figure-17 on-chip-fraction
        sweep); returns False when the entry or sectors can't be placed.
        """
        self.metatags.check_tag(tag)
        if self.metatags.lookup(tag) is not None:
            return True
        entry = self.metatags.allocate(tag, self.sim.now)
        if entry is None:
            return False
        if entry.sector_start >= 0:
            # evicted victim's orphaned payload
            self.dataram.free(entry.sector_start,
                              entry.sector_end - entry.sector_start)
            entry.sector_start = entry.sector_end = -1
        nsectors = max(1, (len(data) + self.config.sector_bytes - 1)
                       // self.config.sector_bytes)
        start = self.dataram.alloc(nsectors)
        if start is None:
            self.metatags.deallocate(tag)
            return False
        for i in range(nsectors):
            chunk = data[i * self.config.sector_bytes:
                         (i + 1) * self.config.sector_bytes]
            if chunk:
                self.dataram.write_sector(start + i, chunk)
        entry.sector_start = start
        entry.sector_end = start + nsectors
        entry.state = VALID_STATE
        return True

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def hit_rate(self) -> float:
        hits = self.stats.get("hits") + self.stats.get("store_hits")
        total = hits + self.stats.get("misses") + self.stats.get("nowalk_misses")
        return hits / total if total else 0.0

    def drain_complete(self) -> bool:
        """True when no request or walker is in flight."""
        return not (self._walkers or self._execq or self._internal
                    or self.metaio_in.valid)

    def finalize(self) -> None:
        """Close occupancy integrals at end of run."""
        self.xregs.finalize(self.sim.now)
