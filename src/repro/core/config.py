"""X-Cache configuration (the Chisel generator's parameter surface).

The paper's generator exposes: the meta-tag field set, `#Active` (number
of X-register contexts = concurrent walkers), `#Exe` (actions retired
per cycle), meta-tag geometry (ways × sets), data-RAM geometry (sectors,
`#wlen` words per hit), and the I/O set. Routine-table / microcode-RAM
sizes are derived from the compiled walker (§7.1: "implicitly set based
on the walker coroutines").

Table 3 presets are provided verbatim via :func:`table3_config`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

__all__ = ["XCacheConfig", "TABLE3", "table3_config",
           "COMPILE_MODES", "default_compile_mode",
           "default_min_fuse_len", "default_trace_threshold"]

# Routine-compilation modes (see repro.core.compile):
#   off    — interpret every action (the reference semantics)
#   on     — run fused basic blocks where eligible (the default)
#   verify — run both in lockstep and raise on any divergence
COMPILE_MODES = ("off", "on", "verify")

COMPILE_MODE_ENV = "REPRO_COMPILE_MODE"
MIN_FUSE_LEN_ENV = "REPRO_MIN_FUSE_LEN"
TRACE_THRESHOLD_ENV = "REPRO_TRACE_THRESHOLD"


def default_compile_mode() -> str:
    """The process-wide default, overridable via ``REPRO_COMPILE_MODE``
    (how CI's compile-verify leg runs the whole tier-1 suite in
    lockstep-differential mode without touching every config site)."""
    mode = os.environ.get(COMPILE_MODE_ENV, "on")
    if mode not in COMPILE_MODES:
        raise ValueError(
            f"{COMPILE_MODE_ENV}={mode!r} invalid; use one of {COMPILE_MODES}"
        )
    return mode


def _int_env(name: str, fallback: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return fallback
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{name}={raw!r} invalid; want an integer")


def default_min_fuse_len() -> int:
    """Shortest basic block worth fusing (``REPRO_MIN_FUSE_LEN``).

    Fusing a single action buys nothing over the interpreter's cached
    dispatch, so the compiler leaves blocks below this length
    interpreted. Must be >= 1.
    """
    return _int_env(MIN_FUSE_LEN_ENV, 2)


def default_trace_threshold() -> int:
    """Routine invocations before its hot path is trace-compiled
    (``REPRO_TRACE_THRESHOLD``). 0 disables trace compilation; the
    block compiler alone then serves ``compile_mode=on``.
    """
    return _int_env(TRACE_THRESHOLD_ENV, 16)


@dataclass(frozen=True)
class XCacheConfig:
    """Parameters of one X-Cache instance."""

    # controller
    num_active: int = 8        # #Active: X-register contexts / concurrent walkers
    num_exe: int = 4           # #Exe: actions retired per cycle
    xregs_per_walker: int = 8  # temporaries per context
    hit_latency: int = 3       # paper §4.2: 3-cycle load-to-use on a hit
    hit_ports: int = 1         # dedicated hit read ports (fully pipelined)
    sched_window: int = 8      # MetaIO entries the trigger stage scans per
    #                            cycle (1 = strict head-of-line blocking)

    # meta-tag array
    ways: int = 8
    sets: int = 64
    tag_fields: Tuple[str, ...] = ("key",)
    tag_bytes: int = 8         # meta-tag width in bytes (energy model)

    # data RAM
    sector_bytes: int = 8      # fixed sector granularity
    sectors_per_entry_max: int = 64
    data_sectors: int = 4096   # total data RAM capacity in sectors
    wlen: int = 4              # #Word: words supplied to the datapath per hit

    # DRAM interface
    block_bytes: int = 64
    max_outstanding_fills: int = 32

    # routine execution: interpreted, fused-block compiled, or lockstep
    # differential (see repro.core.compile)
    compile_mode: str = field(default_factory=default_compile_mode)
    # shortest basic block the routine compiler fuses (>= 1)
    min_fuse_len: int = field(default_factory=default_min_fuse_len)
    # routine invocations before its hot path is trace-compiled into a
    # guarded episode closure (see repro.core.trace_compile); 0 = off
    trace_threshold: int = field(default_factory=default_trace_threshold)

    name: str = "xcache"

    def __post_init__(self) -> None:
        if self.compile_mode not in COMPILE_MODES:
            raise ValueError(
                f"compile_mode {self.compile_mode!r} invalid; "
                f"use one of {COMPILE_MODES}"
            )
        if self.min_fuse_len < 1:
            raise ValueError(
                f"min_fuse_len must be >= 1, got {self.min_fuse_len}"
            )
        if self.trace_threshold < 0:
            raise ValueError(
                f"trace_threshold must be >= 0, got {self.trace_threshold}"
            )
        if self.sets & (self.sets - 1):
            raise ValueError("sets must be a power of two")
        if self.num_active <= 0 or self.num_exe <= 0:
            raise ValueError("num_active and num_exe must be positive")
        if not self.tag_fields:
            raise ValueError("at least one meta-tag field is required")
        if self.data_sectors <= 0 or self.sector_bytes <= 0:
            raise ValueError("data RAM must have capacity")

    @property
    def entries(self) -> int:
        return self.ways * self.sets

    @property
    def data_bytes(self) -> int:
        return self.data_sectors * self.sector_bytes

    @property
    def meta_bytes(self) -> int:
        """Total meta-tag storage (tag + state/pointer overhead) in bytes."""
        # tag + 2 sector pointers (2B each) + state/valid/active byte
        return self.entries * (self.tag_bytes + 5)

    def scaled(self, factor: float) -> "XCacheConfig":
        """Scale geometry down for fast CI runs (sets and data sectors)."""
        if factor <= 0 or factor > 1:
            raise ValueError("factor must be in (0, 1]")
        new_sets = max(1, int(self.sets * factor))
        # keep power of two
        while new_sets & (new_sets - 1):
            new_sets += 1
        return replace(
            self,
            sets=new_sets,
            data_sectors=max(64, int(self.data_sectors * factor)),
        )


# Table 3 of the paper: pareto-optimal geometry per DSA.
# columns: #Active, #Exe, #Way, #Set, #Word
TABLE3: Dict[str, Tuple[int, int, int, int, int]] = {
    "widx": (16, 2, 8, 1024, 4),
    "dasx": (16, 4, 8, 1024, 4),
    "sparch": (32, 4, 8, 512, 4),
    "gamma": (32, 4, 8, 512, 4),
    "graphpulse": (16, 4, 1, 131072, 8),
}

_TAG_FIELDS: Dict[str, Tuple[str, ...]] = {
    "widx": ("key",),
    "dasx": ("key",),
    "sparch": ("row",),       # row id of matrix B (the paper's col idx of A)
    "gamma": ("row",),
    "graphpulse": ("vertex",),
}


def table3_config(dsa: str, scale: float = 1.0) -> XCacheConfig:
    """Return the paper's Table-3 geometry for ``dsa``.

    ``scale`` shrinks sets/data-RAM for CI-speed runs while preserving
    associativity and controller parallelism (the quantities the
    evaluation sweeps).
    """
    key = dsa.lower()
    if key not in TABLE3:
        raise KeyError(f"unknown DSA {dsa!r}; have {sorted(TABLE3)}")
    active, exe, ways, sets, word = TABLE3[key]
    config = XCacheConfig(
        num_active=active,
        num_exe=exe,
        xregs_per_walker=16,
        ways=ways,
        sets=sets,
        wlen=word,
        tag_fields=_TAG_FIELDS[key],
        # data RAM sized to hold every entry at one sector per word
        data_sectors=ways * sets * word,
        name=f"xcache-{key}",
    )
    if scale != 1.0:
        config = config.scaled(scale)
    return config
