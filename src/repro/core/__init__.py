"""X-Cache core: meta-tags, microcoded walkers, the programmable controller.

The paper's three ideas map to:

* meta-tags            → :mod:`repro.core.metatag`
* X-Actions (microcode) → :mod:`repro.core.isa`, :mod:`repro.core.actions`
* X-Routines (coroutine walkers) → :mod:`repro.core.walker`,
  :mod:`repro.core.controller`
"""

from .compile import (
    BoundBlock,
    CompiledBlock,
    CompiledRoutine,
    CompileVerifyError,
    compile_routine,
)
from .config import (
    COMPILE_MODES,
    TABLE3,
    XCacheConfig,
    default_compile_mode,
    table3_config,
)
from .isa import IMM, MSG, Action, ActionCategory, Opcode, Operand, R
from .messages import (
    DEFAULT_STATE,
    EV_FILL,
    EV_META_LOAD,
    EV_META_STORE,
    VALID_STATE,
    Message,
)
from .metatag import MetaTagArray, MetaTagEntry
from .dataram import DataRAM
from .xregs import XContext, XRegisterFile
from .microcode import MicrocodeError, MicrocodeRAM, Routine, RoutineTable
from .walker import CompiledWalker, Transition, WalkerSpec, compile_walker, op
from .controller import Controller, MetaResponse, WalkerRun
from .disasm import ProgramStats, disassemble, program_stats
from .lint import (
    LintFinding,
    check_compile,
    check_context,
    lint_walker,
    max_register,
)
from .xcache import XCacheSystem
from .threadctrl import ThreadController, WalkStep, fuse_walk_steps
from .energy import EnergyBreakdown, EnergyModel, EnergyParams
from .area import ASIC_REFERENCE, FPGA_REFERENCE, AreaReport, SynthesisModel
from .hierarchy import CacheBackedMemory, MetaL1, StreamBuffer

__all__ = [
    "XCacheConfig", "TABLE3", "table3_config",
    "COMPILE_MODES", "default_compile_mode",
    "CompiledBlock", "CompiledRoutine", "BoundBlock", "compile_routine",
    "CompileVerifyError",
    "Action", "ActionCategory", "Opcode", "Operand", "R", "IMM", "MSG",
    "Message", "EV_META_LOAD", "EV_META_STORE", "EV_FILL",
    "DEFAULT_STATE", "VALID_STATE",
    "MetaTagArray", "MetaTagEntry", "DataRAM", "XContext", "XRegisterFile",
    "Routine", "RoutineTable", "MicrocodeRAM", "MicrocodeError",
    "WalkerSpec", "Transition", "CompiledWalker", "compile_walker", "op",
    "Controller", "MetaResponse", "WalkerRun", "XCacheSystem",
    "disassemble", "program_stats", "ProgramStats",
    "lint_walker", "check_context", "check_compile", "max_register",
    "LintFinding",
    "ThreadController", "WalkStep", "fuse_walk_steps",
    "EnergyModel", "EnergyParams", "EnergyBreakdown",
    "SynthesisModel", "AreaReport", "FPGA_REFERENCE", "ASIC_REFERENCE",
    "CacheBackedMemory", "MetaL1", "StreamBuffer",
]
