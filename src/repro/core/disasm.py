"""Microcode disassembler and program statistics.

The paper ships a compiler from walker coroutine tables to microcode;
this module is the matching *inspection* tool: render a compiled walker
the way ``objdump`` renders a binary — the routine table as a
state×event grid of pointers, each routine as numbered actions — and
summarize the derived structure sizes the Chisel generator would
instantiate ("the structures implicitly scale up or down based on
walker FSM complexity", §7.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .isa import Action, ActionCategory, Opcode
from .microcode import ACTION_BYTES
from .trace_compile import TraceBuildError, iter_trace_steps
from .walker import CompiledWalker

__all__ = ["disassemble", "ProgramStats", "program_stats"]


def _trace_annotations(program: CompiledWalker,
                       routine) -> Dict[int, str]:
    """Per-pc trace-membership comments for ``routine`` (empty when no
    path is recorded or the recorded path no longer replays)."""
    path = program.ram.trace_path(routine.name)
    if path is None:
        return {}
    compiled = program.ram.compiled_routine(routine.name)
    spans = {b.start: (b.start, b.end) for b in compiled.blocks}
    notes: Dict[int, str] = {}
    try:
        for step in iter_trace_steps(routine, path, spans.get):
            kind = step[0]
            if kind == "block":
                notes[step[1]] = (f"trace: fused block "
                                  f"[{step[1]}..{step[2]})")
            elif kind == "inline":
                notes[step[1]] = "trace: inlined"
            elif kind == "guard":
                _, pc, taken, target = step
                assumed = target if taken else pc + 1
                notes[pc] = (f"trace: guard (assumes "
                             f"{'taken' if taken else 'not-taken'} "
                             f"-> {assumed})")
            else:  # exec boundary
                _, pc, next_pc, terminated = step
                tail = ("episode end" if terminated
                        else f"expects -> {next_pc}")
                notes[pc] = f"trace: exec boundary ({tail})"
    except TraceBuildError as err:
        return {-1: f"trace: recorded path does not replay ({err})"}
    return notes


def _format_action(index: int, action: Action) -> str:
    parts: List[str] = [action.op.value]
    if action.dst is not None:
        parts.append(repr(action.dst))
    for operand in (action.a, action.b):
        if operand is not None:
            parts.append(repr(operand))
    if action.target is not None:
        parts.append(f"-> {action.target}")
    if action.queue is not None:
        parts.append(f"[{action.queue}]")
    for key, value in action.attrs:
        if key == "fields" and not value:
            continue
        if key == "hash_fields" and not value:
            continue
        parts.append(f"{key}={value!r}")
    return f"    {index:3d}: " + " ".join(parts)


def disassemble(program: CompiledWalker) -> str:
    """Human-readable listing of a compiled walker."""
    lines = [f"walker {program.name!r}"]
    if program.spec.description:
        lines.append(f"  ; {program.spec.description}")
    table = program.table
    lines.append(f"  routine table: {len(table.states)} states x "
                 f"{len(table.events)} events "
                 f"({table.num_entries} pointer slots, {len(table)} filled)")
    lines.append(f"  microcode RAM: {program.ram.total_actions} actions, "
                 f"{program.ram.bytes} bytes")
    for (state, event), routine in table.items():
        offset = program.ram.offset_of(routine.name)
        lines.append(f"  [{state}, {event}] @ pc={offset}:")
        compiled = program.ram.compiled_routine(routine.name)
        block_starts = {b.start: b for b in compiled.blocks}
        trace_notes = _trace_annotations(program, routine)
        if -1 in trace_notes:
            lines.append(f"    ; {trace_notes[-1]}")
        elif trace_notes:
            lines.append("    ; hot path trace recorded "
                         f"({len(trace_notes)} steps)")
        block_end = -1
        for i, action in enumerate(routine.actions):
            block = block_starts.get(i)
            if block is not None:
                lines.append(f"    ; fused block [{block.start}..{block.end})"
                             f" ({block.n} actions, 1 dispatch)")
                block_end = block.end
            elif i == block_end:
                lines.append("    ; interpreted")
                block_end = -1
            note = trace_notes.get(i)
            if note is not None:
                lines.append(f"    ; {note}")
            lines.append(_format_action(i, action))
    return "\n".join(lines)


@dataclass(frozen=True)
class ProgramStats:
    """Structure sizes and action mix of a compiled walker."""

    routines: int
    states: int
    events: int
    table_entries: int
    total_actions: int
    microcode_bytes: int
    actions_by_category: Dict[str, int]
    max_routine_length: int
    branchy_routines: int      # routines containing control flow
    fused_blocks: int = 0      # basic blocks the routine compiler fused
    fused_actions: int = 0     # actions covered by those blocks
    traced_routines: int = 0   # routines with a recorded hot-path trace
    trace_guards: int = 0      # inlined guards across those traces

    def render(self) -> str:
        mix = ", ".join(f"{k}={v}" for k, v in
                        sorted(self.actions_by_category.items()))
        out = (f"{self.routines} routines over {self.states} states x "
               f"{self.events} events; {self.total_actions} actions "
               f"({self.microcode_bytes} B): {mix}; "
               f"{self.fused_blocks} fused blocks cover "
               f"{self.fused_actions} actions")
        if self.traced_routines:
            out += (f"; {self.traced_routines} traced routines "
                    f"({self.trace_guards} guards)")
        return out


def program_stats(program: CompiledWalker) -> ProgramStats:
    """Derived generator parameters for a walker program."""
    by_category: Dict[str, int] = {}
    max_len = 0
    branchy = 0
    fused_blocks = 0
    fused_actions = 0
    traced_routines = 0
    trace_guards = 0
    for routine in program.ram.routines:
        max_len = max(max_len, len(routine))
        if any(a.category is ActionCategory.CONTROL for a in routine.actions):
            branchy += 1
        for action in routine.actions:
            key = action.category.value
            by_category[key] = by_category.get(key, 0) + 1
        compiled = program.ram.compiled_routine(routine.name)
        fused_blocks += len(compiled.blocks)
        fused_actions += compiled.fused_actions
        path = program.ram.trace_path(routine.name)
        if path is not None:
            traced_routines += 1
            spans = {b.start: (b.start, b.end) for b in compiled.blocks}
            try:
                trace_guards += sum(
                    1 for step in iter_trace_steps(routine, path, spans.get)
                    if step[0] == "guard")
            except TraceBuildError:
                pass  # check_traces reports the divergence
    table = program.table
    return ProgramStats(
        routines=len(program.ram),
        states=len(table.states),
        events=len(table.events),
        table_entries=table.num_entries,
        total_actions=program.ram.total_actions,
        microcode_bytes=program.ram.bytes,
        actions_by_category=by_category,
        max_routine_length=max_len,
        branchy_routines=branchy,
        fused_blocks=fused_blocks,
        fused_actions=fused_actions,
        traced_routines=traced_routines,
        trace_guards=trace_guards,
    )
