"""The sectored data RAM.

"Logically, the data RAM is organized as fixed-granularity sectors.
Each data element can occupy multiple sectors depending on the size
(e.g., number of non-zeros in a row)." (§4.1 y6)

Sectors are allocated as contiguous [start, end) ranges so a meta-tag
entry can locate its payload with two pointers. Allocation is first-fit
over a free-range list; misses that cannot get sectors back-pressure the
walker (ALLOCD retries).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..sim.stats import StatGroup

__all__ = ["DataRAM"]


class DataRAM:
    """Sector-granular on-chip data store."""

    def __init__(self, num_sectors: int, sector_bytes: int,
                 access_bytes: int = 32) -> None:
        if num_sectors <= 0 or sector_bytes <= 0:
            raise ValueError("data RAM needs positive geometry")
        self.num_sectors = num_sectors
        self.sector_bytes = sector_bytes
        # The physical access width (#wlen words): reads are charged in
        # units of this banked width (energy model).
        self.access_bytes = max(access_bytes, sector_bytes)
        self._storage = bytearray(num_sectors * sector_bytes)
        # free ranges as sorted, disjoint [start, end) pairs
        self._free: List[Tuple[int, int]] = [(0, num_sectors)]
        self.stats = StatGroup("data-ram")

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def alloc(self, nsectors: int) -> Optional[int]:
        """First-fit allocate ``nsectors`` contiguous sectors.

        Returns the start sector, or None when no contiguous range fits
        (the walker must free or stall).
        """
        if nsectors <= 0:
            raise ValueError(f"allocation of {nsectors} sectors")
        for i, (start, end) in enumerate(self._free):
            if end - start >= nsectors:
                if end - start == nsectors:
                    self._free.pop(i)
                else:
                    self._free[i] = (start + nsectors, end)
                self.stats.inc("allocations")
                self.stats.inc("sectors_allocated", nsectors)
                return start
        self.stats.inc("alloc_failures")
        return None

    def can_alloc(self, nsectors: int) -> bool:
        """True when a contiguous range of ``nsectors`` is available."""
        return any(end - start >= nsectors for start, end in self._free)

    def free(self, start: int, nsectors: int) -> None:
        """Release [start, start+nsectors) and coalesce neighbours."""
        if nsectors <= 0:
            return
        end = start + nsectors
        if not (0 <= start < end <= self.num_sectors):
            raise ValueError(f"free range [{start},{end}) outside RAM")
        # insert keeping order, then coalesce
        ranges = self._free
        pos = 0
        while pos < len(ranges) and ranges[pos][0] < start:
            pos += 1
        if pos > 0 and ranges[pos - 1][1] > start:
            raise ValueError(f"double free overlapping {ranges[pos - 1]}")
        if pos < len(ranges) and ranges[pos][0] < end:
            raise ValueError(f"double free overlapping {ranges[pos]}")
        ranges.insert(pos, (start, end))
        # coalesce with previous / next
        merged: List[Tuple[int, int]] = []
        for r in ranges:
            if merged and merged[-1][1] == r[0]:
                merged[-1] = (merged[-1][0], r[1])
            else:
                merged.append(r)
        self._free = merged
        self.stats.inc("frees")
        self.stats.inc("sectors_freed", nsectors)

    @property
    def free_sectors(self) -> int:
        return sum(end - start for start, end in self._free)

    @property
    def used_sectors(self) -> int:
        return self.num_sectors - self.free_sectors

    # ------------------------------------------------------------------
    # data movement (tracked for the energy model)
    # ------------------------------------------------------------------
    def write_sector(self, sector: int, data: bytes, offset: int = 0) -> None:
        if not 0 <= sector < self.num_sectors:
            raise IndexError(f"sector {sector} outside RAM")
        if offset + len(data) > self.sector_bytes:
            raise ValueError(
                f"{len(data)}B at offset {offset} overflows "
                f"{self.sector_bytes}B sector"
            )
        base = sector * self.sector_bytes + offset
        self._storage[base:base + len(data)] = data
        self.stats.inc("bytes_written", len(data))

    def peek_sectors(self, start: int, end: int) -> bytes:
        """Read sectors [start, end) without touching access stats.

        Inspection only (verify-mode shadow reads, tests): the energy
        model must see exactly one accounted access per architectural
        read, so anything that merely *looks* goes through here.
        """
        if not (0 <= start <= end <= self.num_sectors):
            raise IndexError(f"range [{start},{end}) outside RAM")
        return bytes(self._storage[start * self.sector_bytes:
                                   end * self.sector_bytes])

    def read_sectors(self, start: int, end: int) -> bytes:
        """Read sectors [start, end) — the hit-port data return."""
        if not (0 <= start <= end <= self.num_sectors):
            raise IndexError(f"range [{start},{end}) outside RAM")
        lo = start * self.sector_bytes
        hi = end * self.sector_bytes
        self.stats.inc("bytes_read", hi - lo)
        self.stats.inc("read_accesses",
                       max(1, -(-(hi - lo) // self.access_bytes)))
        return bytes(self._storage[lo:hi])

    def __repr__(self) -> str:  # pragma: no cover
        return (f"DataRAM({self.num_sectors}x{self.sector_bytes}B, "
                f"used={self.used_sectors})")
