"""The meta-tag array.

The defining structure of X-Cache: a ways×sets associative array tagged
by *DSA metadata* (hash keys, vertex ids, row indices) instead of block
addresses. Each entry carries:

* the meta-tag tuple,
* the walker FSM state of the entry (``Default``/walker states/``Valid``),
* the *active* bit — a walker is in flight for this tag (the paper's
  active-meta-tag bitmap, which both merges duplicate misses and routes
  DRAM responses back to the stalled walker),
* the bound X-register context while active,
* explicit start/end sector pointers into the decoupled data RAM
  ("like decoupled sector-caches"),
* waiters: datapath requests that arrived while the walk was in flight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..obs.events import CacheEvict, CacheFill, CacheModel
from ..sim.stats import StatGroup
from .messages import DEFAULT_STATE, VALID_STATE, Message

__all__ = ["MetaTagEntry", "MetaTagArray"]

Tag = Tuple[int, ...]


@dataclass
class MetaTagEntry:
    set_index: int
    way: int
    valid: bool = False
    tag: Optional[Tag] = None
    state: str = DEFAULT_STATE
    active: bool = False
    ctx_id: int = -1
    sector_start: int = -1
    sector_end: int = -1
    last_used: int = 0
    waiters: List[Message] = field(default_factory=list)

    @property
    def servable(self) -> bool:
        """Hit-port servable: present, refill complete."""
        return self.valid and self.state == VALID_STATE and not self.active

    def reset(self) -> None:
        self.valid = False
        self.tag = None
        self.state = DEFAULT_STATE
        self.active = False
        self.ctx_id = -1
        self.sector_start = -1
        self.sector_end = -1
        self.waiters.clear()


class MetaTagArray:
    """Associative array over meta-tag tuples."""

    def __init__(self, ways: int, sets: int, tag_fields: Tuple[str, ...]) -> None:
        if ways <= 0:
            raise ValueError("ways must be positive")
        if sets & (sets - 1) or sets <= 0:
            raise ValueError("sets must be a positive power of two")
        self.ways = ways
        self.sets = sets
        self.tag_fields = tag_fields
        self._array: List[List[MetaTagEntry]] = [
            [MetaTagEntry(s, w) for w in range(ways)] for s in range(sets)
        ]
        self._index: Dict[Tag, MetaTagEntry] = {}
        self.stats = StatGroup("meta-tags")
        # observability: the owning controller propagates its event bus
        # and simulator here (see Controller.ensure_bus) so fills and
        # evictions publish with (set, way) coordinates. Unarmed cost is
        # one `bus is None` check per allocate/evict/deallocate.
        self.bus = None
        self.sim = None
        self.component = "meta-tags"
        self._announced = False
        # incremental active-walker count: `active` flips only through
        # mark_active/clear_active and the internal evict/dealloc paths,
        # so active_walkers() is O(1) instead of an index scan
        self._active_count = 0

    # ------------------------------------------------------------------
    # indexing
    # ------------------------------------------------------------------
    def set_of(self, tag: Tag) -> int:
        """Set index for a tag tuple.

        The first field indexes directly (sequential ids spread across
        sets, matching the generator's direct-mapped GraphPulse setup);
        additional fields are folded in with odd multipliers.
        """
        index = tag[0]
        for extra in tag[1:]:
            index ^= (extra * 0x9E3779B97F4A7C15) >> 16
        return index & (self.sets - 1)

    def check_tag(self, tag: Tag) -> None:
        if len(tag) != len(self.tag_fields):
            raise ValueError(
                f"tag {tag} has {len(tag)} fields; "
                f"array is tagged by {self.tag_fields}"
            )

    # ------------------------------------------------------------------
    # lookup / allocate / free
    # ------------------------------------------------------------------
    def lookup(self, tag: Tag) -> Optional[MetaTagEntry]:
        """Associative search (no side effects beyond stats)."""
        self.stats.inc("lookups")
        entry = self._index.get(tag)
        if entry is not None:
            self.stats.inc("tag_hits")
        return entry

    def touch(self, entry: MetaTagEntry, now: int) -> None:
        entry.last_used = now

    # ------------------------------------------------------------------
    # active-bitmap bookkeeping (O(1) active_walkers)
    # ------------------------------------------------------------------
    def mark_active(self, entry: MetaTagEntry) -> None:
        """Set the entry's active bit (a walker is in flight)."""
        if not entry.active:
            entry.active = True
            self._active_count += 1

    def clear_active(self, entry: MetaTagEntry) -> None:
        """Clear the entry's active bit (the walker released it)."""
        if entry.active:
            entry.active = False
            self._active_count -= 1

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _now(self) -> int:
        return self.sim.now if self.sim is not None else 0

    def announce(self, bus) -> None:
        """Publish the one-shot :class:`CacheModel` geometry event.

        Called lazily from every armed publish path (and from the
        controller before its first request-path event), so any
        cache-contents observer sees the geometry before the first
        access it must classify. One flag check when already announced.
        """
        if self._announced:
            return
        if not bus.wants(CacheModel):
            return
        self._announced = True
        bus.publish(CacheModel(
            cycle=self._now(), component=self.component, kind="meta",
            ways=self.ways, sets=self.sets,
            tag_class=",".join(self.tag_fields)))

    def _publish_fill(self, bus, entry: MetaTagEntry) -> None:
        self.announce(bus)
        if not bus.wants(CacheFill):
            return
        assert entry.tag is not None
        bus.publish(CacheFill(cycle=self._now(), component=self.component,
                              tag=entry.tag, set_index=entry.set_index,
                              way=entry.way))

    def _publish_evict(self, bus, tag: Tag, set_index: int, way: int,
                       reason: str) -> None:
        if not bus.wants(CacheEvict):
            return
        bus.publish(CacheEvict(cycle=self._now(), component=self.component,
                               tag=tag, set_index=set_index, way=way,
                               reason=reason))

    def can_allocate(self, tag: Tag) -> bool:
        """True when ALLOCM for ``tag`` would succeed (free/evictable way)."""
        return self.claimable_ways(tag) > 0

    def claimable_ways(self, tag: Tag) -> int:
        """How many ways of the tag's set an ALLOCM could claim now."""
        ways = self._array[self.set_of(tag)]
        return sum(1 for e in ways if not e.valid or not e.active)

    def allocate(self, tag: Tag, now: int) -> Optional[MetaTagEntry]:
        """Claim an entry for ``tag`` (the ALLOCM action).

        Prefers an invalid way; otherwise evicts the LRU *inactive*
        entry. Returns None when every way in the set hosts an active
        walker — the structural hazard the paper's scheduler avoids by
        holding the triggering message.
        """
        self.check_tag(tag)
        if tag in self._index:
            raise ValueError(f"tag {tag} already present")
        ways = self._array[self.set_of(tag)]
        target = None
        for entry in ways:
            if not entry.valid:
                target = entry
                break
        if target is None:
            candidates = [e for e in ways if not e.active]
            if not candidates:
                self.stats.inc("alloc_conflicts")
                return None
            target = min(candidates, key=lambda e: e.last_used)
            self._evict(target)
        target.valid = True
        target.tag = tag
        target.state = DEFAULT_STATE
        target.active = False
        target.last_used = now
        # Deliberately NOT clearing sector_start/end: a fresh way carries
        # -1, an evicted victim carries its orphaned data-RAM range, which
        # the claimant (ALLOCM / warm) must free before use.
        self._index[tag] = target
        self.stats.inc("allocations")
        if self.bus is not None:
            self._publish_fill(self.bus, target)
        return target

    def _evict(self, entry: MetaTagEntry) -> None:
        assert entry.tag is not None
        del self._index[entry.tag]
        if entry.active:
            self._active_count -= 1
        victim_tag = entry.tag
        start, end = entry.sector_start, entry.sector_end
        entry.reset()
        # preserve the orphaned sector range for the claimant to free
        entry.sector_start = start
        entry.sector_end = end
        self.stats.inc("evictions")
        if self.bus is not None:
            self._publish_evict(self.bus, victim_tag, entry.set_index,
                                entry.way, "conflict")

    def deallocate(self, tag: Tag) -> MetaTagEntry:
        """Free an entry (the DEALLOCM action); returns it for cleanup."""
        entry = self._index.get(tag)
        if entry is None:
            raise KeyError(f"tag {tag} not present")
        del self._index[tag]
        if entry.active:
            self._active_count -= 1
        released = MetaTagEntry(entry.set_index, entry.way)
        released.sector_start = entry.sector_start
        released.sector_end = entry.sector_end
        entry.reset()
        self.stats.inc("deallocations")
        if self.bus is not None:
            self._publish_evict(self.bus, tag, entry.set_index, entry.way,
                                "dealloc")
        return released

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        return len(self._index)

    def active_walkers(self) -> int:
        # incremental counter, not an index scan: this sits on armed
        # publish paths (heatmap sampling) and service health probes
        return self._active_count

    def active_walkers_scan(self) -> int:
        """Reference O(n) count (the counters-vs-scan equivalence check)."""
        return sum(1 for e in self._index.values() if e.active)

    def entries(self):
        """Iterate live entries (drain/scan operations, testing)."""
        return list(self._index.values())

    def __repr__(self) -> str:  # pragma: no cover
        return (f"MetaTagArray({self.ways}x{self.sets}, "
                f"live={self.occupancy()})")
