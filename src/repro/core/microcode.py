"""Routines, the routine table, and the microcode RAM.

"X-Cache compiles the actual procedures implementing the walking and
orchestration down to a microcode binary and stores it in the routine
µ-code RAM. The RAM is partitioned into multiple routine handlers."
(§4.1 y4)

A :class:`Routine` is a straight-line sequence of actions with
intra-routine branches; it runs non-blocking to completion once
triggered. The :class:`RoutineTable` is the two-dimensional
``[state, event] → routine`` dispatch array; :class:`MicrocodeRAM`
aggregates all routines and reports the derived structure sizes the
generator uses ("the structures implicitly scale up or down based on
walker FSM complexity", §7.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .isa import Action, Opcode

__all__ = ["Routine", "RoutineTable", "MicrocodeRAM", "MicrocodeError"]

ACTION_BYTES = 4  # encoded microcode word size (energy/area accounting)


class MicrocodeError(ValueError):
    """Malformed routine or routine table."""


@dataclass(frozen=True)
class Routine:
    """A compiled handler: runs start-to-finish, never blocks."""

    name: str
    actions: Tuple[Action, ...]

    def __post_init__(self) -> None:
        if not self.actions:
            raise MicrocodeError(f"routine {self.name!r} is empty")
        for i, action in enumerate(self.actions):
            if action.target is not None:
                if not 0 <= action.target <= len(self.actions):
                    raise MicrocodeError(
                        f"routine {self.name!r} action {i} branches to "
                        f"{action.target}, outside [0, {len(self.actions)}]"
                    )
        self._validate_termination()

    def _validate_termination(self) -> None:
        """Every path must execute a STATE or DEALLOCM before ending.

        A walker that runs off the end of a routine without updating its
        state would wedge (no event will ever re-wake it in a consistent
        state); the compiler rejects such programs, mirroring the paper's
        "finalized with an update to the state".
        """
        n = len(self.actions)
        terminal = {Opcode.STATE, Opcode.DEALLOCM}
        # DFS over (pc, updated) with cycle guard.
        seen: Set[Tuple[int, bool]] = set()
        stack: List[Tuple[int, bool]] = [(0, False)]
        while stack:
            pc, updated = stack.pop()
            if pc >= n:
                if not updated:
                    raise MicrocodeError(
                        f"routine {self.name!r} has a path that ends "
                        "without a state update (STATE/deallocM)"
                    )
                continue
            if (pc, updated) in seen:
                continue
            seen.add((pc, updated))
            action = self.actions[pc]
            now_updated = updated or action.op in terminal
            stack.append((pc + 1, now_updated))
            if action.target is not None:
                stack.append((action.target, now_updated))

    def __len__(self) -> int:
        return len(self.actions)

    @property
    def bytes(self) -> int:
        return len(self.actions) * ACTION_BYTES


class RoutineTable:
    """The [state × event] dispatch array."""

    def __init__(self) -> None:
        self._table: Dict[Tuple[str, str], Routine] = {}
        self.states: List[str] = []
        self.events: List[str] = []

    def install(self, state: str, event: str, routine: Routine) -> None:
        key = (state, event)
        if key in self._table:
            raise MicrocodeError(
                f"duplicate routine for [state={state!r}, event={event!r}]"
            )
        self._table[key] = routine
        if state not in self.states:
            self.states.append(state)
        if event not in self.events:
            self.events.append(event)

    def lookup(self, state: str, event: str) -> Optional[Routine]:
        return self._table.get((state, event))

    def require(self, state: str, event: str) -> Routine:
        routine = self._table.get((state, event))
        if routine is None:
            raise MicrocodeError(
                f"no routine for [state={state!r}, event={event!r}]; "
                f"states={self.states}, events={self.events}"
            )
        return routine

    def handles(self, state: str, event: str) -> bool:
        return (state, event) in self._table

    @property
    def num_entries(self) -> int:
        """Physical table size: |states| × |events| pointer slots."""
        return len(self.states) * len(self.events)

    def items(self):
        return sorted(self._table.items())

    def __len__(self) -> int:
        return len(self._table)


class MicrocodeRAM:
    """All routines of one walker program, with derived sizes.

    Building the RAM also runs the routine compiler
    (:func:`repro.core.compile.compile_routine`) over every routine —
    routines are immutable once installed, so their basic-block
    partition and fused closures are a property of the program, paid
    once here rather than per controller. The compiled artifacts hold
    closures, so they are dropped on pickling and rebuilt on demand.
    """

    def __init__(self, routines: Sequence[Routine]) -> None:
        names = [r.name for r in routines]
        if len(set(names)) != len(names):
            raise MicrocodeError(f"duplicate routine names in {names}")
        self.routines: Tuple[Routine, ...] = tuple(routines)
        self._offsets: Dict[str, int] = {}
        offset = 0
        for routine in self.routines:
            self._offsets[routine.name] = offset
            offset += len(routine)
        self.total_actions = offset
        from .compile import MIN_FUSE_LEN, compile_routine
        self._compiled = {(r.name, MIN_FUSE_LEN): compile_routine(r)
                          for r in self.routines}
        # routine name -> recorded hot path (repro.core.trace_compile
        # TracePath); paths are a property of the program, so a trace
        # recorded by one controller serves every controller sharing
        # this RAM. Controllers bind their own guarded closures.
        self._traces: Dict[str, object] = {}

    def routine_named(self, name: str) -> Routine:
        routine = next((r for r in self.routines if r.name == name), None)
        if routine is None:
            raise MicrocodeError(f"no routine named {name!r}")
        return routine

    def compiled_routine(self, name: str, min_fuse_len: Optional[int] = None):
        """The :class:`~repro.core.compile.CompiledRoutine` for ``name``,
        partitioned at ``min_fuse_len`` (module default when None)."""
        from .compile import MIN_FUSE_LEN, compile_routine
        key = (name, MIN_FUSE_LEN if min_fuse_len is None else min_fuse_len)
        compiled = self._compiled.get(key)
        if compiled is None:
            compiled = self._compiled[key] = compile_routine(
                self.routine_named(name), key[1])
        return compiled

    def install_trace(self, name: str, path) -> None:
        """Record ``name``'s hot path (a trace_compile.TracePath)."""
        self.routine_named(name)  # validate
        self._traces[name] = path

    def trace_path(self, name: str):
        """The recorded hot path for ``name``, or None."""
        return self._traces.get(name)

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_compiled"] = {}  # closures don't pickle; rebuilt lazily
        state["_traces"] = {}    # recorded paths are re-learned at runtime
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        # pre-PR6 pickles carry no trace store
        self.__dict__.setdefault("_traces", {})

    def offset_of(self, name: str) -> int:
        """The routine's logical "PC" in the microcode RAM."""
        return self._offsets[name]

    @property
    def bytes(self) -> int:
        return self.total_actions * ACTION_BYTES

    def __len__(self) -> int:
        return len(self.routines)
