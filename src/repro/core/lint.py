"""Static analysis for walker programs (a microcode linter).

The paper's toolflow compiles coroutine tables to microcode; this is
the companion the RTL flow would run before generation: catch the bugs
that otherwise surface as mid-simulation ActionErrors or wedged
walkers.

Checks:

* **read-before-write** — an X-register read in the *entry* routine
  before any action could have written it (registers are
  zero-initialized, so this is a warning: usually a forgotten ``mov``;
  later routines legitimately read registers earlier routines wrote).
* **unreachable-action** — actions no control-flow path reaches.
* **unreachable-transition** — a routine whose state is never produced
  by any other routine's STATE action (and is not the Default entry).
* **missing-transition** — a STATE action names a state for which some
  *plausible* event has no routine: a Fill can arrive for any state a
  walker waits in after issuing a DRAM request.
* **context-overflow** — a register index beyond ``xregs_per_walker``
  for a given configuration (checked via :func:`check_context`).
* **compile-coverage** — the routine compiler's fused-block partition
  disagrees with the interpreter's coverage model (checked via
  :func:`check_compile`): a fused block containing a non-fusible
  action, a branch landing *inside* a block (fused entry must be a
  leader), or the compiler's static register-read model diverging from
  the linter's independently derived one.
* **trace-coverage** — a recorded episode trace disagrees with the
  static program (checked via :func:`check_traces`): a path that no
  longer replays over the compiled partition, an inlined guard that is
  not a pure branch, or a boundary step whose recorded successor is
  not a successor of its action.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .compile import is_fusible, register_reads
from .config import XCacheConfig
from .isa import FUSIBLE_OPCODES, OPCODE_SOURCE_SLOTS, Action, Opcode
from .messages import DEFAULT_STATE, EV_FILL
from .trace_compile import TraceBuildError, guardable, iter_trace_steps
from .walker import CompiledWalker

__all__ = ["LintFinding", "lint_walker", "check_context", "check_compile",
           "check_traces", "max_register"]


@dataclass(frozen=True)
class LintFinding:
    """One diagnostic."""

    severity: str            # "warning" | "error"
    check: str               # slug, e.g. "read-before-write"
    routine: str             # "state@event"
    action_index: int        # -1 when the finding is routine-level
    message: str

    def render(self) -> str:
        where = (f"{self.routine}[{self.action_index}]"
                 if self.action_index >= 0 else self.routine)
        return f"{self.severity}: {self.check} at {where}: {self.message}"


def _reads(action: Action) -> Set[int]:
    regs: Set[int] = set()
    for operand in (action.a, action.b):
        if operand is not None and operand.kind == "r":
            regs.add(int(operand.value))
    for key, fields in action.attrs:
        if key in ("fields", "hash_fields"):
            for _name, operand in fields:
                if operand.kind == "r":
                    regs.add(int(operand.value))
    # INC/DEC read their destination
    if action.op in (Opcode.INC, Opcode.DEC) and action.dst is not None \
            and action.dst.kind == "r":
        regs.add(int(action.dst.value))
    return regs


def _writes(action: Action) -> Set[int]:
    if action.dst is not None and action.dst.kind == "r":
        return {int(action.dst.value)}
    return set()


def max_register(program: CompiledWalker) -> int:
    """Highest X-register index the program touches (-1 if none)."""
    highest = -1
    for routine in program.ram.routines:
        for action in routine.actions:
            for reg in _reads(action) | _writes(action):
                highest = max(highest, reg)
    return highest


def check_context(program: CompiledWalker,
                  config: XCacheConfig) -> List[LintFinding]:
    """Flag register indices beyond the configuration's context size."""
    findings: List[LintFinding] = []
    limit = config.xregs_per_walker
    for routine in program.ram.routines:
        for i, action in enumerate(routine.actions):
            over = {r for r in _reads(action) | _writes(action) if r >= limit}
            if over:
                findings.append(LintFinding(
                    "error", "context-overflow", routine.name, i,
                    f"R{max(over)} >= xregs_per_walker ({limit})"))
    return findings


def check_compile(program: CompiledWalker) -> List[LintFinding]:
    """Cross-check the routine compiler's partition against the
    interpreter's coverage model.

    The fused blocks and the linter derive their models independently
    (compile.py from ``FUSIBLE_OPCODES``/codegen, lint.py from its own
    read/write sets), so a finding here means one of the tables went
    stale — e.g. an opcode added to ``FUSIBLE_OPCODES`` without
    updating ``OPCODE_SOURCE_SLOTS``. Clean programs produce zero
    findings.
    """
    findings: List[LintFinding] = []
    for routine in program.ram.routines:
        compiled = program.ram.compiled_routine(routine.name)
        block_span: Dict[int, Tuple[int, int]] = {}
        for block in compiled.blocks:
            for pc in range(block.start, block.end):
                block_span[pc] = (block.start, block.end)
                if not is_fusible(routine.actions[pc]):
                    findings.append(LintFinding(
                        "error", "compile-coverage", routine.name, pc,
                        f"{routine.actions[pc].op.value} sits inside fused "
                        f"block [{block.start},{block.end}) but is not "
                        "fusible"))
        for i, action in enumerate(routine.actions):
            target = action.target
            if target is not None and target in block_span:
                start, end = block_span[target]
                if target != start:
                    findings.append(LintFinding(
                        "error", "compile-coverage", routine.name, i,
                        f"branch target {target} lands inside fused block "
                        f"[{start},{end}); targets must be block leaders"))
            if action.op in FUSIBLE_OPCODES \
                    and action.op in OPCODE_SOURCE_SLOTS \
                    and is_fusible(action):
                compiler_view = register_reads(action)
                lint_view = _reads(action)
                if compiler_view != lint_view:
                    findings.append(LintFinding(
                        "warning", "compile-coverage", routine.name, i,
                        f"compiler reads R{sorted(compiler_view)} but "
                        f"linter models R{sorted(lint_view)} for "
                        f"{action.op.value}"))
    return findings


def check_traces(program: CompiledWalker) -> List[LintFinding]:
    """Cross-check recorded episode traces against the static program.

    Every path the runtime recorded (``ram.trace_path``) must replay as
    a walk over the compiled partition: each fused stretch an existing
    block, every inlined branch a guardable pure branch, and every
    interpreter boundary step's recorded successor a legal successor of
    its action. A finding here means the routine text changed under the
    RAM, the recorder mis-learned a path, or the guard table went stale
    — exactly the bugs that would otherwise surface as a mid-episode
    deopt storm or a silent divergence only ``compile_mode=verify``
    catches. Programs with no recorded traces produce zero findings.
    """
    findings: List[LintFinding] = []
    for routine in program.ram.routines:
        path = program.ram.trace_path(routine.name)
        if path is None:
            continue
        compiled = program.ram.compiled_routine(routine.name)
        spans = {block.start: (block.start, block.end)
                 for block in compiled.blocks}
        try:
            steps = list(iter_trace_steps(routine, path, spans.get))
        except TraceBuildError as err:
            findings.append(LintFinding(
                "error", "trace-coverage", routine.name, -1,
                f"recorded path does not replay: {err}"))
            continue
        for step in steps:
            kind = step[0]
            if kind == "guard":
                pc = step[1]
                action = routine.actions[pc]
                if not guardable(action):
                    findings.append(LintFinding(
                        "error", "trace-coverage", routine.name, pc,
                        f"{action.op.value} inlined as a trace guard but "
                        "is not a pure branch with bound operands"))
            elif kind == "exec":
                pc, next_pc, terminated = step[1], step[2], step[3]
                action = routine.actions[pc]
                successors = {pc + 1}
                if action.target is not None:
                    successors.add(action.target)
                if not terminated and next_pc not in successors:
                    findings.append(LintFinding(
                        "error", "trace-coverage", routine.name, pc,
                        f"recorded successor {next_pc} is not a successor "
                        f"of {action.op.value} (expected one of "
                        f"{sorted(successors)})"))
            elif kind == "inline":
                pc = step[1]
                if not is_fusible(routine.actions[pc]):
                    findings.append(LintFinding(
                        "error", "trace-coverage", routine.name, pc,
                        f"{routine.actions[pc].op.value} inlined into a "
                        "trace but is not fusible"))
    return findings


def _reachable_indices(routine) -> Set[int]:
    seen: Set[int] = set()
    stack = [0]
    n = len(routine.actions)
    while stack:
        pc = stack.pop()
        if pc >= n or pc in seen:
            continue
        seen.add(pc)
        action = routine.actions[pc]
        if action.op in (Opcode.STATE,) and action.attr("done", False):
            continue
        if action.op is Opcode.DEALLOCM:
            continue
        if action.target is not None:
            stack.append(action.target)
            # unconditional jump (beq imm,imm with equal values)?
            if action.op is Opcode.BEQ and action.a == action.b \
                    and action.a is not None and action.a.kind == "imm":
                continue
        stack.append(pc + 1)
    return seen


def lint_walker(program: CompiledWalker,
                config: Optional[XCacheConfig] = None) -> List[LintFinding]:
    """Run every check; returns findings sorted errors-first."""
    findings: List[LintFinding] = []

    produced_states: Set[str] = {DEFAULT_STATE}
    issues_fill: Dict[str, bool] = {}
    for routine in program.ram.routines:
        for action in routine.actions:
            if action.op is Opcode.STATE:
                produced_states.add(str(action.attr("state")))
        issues_fill[routine.name] = any(
            a.op is Opcode.ENQ and a.queue == "dram"
            and not a.attr("write", False)
            for a in routine.actions
        )

    for (state, event), routine in program.table.items():
        reachable = _reachable_indices(routine)

        # unreachable actions
        for i in range(len(routine.actions)):
            if i not in reachable:
                findings.append(LintFinding(
                    "warning", "unreachable-action", routine.name, i,
                    f"{routine.actions[i].op.value} is never executed"))

        # unreachable transition
        if state not in produced_states:
            findings.append(LintFinding(
                "warning", "unreachable-transition", routine.name, -1,
                f"no routine transitions into state {state!r}"))

        # read-before-write over the branch-insensitive order of
        # reachable actions; entry routines only (see module docstring)
        written: Set[int] = set()
        for i in sorted(reachable):
            action = routine.actions[i]
            if state == DEFAULT_STATE:
                for reg in _reads(action):
                    if reg not in written:
                        findings.append(LintFinding(
                            "warning", "read-before-write", routine.name, i,
                            f"R{reg} read before any write in the entry "
                            "routine"))
            written |= _writes(action)

        # missing Fill transition: a routine that issues a read fill must
        # leave the walker in a state that handles Fill
        if issues_fill[routine.name]:
            next_states = {str(a.attr("state"))
                           for a in routine.actions
                           if a.op is Opcode.STATE
                           and not a.attr("done", False)}
            for nxt in next_states:
                if not program.table.handles(nxt, EV_FILL):
                    findings.append(LintFinding(
                        "error", "missing-transition", routine.name, -1,
                        f"issues a DRAM fill but state {nxt!r} has no "
                        f"[{nxt}, Fill] routine"))

    findings.extend(check_compile(program))
    findings.extend(check_traces(program))

    if config is not None:
        findings.extend(check_context(program, config))

    findings.sort(key=lambda f: (f.severity != "error", f.routine,
                                 f.action_index))
    return findings
