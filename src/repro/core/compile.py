"""The X-Routine compiler: fused superblock execution.

Routines never change after they are installed in the microcode RAM, so
the per-action work the :class:`~repro.core.actions.ActionExecutor`
repeats on every step — opcode dispatch, operand decode, ``ExecResult``
allocation, stat-counter attribute hops — can be paid once per routine
instead of once per action. This module partitions each routine into
basic blocks and emits one *fused closure* per block: straight-line
Python that inlines the X-register / meta-tag / data-RAM mutations of
its actions, accumulates the occupancy integral in locals, and returns
a single aggregate outcome.

Block partition rules (leaders end the previous block and may start a
new one):

* action 0 (routine entry);
* every branch target (branches always land on a block boundary — the
  partitioner adds the target to the leader set);
* the action after any *boundary* action.

An action is a **boundary** (interpreter fallback) when its outcome is
data-dependent or it touches machinery the compiler does not model:
branches, ``enq`` (DRAM fills cost #blocks; self/resp events call into
the controller), ``allocM``/``deallocM`` (way claim / termination),
``allocD``/``deallocD`` (sector allocation may reclaim), variable-cost
``write`` copies, and ``state done=True`` (termination). Everything
else — the ALU, ``peek``/``read-data``/``write-data``, ``update``,
``state done=False``, ``allocR``/``deq`` — is **fusible**: cost 1, no
branch, no termination, no queue interaction.

The interpreter remains the complete reference semantics: a fused block
only runs when the *whole* block fits in the cycle's remaining ``#Exe``
budget (so front-end stages between budget chunks observe the same
intermediate state in both modes), when execution enters at the block's
first action (branch resumes land on leaders; budget-limited partials
re-enter mid-block), and when the block's registers fit the configured
context. Every other case — and ``compile_mode=off`` — takes the
interpreted path, action by action.

``compile_mode=verify`` runs every eligible block twice: first the
fused closure against *shadow* state (copies of the X-registers and the
meta-tag entry, a copy-on-write data-RAM overlay), then the interpreter
against the real structures (authoritative: it does all stat/charge
accounting). Any divergence — registers, ``regs_touched``, walker
state, entry fields, written sectors, occupancy units — raises
:class:`CompileVerifyError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from .actions import ActionError, _ALU_STAT
from .isa import (
    FUSIBLE_OPCODES,
    OPCODE_CATEGORY,
    OPCODE_SOURCE_SLOTS,
    OPCODE_WRITES_DST,
    Action,
    Opcode,
    Operand,
)
from .microcode import Routine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.stats import StatGroup
    from .controller import Controller, _RoutineExec

__all__ = [
    "CompiledBlock",
    "CompiledRoutine",
    "CompileVerifyError",
    "BoundBlock",
    "compile_routine",
    "bind_routine",
    "verify_block",
    "is_fusible",
    "register_reads",
    "COMPILE_MODES",
]

_MASK64 = (1 << 64) - 1

# Valid values of the ``compile_mode`` config knob.
COMPILE_MODES = ("off", "on", "verify")

# Fusing a single action buys nothing over the interpreter's cached
# dispatch (the closure call + bulk counter bump costs about the same),
# so blocks shorter than this stay interpreted. Kept as the module-level
# default; the per-instance knob is ``XCacheConfig.min_fuse_len``
# (``REPRO_MIN_FUSE_LEN``), threaded through ``compile_routine``.
MIN_FUSE_LEN = 2


class CompileVerifyError(ActionError):
    """Lockstep verification found fused/interpreted divergence."""


# ----------------------------------------------------------------------
# fusibility classification
# ----------------------------------------------------------------------

def is_fusible(action: Action) -> bool:
    """True when ``action`` can live inside a fused block.

    Deliberately conservative: anything the code generator cannot prove
    it models exactly (unexpected operand shapes, non-register
    destinations, odd attributes) is a boundary — the interpreter is
    always a correct answer, just a slower one.
    """
    op = action.op
    if op not in FUSIBLE_OPCODES:
        return False
    if op is Opcode.STATE:
        # done=True terminates the walker: block boundary.
        return not bool(action.attr("done", False))
    if op is Opcode.UPDATE:
        if action.a is None or action.attr("what") not in ("sector_start",
                                                           "sector_end"):
            return False
        return True
    # source operands the executor would resolve must be present
    for slot in OPCODE_SOURCE_SLOTS.get(op, ()):
        if getattr(action, slot) is None:
            return False
    if op in OPCODE_WRITES_DST:
        if action.dst is None or action.dst.kind != "r":
            return False
    if op in (Opcode.PEEK, Opcode.READ_DATA, Opcode.READ, Opcode.WRITE_DATA):
        try:
            int(action.attr("width", 8))  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return False
    return True


def register_reads(action: Action) -> set:
    """Register indices the *executor* resolves for ``action``.

    The compiler's read model, cross-checked against the linter's in
    ``lint.check_compile`` — the two are derived independently, so a
    disagreement flags a stale fusibility table.
    """
    regs = set()
    for slot in OPCODE_SOURCE_SLOTS.get(action.op, ()):
        operand = getattr(action, slot)
        if operand is not None and operand.kind == "r":
            regs.add(int(operand.value))
    return regs


# ----------------------------------------------------------------------
# compiled artifacts
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CompiledBlock:
    """One fused basic block of a routine (controller-independent)."""

    start: int                 # first action index (a leader)
    end: int                   # one past the last fused action
    n: int                     # actions in the block == #Exe slots == cost
    fused: Callable            # (walker, msg, dataram) -> occupancy units
    source: str                # generated Python (debugging / disasm)
    counter_counts: Tuple[Tuple[str, int], ...]   # stat name -> bump
    cat_costs: Tuple[Tuple[str, int], ...]        # category value -> cost
    max_reg: int               # highest register index touched (-1: none)


@dataclass(frozen=True)
class CompiledRoutine:
    """All fused blocks of one routine, indexed by entry pc."""

    name: str
    blocks: Tuple[CompiledBlock, ...]
    n_actions: int

    @property
    def fused_actions(self) -> int:
        return sum(b.n for b in self.blocks)

    def block_starting_at(self, pc: int) -> Optional[CompiledBlock]:
        for block in self.blocks:
            if block.start == pc:
                return block
        return None


class BoundBlock:
    """A :class:`CompiledBlock` bound to one controller's stat group.

    ``bumps`` holds (Counter, amount) pairs so the hot path adds plain
    integers to cached objects; ``cat_costs`` holds (index, amount)
    pairs into the per-``ACTION_CATEGORIES`` cost vector the profiler
    consumes.
    """

    __slots__ = ("start", "end", "n", "fused", "bumps", "cat_costs", "block")

    def __init__(self, block: CompiledBlock, stats: "StatGroup",
                 cat_index: Dict[Opcode, int]) -> None:
        self.block = block
        self.start = block.start
        self.end = block.end
        self.n = block.n
        self.fused = block.fused
        self.bumps = tuple(
            (stats.counter(name), amount)
            for name, amount in block.counter_counts
        )
        index_of = {}
        for op, idx in cat_index.items():
            index_of[OPCODE_CATEGORY[op].value] = idx
        self.cat_costs = tuple(
            (index_of[cat], amount) for cat, amount in block.cat_costs
        )


# ----------------------------------------------------------------------
# code generation
# ----------------------------------------------------------------------

def _operand_expr(operand: Operand) -> str:
    if operand.kind == "imm":
        return repr(int(operand.value))
    if operand.kind == "r":
        return f"_regs[{int(operand.value)}]"
    return f"msg.get({str(operand.value)!r})"


class _BlockEmitter:
    """Emits the body of one fused closure, one action at a time."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.max_reg = -1
        self._temp = 0

    def _tmp(self) -> str:
        self._temp += 1
        return f"_t{self._temp}"

    def _src(self, operand: Operand) -> str:
        if operand.kind == "r":
            self.max_reg = max(self.max_reg, int(operand.value))
        return _operand_expr(operand)

    def _store(self, dst: Operand, expr: str) -> None:
        # Mirrors XContext.write: mask to 64 bits, then advance the
        # regs_touched high-water mark (kept in the local _rt).
        index = int(dst.value)
        self.max_reg = max(self.max_reg, index)
        self.lines.append(f"_regs[{index}] = ({expr}) & {_MASK64}")
        self.lines.append(f"if {index + 1} > _rt: _rt = {index + 1}")

    def emit(self, pc: int, action: Action) -> None:
        self.lines.append(f"# {pc}: {action!r}")
        getattr(self, f"_emit_{action.op.name.lower()}")(action)
        # every fused action costs one #Exe slot; the occupancy integral
        # charges the *current* high-water mark per slot, exactly like
        # XRegisterFile.charge_active after each interpreted action
        self.lines.append("_occ += _rt")

    # -- ALU -----------------------------------------------------------
    def _binary(self, action: Action, template: str) -> None:
        a = self._src(action.a)
        b = self._src(action.b)
        self._store(action.dst, template.format(a=f"({a})", b=f"({b})"))

    def _emit_add(self, action):
        self._binary(action, "{a} + {b}")

    _emit_addi = _emit_add

    def _emit_and(self, action):
        self._binary(action, "{a} & {b}")

    def _emit_or(self, action):
        self._binary(action, "{a} | {b}")

    def _emit_xor(self, action):
        self._binary(action, "{a} ^ {b}")

    def _emit_shl(self, action):
        self._binary(action, "{a} << ({b} & 63)")

    def _emit_shr(self, action):
        self._binary(action, "{a} >> ({b} & 63)")

    _emit_srl = _emit_shr

    def _emit_sra(self, action):
        a = self._src(action.a)
        b = self._src(action.b)
        ta, tb = self._tmp(), self._tmp()
        self.lines.append(f"{ta} = {a}")
        self.lines.append(f"{tb} = ({b}) & 63")
        self._store(action.dst,
                    f"(({ta} - {1 << 64}) >> {tb}) if {ta} & {1 << 63} "
                    f"else ({ta} >> {tb})")

    def _emit_inc(self, action):
        a = self._src(action.a)
        self._store(action.dst, f"({a}) + 1")

    def _emit_dec(self, action):
        a = self._src(action.a)
        self._store(action.dst, f"({a}) - 1")

    def _emit_not(self, action):
        a = self._src(action.a)
        self._store(action.dst, f"~({a})")

    def _emit_allocr(self, action):
        pass  # registers are claimed at admission; energy-only action

    def _emit_deq(self, action):
        pass  # the front-end consumed the triggering message

    # -- message / RAM movement ----------------------------------------
    def _emit_peek(self, action):
        offset = self._src(action.a)
        width = int(action.attr("width", 8))
        t = self._tmp()
        self.lines.append(f"{t} = {offset}")
        self.lines.append(f"if {t} + {width} > len(msg.data):")
        self.lines.append(
            f"    raise ActionError(f\"peek {width}B at offset {{{t}}} "
            f"beyond {{len(msg.data)}}B payload of {{msg.event!r}}\")")
        self._store(action.dst,
                    f"int.from_bytes(msg.data[{t}:{t} + {width}], 'little')")

    def _emit_read_data(self, action):
        sector = self._src(action.a)
        width = int(action.attr("width", 8))
        t = self._tmp()
        self.lines.append(f"{t} = {sector}")
        self._store(action.dst,
                    f"int.from_bytes(dataram.read_sectors({t}, {t} + 1)"
                    f"[:{width}], 'little')")

    _emit_read = _emit_read_data

    def _emit_write_data(self, action):
        sector = self._src(action.a)
        value = self._src(action.b)
        width = int(action.attr("width", 8))
        ts, tv = self._tmp(), self._tmp()
        self.lines.append(f"{ts} = {sector}")
        self.lines.append(f"{tv} = {value}")
        self.lines.append(
            f"dataram.write_sector({ts}, ({tv}).to_bytes(8, 'little')"
            f"[:{width}])")

    # -- meta-tags ------------------------------------------------------
    def _emit_update(self, action):
        what = str(action.attr("what"))
        t = self._tmp()
        self.lines.append(f"{t} = walker.entry")
        self.lines.append(f"if {t} is None:")
        self.lines.append("    raise ActionError('update before allocM')")
        value = self._src(action.a)
        self.lines.append(f"{t}.{what} = {value}")

    def _emit_state(self, action):
        next_state = str(action.attr("state"))
        t = self._tmp()
        self.lines.append(f"walker.state = {next_state!r}")
        self.lines.append(f"{t} = walker.entry")
        self.lines.append(f"if {t} is not None:")
        self.lines.append(f"    {t}.state = {next_state!r}")


def _count_stats(actions: Tuple[Action, ...], start: int,
                 end: int) -> Tuple[Tuple[Tuple[str, int], ...],
                                    Tuple[Tuple[str, int], ...]]:
    """Static stat bumps and per-category costs of a block.

    Replicates exactly what ``ActionExecutor.execute`` would count for
    the same action sequence (fused blocks contain no branches, so the
    branch counters never appear).
    """
    counts: Dict[str, int] = {}
    cats: Dict[str, int] = {}
    n = end - start
    counts["actions_total"] = n
    counts["ucode_reads"] = n
    for pc in range(start, end):
        action = actions[pc]
        cat = OPCODE_CATEGORY[action.op].value
        counts[f"act_{cat}"] = counts.get(f"act_{cat}", 0) + 1
        cats[cat] = cats.get(cat, 0) + 1
        alu = _ALU_STAT.get(action.op)
        if alu is not None:
            counts[alu] = counts.get(alu, 0) + 1
        reads = sum(
            1 for slot in OPCODE_SOURCE_SLOTS.get(action.op, ())
            if getattr(action, slot) is not None
            and getattr(action, slot).kind == "r"
        )
        if reads:
            counts["xreg_reads"] = counts.get("xreg_reads", 0) + reads
        if action.op in OPCODE_WRITES_DST:
            counts["xreg_writes"] = counts.get("xreg_writes", 0) + 1
    return (tuple(sorted(counts.items())), tuple(sorted(cats.items())))


def _codegen(routine: Routine, start: int, end: int) -> CompiledBlock:
    emitter = _BlockEmitter()
    for pc in range(start, end):
        emitter.emit(pc, routine.actions[pc])
    body = "\n".join("    " + line for line in emitter.lines)
    source = (
        "def _fused(walker, msg, dataram):\n"
        "    _ctx = walker.ctx\n"
        "    _regs = _ctx.regs\n"
        "    _rt = _ctx.regs_touched\n"
        "    _occ = 0\n"
        f"{body}\n"
        "    _ctx.regs_touched = _rt\n"
        "    return _occ\n"
    )
    namespace = {"ActionError": ActionError}
    code = compile(source, f"<xroutine {routine.name}[{start}:{end}]>", "exec")
    exec(code, namespace)
    counter_counts, cat_costs = _count_stats(routine.actions, start, end)
    return CompiledBlock(
        start=start, end=end, n=end - start, fused=namespace["_fused"],
        source=source, counter_counts=counter_counts, cat_costs=cat_costs,
        max_reg=emitter.max_reg,
    )


# ----------------------------------------------------------------------
# partitioning
# ----------------------------------------------------------------------

def compile_routine(routine: Routine,
                    min_fuse_len: int = MIN_FUSE_LEN) -> CompiledRoutine:
    """Partition ``routine`` into basic blocks and fuse each one."""
    if min_fuse_len < 1:
        raise ValueError(f"min_fuse_len must be >= 1, got {min_fuse_len}")
    actions = routine.actions
    n = len(actions)
    leaders = {0}
    for pc, action in enumerate(actions):
        if action.target is not None:
            leaders.add(action.target)
        if not is_fusible(action):
            leaders.add(pc + 1)
    starts = sorted(pc for pc in leaders if pc < n)
    blocks: List[CompiledBlock] = []
    for i, start in enumerate(starts):
        limit = starts[i + 1] if i + 1 < len(starts) else n
        end = start
        while end < limit and is_fusible(actions[end]):
            end += 1
        if end - start >= min_fuse_len:
            blocks.append(_codegen(routine, start, end))
    return CompiledRoutine(name=routine.name, blocks=tuple(blocks),
                           n_actions=n)


def bind_routine(compiled: CompiledRoutine, stats: "StatGroup",
                 cat_index: Dict[Opcode, int], xregs_limit: int,
                 num_exe: int) -> Tuple[Optional[BoundBlock], ...]:
    """Bind a compiled routine to one controller; returns ``block_at``.

    ``block_at[pc]`` is the :class:`BoundBlock` *starting* at ``pc`` or
    None. Blocks that can never fuse under this configuration are
    dropped here rather than re-checked every cycle: blocks wider than
    ``num_exe`` (the whole block must fit one cycle's budget) and
    blocks touching registers beyond the context size (the interpreter
    owns the out-of-range IndexError).
    """
    block_at: List[Optional[BoundBlock]] = [None] * compiled.n_actions
    for block in compiled.blocks:
        if block.n > num_exe:
            continue
        if block.max_reg >= xregs_limit:
            continue
        block_at[block.start] = BoundBlock(block, stats, cat_index)
    return tuple(block_at)


# ----------------------------------------------------------------------
# verify mode (lockstep differential execution)
# ----------------------------------------------------------------------

class _ShadowCtx:
    __slots__ = ("regs", "regs_touched")

    def __init__(self, regs: List[int], regs_touched: int) -> None:
        self.regs = regs
        self.regs_touched = regs_touched


class _ShadowEntry:
    __slots__ = ("sector_start", "sector_end", "state")

    def __init__(self, entry) -> None:
        self.sector_start = entry.sector_start
        self.sector_end = entry.sector_end
        self.state = entry.state


class _ShadowWalker:
    """The subset of WalkerRun a fused closure touches."""

    __slots__ = ("ctx", "entry", "state")

    def __init__(self, ctx: _ShadowCtx, entry: Optional[_ShadowEntry],
                 state: str) -> None:
        self.ctx = ctx
        self.entry = entry
        self.state = state


class _ShadowDataRAM:
    """Copy-on-write overlay: reads fall through to the real RAM's
    pre-block contents, writes stay in the overlay. No stats are
    bumped — the interpreted (authoritative) pass does that."""

    def __init__(self, real) -> None:
        self._real = real
        self.writes: Dict[int, bytearray] = {}

    def _sector(self, sector: int) -> bytes:
        overlaid = self.writes.get(sector)
        if overlaid is not None:
            return bytes(overlaid)
        return self._real.peek_sectors(sector, sector + 1)

    def read_sectors(self, start: int, end: int) -> bytes:
        if not (0 <= start <= end <= self._real.num_sectors):
            raise IndexError(f"range [{start},{end}) outside RAM")
        return b"".join(self._sector(s) for s in range(start, end))

    def write_sector(self, sector: int, data: bytes, offset: int = 0) -> None:
        if not 0 <= sector < self._real.num_sectors:
            raise IndexError(f"sector {sector} outside RAM")
        if offset + len(data) > self._real.sector_bytes:
            raise ValueError(
                f"{len(data)}B at offset {offset} overflows "
                f"{self._real.sector_bytes}B sector"
            )
        buf = self.writes.get(sector)
        if buf is None:
            buf = self.writes[sector] = bytearray(
                self._real.peek_sectors(sector, sector + 1))
        buf[offset:offset + len(data)] = data


def verify_block(controller: "Controller", ex: "_RoutineExec",
                 bound: BoundBlock, cat_index: Dict[Opcode, int]) -> None:
    """Run ``bound`` fused-on-shadows then interpreted-on-real; compare.

    The interpreted pass is authoritative: it performs all stat, charge,
    and cost accounting exactly as ``compile_mode=off`` would, so verify
    runs stay byte-identical to interpreted runs even while checking the
    compiled path on the side.
    """
    walker = ex.walker
    msg = ex.msg
    ctx = walker.ctx
    shadow_ctx = _ShadowCtx(list(ctx.regs), ctx.regs_touched)
    entry = walker.entry
    shadow_entry = _ShadowEntry(entry) if entry is not None else None
    shadow_walker = _ShadowWalker(shadow_ctx, shadow_entry, walker.state)
    shadow_ram = _ShadowDataRAM(controller.dataram)

    fused_exc: Optional[BaseException] = None
    occ_fused = -1
    try:
        occ_fused = bound.fused(shadow_walker, msg, shadow_ram)
    except Exception as exc:  # compared against the interpreter below
        fused_exc = exc

    execute = controller.executor.execute
    charge = controller.xregs.charge_active
    actions = ex.routine.actions
    occ_interp = 0
    for pc in range(bound.start, bound.end):
        action = actions[pc]
        result = execute(walker, action, msg)
        charge(ctx, result.cost)
        if ex.costs is not None:
            ex.costs[cat_index[action.op]] += result.cost
        occ_interp += ctx.regs_touched * result.cost
        if result.cost != 1 or result.terminated or result.branch is not None:
            raise CompileVerifyError(
                f"{ex.routine.name}[{pc}] ({action.op.value}) was "
                f"classified fusible but returned {result}"
            )

    if fused_exc is not None:
        raise CompileVerifyError(
            f"{ex.routine.name}[{bound.start}:{bound.end}]: fused block "
            f"raised {fused_exc!r} but the interpreter completed"
        ) from fused_exc

    diffs: List[str] = []
    if shadow_ctx.regs != ctx.regs:
        diffs.append(f"regs {shadow_ctx.regs} != {ctx.regs}")
    if shadow_ctx.regs_touched != ctx.regs_touched:
        diffs.append(f"regs_touched {shadow_ctx.regs_touched} != "
                     f"{ctx.regs_touched}")
    if shadow_walker.state != walker.state:
        diffs.append(f"state {shadow_walker.state!r} != {walker.state!r}")
    if (shadow_entry is None) != (walker.entry is None):
        diffs.append("entry presence diverged")
    elif shadow_entry is not None and walker.entry is not None:
        for field_name in ("sector_start", "sector_end", "state"):
            got = getattr(shadow_entry, field_name)
            want = getattr(walker.entry, field_name)
            if got != want:
                diffs.append(f"entry.{field_name} {got!r} != {want!r}")
    for sector, buf in sorted(shadow_ram.writes.items()):
        real = controller.dataram.peek_sectors(sector, sector + 1)
        if bytes(buf) != real:
            diffs.append(f"sector {sector} {bytes(buf)!r} != {real!r}")
    if occ_fused != occ_interp:
        diffs.append(f"occupancy units {occ_fused} != {occ_interp}")
    if diffs:
        raise CompileVerifyError(
            f"{ex.routine.name}[{bound.start}:{bound.end}] diverged: "
            + "; ".join(diffs)
        )
