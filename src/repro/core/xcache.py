"""Top-level X-Cache façade.

:class:`XCacheSystem` wires together everything a DSA (or a quickstart
user) needs: a simulator, a memory image, a DRAM model, and a programmed
controller. It also offers a small synchronous convenience layer
(`load`/`store` + `run`) so examples can exercise the cache without
writing an event-driven datapath.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..mem.dram import DRAMConfig, DRAMModel
from ..mem.layout import MemoryImage
from ..obs import capture as obs_capture
from ..sim import new_simulator
from .config import XCacheConfig
from .controller import Controller, MetaResponse
from .walker import CompiledWalker

__all__ = ["XCacheSystem"]

Tag = Tuple[int, ...]


class XCacheSystem:
    """A ready-to-run X-Cache instance over a DRAM-backed memory image.

    Typical use::

        system = XCacheSystem(config, program)
        ...lay out data structures in system.image...
        system.load((key,), walk_fields={"table": table_addr})
        responses = system.run()
    """

    def __init__(self, config: XCacheConfig, program: CompiledWalker,
                 image: Optional[MemoryImage] = None,
                 dram_config: DRAMConfig = DRAMConfig(),
                 store_merge: str = "fadd") -> None:
        self.sim = new_simulator()
        self.image = image if image is not None else MemoryImage()
        self.dram = DRAMModel(self.sim, self.image, dram_config)
        self.controller = Controller(self.sim, config, program, self.dram,
                                     store_merge=store_merge)
        self.responses: List[MetaResponse] = []
        self._user_handler: Optional[Callable[[MetaResponse], None]] = None
        self.controller.set_response_handler(self._collect)
        # harness-level observation (--events/--perfetto/--metrics-summary):
        # systems built inside an active capture scope self-register
        active_capture = obs_capture.current_capture()
        if active_capture is not None:
            active_capture.attach_system(self)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def ensure_bus(self):
        """One shared event bus across controller, DRAM, and kernel.

        The controller's bus is authoritative (a legacy ``tracer``
        assignment may already have created it); DRAM and the simulation
        kernel are pointed at the same instance so one subscription sees
        the whole system.
        """
        bus = self.controller.ensure_bus()
        self.dram.bus = bus
        self.sim.bus = bus
        return bus

    def observe(self, processor):
        """Attach an event processor to the whole system; returns it.

        ::

            metrics = system.observe(MetricsProcessor())
            system.run()
            print(metrics.summary())
        """
        self.ensure_bus().attach(processor)
        return processor

    def observe_spans(self, top_k: int = 5):
        """Arm request-span assembly with critical-path blame; returns
        ``(assembler, aggregator)``.

        ::

            asm, agg = system.observe_spans(top_k=3)
            ...issue requests...
            system.run()
            for span, blame in agg.slowest():
                print(span.req_id, span.latency, blame)
        """
        from ..obs.critpath import CritPathAggregator
        from ..obs.spans import SpanAssembler

        agg = CritPathAggregator(top_k=top_k, verify=True)
        asm = self.observe(SpanAssembler(sink=agg.add))
        return asm, agg

    def observe_cachelens(self, reuse_sample: int = 8,
                          heatmap_window: int = 1000):
        """Arm cache-contents observability; returns the lens.

        ::

            lens = system.observe_cachelens()
            ...issue requests...
            system.run()
            print(lens.report())
        """
        from ..obs.cachelens import CacheLensProcessor

        return self.observe(CacheLensProcessor(
            reuse_sample=reuse_sample, heatmap_window=heatmap_window))

    def _collect(self, resp: MetaResponse) -> None:
        self.responses.append(resp)
        if self._user_handler is not None:
            self._user_handler(resp)

    def on_response(self, handler: Callable[[MetaResponse], None]) -> None:
        """Register a callback fired on every meta response."""
        self._user_handler = handler

    # ------------------------------------------------------------------
    # convenience request issue
    # ------------------------------------------------------------------
    def load(self, tag: Tag, walk_fields: Optional[Dict[str, int]] = None,
             preload: bool = False, take: bool = False,
             nowalk: bool = False):
        """Issue a meta load (see :meth:`Controller.meta_load`)."""
        return self.controller.meta_load(tag, walk_fields=walk_fields,
                                         preload=preload, take=take,
                                         nowalk=nowalk)

    def store(self, tag: Tag, payload_bits: int,
              walk_fields: Optional[Dict[str, int]] = None):
        """Issue a meta store (see :meth:`Controller.meta_store`)."""
        return self.controller.meta_store(tag, payload_bits,
                                          walk_fields=walk_fields)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None) -> List[MetaResponse]:
        """Run until the system drains; returns responses collected."""
        self.sim.run(until=until)
        self.controller.finalize()
        return self.responses

    @property
    def now(self) -> int:
        return self.sim.now

    def hit_rate(self) -> float:
        return self.controller.hit_rate()

    def summary(self) -> Dict[str, int]:
        """Key counters for quick inspection."""
        stats = self.controller.stats
        return {
            "cycles": self.sim.now,
            "meta_loads": stats.get("meta_loads"),
            "meta_stores": stats.get("meta_stores"),
            "hits": stats.get("hits") + stats.get("store_hits"),
            "misses": stats.get("misses"),
            "miss_merges": stats.get("miss_merges"),
            "walks_completed": stats.get("walks_completed"),
            "dram_reads": self.dram.stats.get("reads"),
            "dram_writes": self.dram.stats.get("writes"),
            "actions": stats.get("actions_total"),
        }
